//! Hospital accuracy walkthrough (the Table 5 scenario of the paper).
//!
//! Generates a hospital-like dataset with ground truth, runs an exploratory
//! SP workload that cleans it incrementally under the rules ϕ1–ϕ3, and then
//! materialises the probabilistic repairs with the `DaisyP` policy (most
//! probable candidate) to measure precision / recall / F1 against the truth.
//!
//! Run with: `cargo run --example hospital_accuracy`

use daisy::core::repair::{materialize_repairs, RepairPolicy};
use daisy::data::hospital::{generate_hospital, HospitalConfig};
use daisy::offline::metrics::evaluate_repairs;
use daisy::prelude::*;

fn main() {
    let config = HospitalConfig {
        rows: 1_000,
        hospitals: 100,
        error_fraction: 0.05,
        seed: 17,
    };
    let (dirty, truth, constraints) = generate_hospital(&config).unwrap();
    println!(
        "hospital dataset: {} rows, {} erroneous cells injected",
        dirty.len(),
        (config.rows as f64 * config.error_fraction).round() as usize
    );

    for rule_count in 1..=3 {
        let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
        engine.register_table(dirty.clone());
        for rule in constraints.rules().iter().take(rule_count) {
            engine.add_constraint(rule.clone());
        }

        // The exploratory workload: four SP queries touching the rule
        // attributes; together they access the whole dataset, so cleaning is
        // complete by the time they finish.
        for sql in [
            "SELECT zip, city FROM hospital WHERE zip >= 0",
            "SELECT hospital_name, zip FROM hospital WHERE zip >= 0",
            "SELECT phone, zip FROM hospital WHERE zip >= 0",
            "SELECT provider_id, zip, city FROM hospital WHERE zip >= 0",
        ] {
            engine.execute_sql(sql).unwrap();
        }

        let cleaned = engine.table("hospital").unwrap();
        let provenance = engine.provenance("hospital");
        let materialized =
            materialize_repairs(cleaned, provenance, RepairPolicy::MostProbable).unwrap();
        let repairs: Vec<_> = materialized
            .repairs
            .iter()
            .map(|r| (r.tuple, r.column, r.value.clone()))
            .collect();
        let quality = evaluate_repairs(&dirty, &truth, &repairs).unwrap();
        println!(
            "rules ϕ1..ϕ{rule_count}: {} cells probabilistic, {} repairs applied \
             → precision {:.2}, recall {:.2}, F1 {:.2}",
            cleaned.probabilistic_tuple_count(),
            repairs.len(),
            quality.precision,
            quality.recall,
            quality.f1
        );
    }

    println!(
        "\nAs in Table 5 of the paper, accuracy improves once all three rules are \
         known: the zip errors are only reachable through ϕ2/ϕ3."
    );
}
