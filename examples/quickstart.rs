//! Quickstart: clean the paper's running example (Tables 1–3) at query time.
//!
//! Run with: `cargo run --example quickstart`

use daisy::prelude::*;

fn main() {
    // The Cities dataset of Table 2a, violating the FD zip → city.
    let schema = Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
    let cities = Table::from_rows(
        "cities",
        schema,
        vec![
            vec![Value::Int(9001), Value::from("Los Angeles")],
            vec![Value::Int(9001), Value::from("San Francisco")],
            vec![Value::Int(9001), Value::from("Los Angeles")],
            vec![Value::Int(10001), Value::from("San Francisco")],
            vec![Value::Int(10001), Value::from("New York")],
        ],
    )
    .unwrap();

    let mut engine = DaisyEngine::with_defaults();
    engine.register_table(cities);
    engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "zip->city");

    // Example 2: "the zip code of Los Angeles".  The dirty answer misses the
    // (9001, San Francisco) tuple; Daisy relaxes the result, detects the
    // conflict and returns the probabilistic answer of Table 2b.
    let outcome = engine
        .execute_sql("SELECT zip, city FROM cities WHERE city = 'Los Angeles'")
        .unwrap();
    println!("Query: SELECT zip, city FROM cities WHERE city = 'Los Angeles'");
    println!("{}", outcome.result);
    println!(
        "cleaned {} cells, relaxation added {} correlated tuples\n",
        outcome.report.errors_repaired, outcome.report.extra_tuples
    );

    // Example 3: "the city with zip code 9001" — the lhs filter needs the
    // transitive closure and reaches the 10001 cluster too.
    let outcome = engine
        .execute_sql("SELECT zip, city FROM cities WHERE zip = 9001")
        .unwrap();
    println!("Query: SELECT zip, city FROM cities WHERE zip = 9001");
    println!("{}", outcome.result);

    // The base table is now (partially) probabilistic: Daisy cleaned it
    // gradually, as a side effect of the two queries.
    let table = engine.table("cities").unwrap();
    println!(
        "base table: {}/{} tuples now carry candidate fixes",
        table.probabilistic_tuple_count(),
        table.len()
    );
    for report in &engine.session().queries {
        println!(
            "  [{}] {:?}: {} errors repaired in {:?}",
            report.query, report.strategy, report.errors_repaired, report.elapsed
        );
    }
}
