//! The air-quality exploratory-analysis scenario of Table 8: per-county
//! average CO measurements grouped by year, over data violating the FD
//! (state_code, county_code) → county_name.
//!
//! Run with: `cargo run --release --example airquality_exploration`

use daisy::data::airquality::{airquality_fd, generate_airquality, AirQualityConfig};
use daisy::data::workload::airquality_workload;
use daisy::prelude::*;

fn main() {
    let config = AirQualityConfig {
        rows: 40_000,
        states: 20,
        counties_per_state: 15,
        dirty_group_fraction: 0.3,
        seed: 31,
    };
    let measurements = generate_airquality(&config).unwrap();
    println!("generated {} hourly measurements", measurements.len());

    let mut engine = DaisyEngine::with_defaults();
    engine.register_table(measurements);
    engine.add_fd(&airquality_fd(), "county");

    let workload = airquality_workload(config.states, config.counties_per_state, 52);
    for (i, query) in workload.queries.iter().enumerate() {
        let outcome = engine.execute(query).unwrap();
        if i < 5 || i % 10 == 0 {
            println!(
                "q{:02}: {:>3} (year, avg CO) groups, {:>5} cells repaired, {:?}",
                i + 1,
                outcome.result.len(),
                outcome.report.errors_repaired,
                outcome.report.elapsed
            );
        }
    }
    let session = engine.session();
    println!(
        "\ntotal: {:?} over {} queries ({} repairs)",
        session.total_elapsed(),
        session.queries.len(),
        session.total_errors_repaired()
    );
}
