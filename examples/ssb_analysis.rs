//! SSB-style analysis over dirty lineorder data: SP, SPJ and group-by
//! queries with orderkey → suppkey and address → suppkey violations, the
//! workload shape of Figs. 5–13.
//!
//! Run with: `cargo run --release --example ssb_analysis`

use daisy::data::errors::inject_fd_errors;
use daisy::data::ssb::{generate_lineorder, generate_supplier, SsbConfig};
use daisy::data::workload::{join_workload, non_overlapping_range_queries};
use daisy::prelude::*;

fn main() {
    let config = SsbConfig {
        lineorder_rows: 20_000,
        distinct_orderkeys: 2_000,
        distinct_suppkeys: 200,
        ..SsbConfig::default()
    };
    let mut lineorder = generate_lineorder(&config).unwrap();
    let mut supplier = generate_supplier(&config).unwrap();
    inject_fd_errors(&mut lineorder, "orderkey", "suppkey", 1.0, 0.1, 42).unwrap();
    inject_fd_errors(&mut supplier, "address", "suppkey", 0.5, 0.2, 43).unwrap();

    let sp = non_overlapping_range_queries(&lineorder, "orderkey", 20, &["orderkey", "suppkey"])
        .unwrap();
    let spj = join_workload(&sp, "supplier", "lineorder.suppkey", "supplier.suppkey");

    let mut engine = DaisyEngine::with_defaults();
    engine.register_table(lineorder);
    engine.register_table(supplier);
    engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
    engine.add_fd(&FunctionalDependency::new(&["address"], "suppkey"), "psi");

    println!("running {} SP queries …", sp.len());
    for query in &sp.queries {
        let outcome = engine.execute(query).unwrap();
        println!(
            "  {:>5} rows, {:>4} repaired ({:?})",
            outcome.result.len(),
            outcome.report.errors_repaired,
            outcome.report.strategy
        );
    }
    println!("\nrunning {} SPJ queries …", spj.len());
    for query in &spj.queries {
        let outcome = engine.execute(query).unwrap();
        println!("  {:>6} pairs", outcome.result.len());
    }

    let session = engine.session();
    println!(
        "\nsession: {} queries, {} cells repaired, total {:?}",
        session.queries.len(),
        session.total_errors_repaired(),
        session.total_elapsed()
    );
    if let Some(at) = session.switch_point() {
        println!("cost model switched to full cleaning at query #{at}");
    } else {
        println!("cost model kept incremental cleaning throughout");
    }
}
