//! The product-catalogue exploratory-analysis scenario of Table 8: 37 SP
//! queries looking up coffee products through the `category` attribute while
//! the FD material → category is heavily violated.
//!
//! Run with: `cargo run --release --example nestle_exploration`

use daisy::data::nestle::{generate_nestle, nestle_fd, NestleConfig};
use daisy::data::workload::nestle_workload;
use daisy::prelude::*;

fn main() {
    let config = NestleConfig {
        rows: 20_000,
        materials: 400,
        categories: 8,
        error_fraction: 0.10,
        seed: 23,
    };
    let products = generate_nestle(&config).unwrap();
    println!(
        "generated {} products, {} categories, {} materials",
        products.len(),
        config.categories,
        config.materials
    );

    let mut engine = DaisyEngine::with_defaults();
    engine.register_table(products);
    engine.add_fd(&nestle_fd(), "material->category");

    let workload = nestle_workload(config.categories, 37);
    for (i, query) in workload.queries.iter().enumerate() {
        let outcome = engine.execute(query).unwrap();
        println!(
            "q{:02}: {:>6} products, {:>5} cells repaired, {:?}",
            i + 1,
            outcome.result.len(),
            outcome.report.errors_repaired,
            outcome.report.elapsed
        );
    }
    let session = engine.session();
    println!(
        "\ntotal: {:?} over {} queries ({} repairs)",
        session.total_elapsed(),
        session.queries.len(),
        session.total_errors_repaired()
    );
}
