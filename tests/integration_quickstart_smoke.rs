//! End-to-end smoke test mirroring the facade quick-start doc-test: the
//! zip → city functional dependency over Table 1 of the paper, cleaned
//! through a single selection query.

use daisy::prelude::*;

/// The dirty cities table of the quick-start: two tuples share zip 9001 but
/// disagree on the city, violating zip → city.
fn dirty_cities() -> Table {
    let schema = Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
    Table::from_rows(
        "cities",
        schema,
        vec![
            vec![Value::Int(9001), Value::from("Los Angeles")],
            vec![Value::Int(9001), Value::from("San Francisco")],
            vec![Value::Int(10001), Value::from("New York")],
        ],
    )
    .unwrap()
}

#[test]
fn quickstart_flow_repairs_the_zip_city_violation() {
    let mut engine = DaisyEngine::with_defaults();
    engine.register_table(dirty_cities());
    engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");

    let outcome = engine
        .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        .unwrap();

    // The doc-test's observable guarantees…
    assert!(!outcome.result.is_empty());
    assert!(outcome.report.errors_repaired > 0);
}

#[test]
fn quickstart_cleaning_converges_and_covers_the_conflicting_group() {
    let mut engine = DaisyEngine::with_defaults();
    engine.register_table(dirty_cities());
    engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");

    let first = engine
        .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        .unwrap();
    assert!(first.report.errors_repaired > 0);

    // Both tuples of the violating zip-9001 group must now carry
    // probabilistic candidate fixes; the clean tuple must not.
    let table = engine.table("cities").unwrap();
    let dirty_group: Vec<_> = table
        .tuples()
        .iter()
        .filter(|t| t.value(0).unwrap() == Value::Int(9001))
        .collect();
    assert_eq!(dirty_group.len(), 2);
    for tuple in &dirty_group {
        assert!(
            tuple.cells.iter().any(|c| c.is_probabilistic()),
            "violating tuple {:?} should have probabilistic candidates",
            tuple.id
        );
    }
    let clean: Vec<_> = table
        .tuples()
        .iter()
        .filter(|t| t.value(0).unwrap() == Value::Int(10001))
        .collect();
    assert!(clean
        .iter()
        .all(|t| t.cells.iter().all(|c| !c.is_probabilistic())));

    // Re-running the same query finds nothing new to repair.
    let second = engine
        .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        .unwrap();
    assert_eq!(second.report.errors_repaired, 0);
}
