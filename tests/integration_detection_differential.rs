//! Differential tests: indexed violation detection against the naive
//! pairwise oracle.
//!
//! For random tables and random denial constraints mixing equality,
//! inequality and residual predicates, the hash-equality / sort-sweep
//! violation index must find exactly the violation set of a brute-force
//! quadratic scan — in full checks and in incremental (range) checks, and
//! identically to the forced-pairwise theta kernel.

use proptest::prelude::*;

use daisy::common::{DaisyConfig, DataType, DetectionStrategy, Schema, SnapshotMode, Value};
use daisy::core::theta::ThetaMatrix;
use daisy::core::DaisyEngine;
use daisy::exec::ExecContext;
use daisy::expr::{ComparisonOp, DcPredicate, DenialConstraint, Operand, Violation};
use daisy::storage::{ColumnSnapshot, Table, Tuple};

/// Builds a three-column table: `a` is a low-cardinality grouping column,
/// `b` a numeric column, `c` a float column with occasional NULLs so the
/// NULL comparison semantics are exercised end to end.
fn table_from_rows(rows: &[(i64, i64, i64)]) -> Table {
    let schema = Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Int),
        ("c", DataType::Float),
    ])
    .unwrap();
    Table::from_rows(
        "t",
        schema,
        rows.iter()
            .map(|(a, b, c)| {
                let c = if c % 5 == 0 {
                    Value::Null
                } else {
                    Value::Float(*c as f64 / 2.0)
                };
                vec![Value::Int(*a), Value::Int(*b), c]
            })
            .collect(),
    )
    .unwrap()
}

const COLUMNS: [&str; 3] = ["a", "b", "c"];

/// Decodes one `(op, left column, right column, shape)` spec into a
/// predicate.  Shapes cover cross-tuple, reversed cross-tuple, same-tuple
/// and constant comparisons, so generated constraints mix equality keys,
/// sweeps and residuals.
fn predicate_from_spec(spec: &(usize, usize, usize, usize)) -> DcPredicate {
    let (op, lcol, rcol, shape) = *spec;
    let op = [
        ComparisonOp::Eq,
        ComparisonOp::Neq,
        ComparisonOp::Lt,
        ComparisonOp::Le,
        ComparisonOp::Gt,
        ComparisonOp::Ge,
    ][op % 6];
    let left_col = COLUMNS[lcol % 3];
    let right_col = COLUMNS[rcol % 3];
    match shape % 5 {
        0 => DcPredicate::new(Operand::attr(0, left_col), op, Operand::attr(1, right_col)),
        1 => DcPredicate::new(Operand::attr(1, left_col), op, Operand::attr(0, right_col)),
        2 => DcPredicate::new(Operand::attr(0, left_col), op, Operand::attr(0, right_col)),
        3 => DcPredicate::new(Operand::attr(1, left_col), op, Operand::attr(1, right_col)),
        _ => DcPredicate::new(
            Operand::attr(0, left_col),
            op,
            Operand::Const(Value::Int((rcol % 3) as i64 * 2)),
        ),
    }
}

/// Brute-force oracle: every ordered pair of distinct tuples, canonicalised.
fn oracle(table: &Table, dc: &DenialConstraint) -> Vec<Violation> {
    let mut expected = Vec::new();
    for x in table.tuples() {
        for y in table.tuples() {
            if x.id != y.id && dc.violated_by(table.schema(), &[x, y]).unwrap() {
                expected.push(Violation::pair(dc.id, x.id, y.id).canonical());
            }
        }
    }
    expected.sort_by(|a, b| a.tuples.cmp(&b.tuples));
    expected.dedup();
    expected
}

fn check_all(
    table: &Table,
    dc: &DenialConstraint,
    strategy: DetectionStrategy,
    blocks: usize,
) -> Vec<Violation> {
    let mut matrix =
        ThetaMatrix::build_with_strategy(table.schema(), table.tuples(), dc, blocks, strategy)
            .unwrap();
    let (violations, _) = matrix
        .check_all(&ExecContext::new(2), table.schema(), table.tuples())
        .unwrap();
    violations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full detection: for a random table and a random mixed-predicate DC,
    /// the indexed kernel and the pairwise kernel both find exactly the
    /// brute-force violation set.
    #[test]
    fn indexed_full_detection_matches_pairwise_oracle(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..25), 2..70),
        specs in prop::collection::vec((0usize..6, 0usize..3, 0usize..3, 0usize..5), 1..4),
        blocks in 1usize..6,
    ) {
        let table = table_from_rows(&rows);
        let predicates: Vec<DcPredicate> = specs.iter().map(predicate_from_spec).collect();
        let dc = DenialConstraint::new("dc", 2, predicates);
        let expected = oracle(&table, &dc);
        let indexed = check_all(&table, &dc, DetectionStrategy::Indexed, blocks);
        prop_assert_eq!(&indexed, &expected);
        let pairwise = check_all(&table, &dc, DetectionStrategy::Pairwise, blocks);
        prop_assert_eq!(&pairwise, &expected);
    }

    /// Equality-bearing DCs — the case the index is built for — with a
    /// guaranteed hash key and sweep plus a random residual tail.
    #[test]
    fn indexed_detection_matches_oracle_for_equality_bearing_dcs(
        rows in prop::collection::vec((0i64..5, 0i64..30, 0i64..25), 2..80),
        tail in prop::collection::vec((0usize..6, 0usize..3, 0usize..3, 0usize..5), 0..3),
    ) {
        let table = table_from_rows(&rows);
        let mut predicates = vec![
            DcPredicate::new(Operand::attr(0, "a"), ComparisonOp::Eq, Operand::attr(1, "a")),
            DcPredicate::new(Operand::attr(0, "b"), ComparisonOp::Lt, Operand::attr(1, "b")),
        ];
        predicates.extend(tail.iter().map(predicate_from_spec));
        let dc = DenialConstraint::new("dc", 2, predicates);
        let expected = oracle(&table, &dc);
        let indexed = check_all(&table, &dc, DetectionStrategy::Indexed, 4);
        prop_assert_eq!(indexed, expected);
    }

    /// Columnar read path: for random tables (with NULLs) and random
    /// mixed-predicate DCs, detection through a `ColumnSnapshot` finds
    /// byte-identical violations — and identical candidate-pair counts —
    /// to the row path, under both kernels, full and incremental.
    #[test]
    fn snapshot_read_path_matches_row_path(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..25), 2..70),
        specs in prop::collection::vec((0usize..6, 0usize..3, 0usize..3, 0usize..5), 1..4),
        blocks in 1usize..6,
        split in 0i64..6,
    ) {
        let table = table_from_rows(&rows);
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let predicates: Vec<DcPredicate> = specs.iter().map(predicate_from_spec).collect();
        let dc = DenialConstraint::new("dc", 2, predicates);
        let expected = oracle(&table, &dc);
        for strategy in [DetectionStrategy::Indexed, DetectionStrategy::Pairwise] {
            let run = |snap: Option<&ColumnSnapshot>| {
                let mut matrix = ThetaMatrix::build_with_strategy_snap(
                    table.schema(),
                    table.tuples(),
                    &dc,
                    blocks,
                    strategy,
                    snap,
                )
                .unwrap();
                let ctx = ExecContext::new(2);
                let full = matrix
                    .check_all_with(&ctx, table.schema(), table.tuples(), snap)
                    .unwrap();
                // A fresh matrix for the incremental flow.
                let mut matrix = ThetaMatrix::build_with_strategy_snap(
                    table.schema(),
                    table.tuples(),
                    &dc,
                    blocks,
                    strategy,
                    snap,
                )
                .unwrap();
                let first = matrix
                    .check_range_with(&ctx, table.schema(), table.tuples(), snap, None, Some(&Value::Int(split)))
                    .unwrap();
                let second = matrix
                    .check_range_with(&ctx, table.schema(), table.tuples(), snap, Some(&Value::Int(split)), None)
                    .unwrap();
                (full, first, second)
            };
            let (row_full, row_first, row_second) = run(None);
            let (col_full, col_first, col_second) = run(Some(&snapshot));
            prop_assert_eq!(&row_full.0, &expected);
            prop_assert_eq!(&col_full.0, &expected);
            prop_assert_eq!(col_full.1, row_full.1);
            prop_assert_eq!(&col_first.0, &row_first.0);
            prop_assert_eq!(col_first.1, row_first.1);
            prop_assert_eq!(&col_second.0, &row_second.0);
            prop_assert_eq!(col_second.1, row_second.1);
        }
    }

    /// End-to-end engine sessions: the same workload replayed under every
    /// `DAISY_SNAPSHOT ∈ {on, off}` × `DAISY_DETECTION ∈ {pairwise,
    /// indexed}` combination must produce byte-identical query results,
    /// repaired tables (i.e. applied deltas) and provenance dumps.
    #[test]
    fn engine_sessions_agree_across_snapshot_and_detection_modes(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..25), 8..50),
        split in 0i64..6,
    ) {
        let table = table_from_rows(&rows);
        let sql_first = format!("SELECT a, b, c FROM t WHERE a <= {split}");
        let run = |snapshot: SnapshotMode, detection: DetectionStrategy| {
            let mut engine = DaisyEngine::new(
                DaisyConfig::default()
                    .with_worker_threads(2)
                    .with_cost_model(false)
                    .with_theta_partitions(16)
                    .with_snapshot_mode(snapshot)
                    .with_detection_strategy(detection),
            )
            .unwrap();
            engine.register_table(table.clone());
            engine
                .add_constraint_text("dc", "t1.a = t2.a & t1.b < t2.b & t1.c > t2.c")
                .unwrap();
            let first = engine.execute_sql(&sql_first).unwrap();
            let second = engine.execute_sql("SELECT a, b, c FROM t").unwrap();
            let final_table: Vec<Tuple> = engine.table("t").unwrap().tuples().to_vec();
            let prov = engine.provenance("t").unwrap().dump();
            (
                first.result.tuples,
                second.result.tuples,
                first.report.errors_repaired + second.report.errors_repaired,
                final_table,
                prov,
            )
        };
        let baseline = run(SnapshotMode::Off, DetectionStrategy::Pairwise);
        for snapshot in [SnapshotMode::Off, SnapshotMode::On] {
            for detection in [DetectionStrategy::Pairwise, DetectionStrategy::Indexed] {
                let replay = run(snapshot, detection);
                prop_assert!(
                    replay == baseline,
                    "session diverged under snapshot={snapshot} detection={detection}"
                );
            }
        }
    }

    /// Incremental detection: two successive range checks (sharing the
    /// matrix's `checked` bookkeeping) produce identical per-call violation
    /// sets and statistics under both kernels.
    #[test]
    fn indexed_incremental_detection_matches_pairwise(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..25), 2..70),
        specs in prop::collection::vec((0usize..6, 0usize..3, 0usize..3, 0usize..5), 1..4),
        split in 0i64..40,
    ) {
        let table = table_from_rows(&rows);
        let predicates: Vec<DcPredicate> = specs.iter().map(predicate_from_spec).collect();
        let dc = DenialConstraint::new("dc", 2, predicates);
        let run = |strategy: DetectionStrategy| {
            let mut matrix = ThetaMatrix::build_with_strategy(
                table.schema(),
                table.tuples(),
                &dc,
                4,
                strategy,
            )
            .unwrap();
            let ctx = ExecContext::new(3);
            let first = matrix
                .check_range(&ctx, table.schema(), table.tuples(), None, Some(&Value::Int(split)))
                .unwrap();
            let second = matrix
                .check_range(&ctx, table.schema(), table.tuples(), Some(&Value::Int(split)), None)
                .unwrap();
            (first, second)
        };
        let ((pf, ps), (pt, pu)) = (run(DetectionStrategy::Pairwise), run(DetectionStrategy::Indexed));
        // Identical violations per call, and identical block bookkeeping;
        // only the candidate-pair counts may differ between kernels.
        prop_assert_eq!(&pf.0, &pt.0);
        prop_assert_eq!(&ps.0, &pu.0);
        prop_assert_eq!(pf.1.blocks_checked, pt.1.blocks_checked);
        prop_assert_eq!(pf.1.blocks_pruned, pt.1.blocks_pruned);
        prop_assert_eq!(ps.1.blocks_checked, pu.1.blocks_checked);
        prop_assert_eq!(ps.1.blocks_pruned, pu.1.blocks_pruned);
    }
}
