//! Differential tests: the vectorized query path against the row path.
//!
//! For random relaxed tables and random SP / SPJ / aggregate queries, the
//! vectorized executor — selection-vector filters, code-keyed joins, late
//! materialization — must return byte-identical results to the row path,
//! across predicate modes (`Expected` / `Possible`) and worker counts.
//! Engine-level runs must additionally agree on repaired tables, provenance
//! dumps and recorded read footprints under `DAISY_QUERY_EXEC ∈ {row, auto,
//! vectorized}`.

use std::fmt::Write as _;

use proptest::prelude::*;

use daisy::common::{DaisyConfig, DataType, QueryExecMode, Schema, Value};
use daisy::core::DaisyEngine;
use daisy::exec::ExecContext;
use daisy::query::physical::PredicateMode;
use daisy::query::{execute_with, parse_query, Catalog, LogicalPlan, QueryResult};
use daisy::storage::{Candidate, Cell, Footprint, Table};

const NAMES: [&str; 5] = ["ann", "bob", "cat", "dan", "eve"];

/// Builds a relaxed three-column table: `k` is a low-cardinality join/filter
/// key, `v` a float with NULLs, `s` a dictionary string.  The `relax` tag
/// sprinkles probabilistic cells — including NULL candidates and a string
/// candidate that never appears as an expected value, so it is absent from
/// the snapshot dictionary.
fn table_from_rows(name: &str, rows: &[(i64, i64, i64, u8)]) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("s", DataType::Str),
    ])
    .unwrap();
    let mut table = Table::new(name, schema);
    for (k, v, s, relax) in rows {
        let k_cell = match relax % 8 {
            0 => Cell::probabilistic(vec![
                Candidate::exact(Value::Int(k % 6), 0.6),
                Candidate::exact(Value::Int((k + 1) % 6), 0.4),
            ]),
            1 => Cell::Determinate(Value::Null),
            _ => Cell::Determinate(Value::Int(k % 6)),
        };
        let v_cell = match relax % 7 {
            0 => Cell::Determinate(Value::Null),
            1 => Cell::probabilistic(vec![
                Candidate::exact(Value::Float(*v as f64 / 2.0), 0.5),
                Candidate::exact(Value::Null, 0.5),
            ]),
            _ => Cell::Determinate(Value::Float(*v as f64 / 2.0)),
        };
        let s_cell = match relax % 5 {
            0 => Cell::probabilistic(vec![
                Candidate::exact(Value::from(NAMES[(*s as usize) % 5]), 0.7),
                Candidate::exact(Value::from("never-seen-expected"), 0.3),
            ]),
            _ => Cell::Determinate(Value::from(NAMES[(*s as usize) % 5])),
        };
        table.push_cells(vec![k_cell, v_cell, s_cell]).unwrap();
    }
    table
}

/// A second relation with distinct column names, for unambiguous SPJ plans.
fn right_table_from_rows(rows: &[(i64, i64, u8)]) -> Table {
    let schema = Schema::from_pairs(&[("k2", DataType::Int), ("w", DataType::Float)]).unwrap();
    let mut table = Table::new("u", schema);
    for (k, w, relax) in rows {
        let k_cell = match relax % 6 {
            0 => Cell::probabilistic(vec![
                Candidate::exact(Value::Int(k % 6), 0.55),
                Candidate::exact(Value::Null, 0.45),
            ]),
            1 => Cell::Determinate(Value::Null),
            _ => Cell::Determinate(Value::Int(k % 6)),
        };
        table
            .push_cells(vec![
                k_cell,
                Cell::Determinate(Value::Float(*w as f64 / 4.0)),
            ])
            .unwrap();
    }
    table
}

/// Renders a result for byte-level comparison: schema fields plus every
/// tuple's id, lineage and cells.
fn dump(result: &QueryResult) -> String {
    let mut out = String::new();
    for field in result.schema.fields() {
        writeln!(out, "col {field}").unwrap();
    }
    for tuple in &result.tuples {
        writeln!(out, "{:?} {:?} {:?}", tuple.id, tuple.lineage, tuple.cells).unwrap();
    }
    out
}

fn sp_sql(shape: usize, x: i64) -> String {
    match shape % 7 {
        0 => format!("SELECT * FROM t WHERE k <= {}", x % 7),
        1 => format!("SELECT k, s FROM t WHERE k = {}", x % 6),
        2 => format!("SELECT s FROM t WHERE v >= {}.5", x % 10),
        3 => "SELECT * FROM t WHERE s = 'cat'".to_string(),
        4 => format!(
            "SELECT * FROM t WHERE k >= {} AND v <= {}.5",
            x % 6,
            (x + 7) % 20
        ),
        5 => "SELECT k, COUNT(*) FROM t GROUP BY k".to_string(),
        _ => format!("SELECT k FROM t WHERE s = '{}'", NAMES[(x as usize) % 5]),
    }
}

fn spj_sql(shape: usize, x: i64) -> String {
    match shape % 4 {
        0 => "SELECT t.s, u.w FROM t JOIN u ON t.k = u.k2".to_string(),
        1 => format!(
            "SELECT t.k, u.w FROM t JOIN u ON t.k = u.k2 WHERE k <= {}",
            x % 7
        ),
        2 => format!(
            "SELECT t.s, u.k2 FROM t JOIN u ON t.k = u.k2 WHERE v >= {}.5",
            x % 8
        ),
        _ => "SELECT * FROM t JOIN u ON t.k = u.k2 WHERE s = 'ann'".to_string(),
    }
}

/// Runs one parsed plan on every path × worker count and asserts all dumps
/// equal the sequential row-path dump.
fn assert_paths_agree(catalog: &Catalog, sql: &str) -> Result<(), TestCaseError> {
    let query = parse_query(sql).unwrap();
    let plan = LogicalPlan::from_query(&query).unwrap();
    for mode in [PredicateMode::Expected, PredicateMode::Possible] {
        let row = execute_with(
            &ExecContext::sequential(),
            catalog,
            &plan,
            mode,
            QueryExecMode::Row,
        )
        .unwrap();
        let expected = dump(&row);
        for workers in [1usize, 2, 4, 7] {
            let ctx = ExecContext::new(workers);
            for exec in [QueryExecMode::Auto, QueryExecMode::Vectorized] {
                let got = execute_with(&ctx, catalog, &plan, mode, exec).unwrap();
                prop_assert!(
                    expected == dump(&got),
                    "`{sql}` diverged ({mode:?}, {exec}, {workers} workers)"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SP and aggregate plans: row path ≡ vectorized path on results for
    /// random relaxed tables, with snapshots attached (Auto vectorizes) and
    /// without (Vectorized builds ad-hoc snapshots, Auto falls back to the
    /// row kernels).
    #[test]
    fn vectorized_sp_plans_match_row_path(
        rows in prop::collection::vec((0i64..12, 0i64..40, 0i64..8, 0u8..255), 0..40),
        shapes in prop::collection::vec((0usize..7, 0i64..20), 1..4),
        attach in 0usize..2,
    ) {
        let mut catalog = Catalog::new();
        catalog.add(table_from_rows("t", &rows));
        if attach == 1 {
            catalog.refresh_snapshot("t").unwrap();
        }
        for (shape, x) in &shapes {
            assert_paths_agree(&catalog, &sp_sql(*shape, *x))?;
        }
    }

    /// SPJ plans: the code-keyed hash join (late-materialized probe and
    /// build selections, NULL keys never joining, Int/Float key coercion)
    /// returns byte-identical joined tuples — ids, lineage, cells — to the
    /// row-path join.
    #[test]
    fn vectorized_spj_plans_match_row_path(
        left in prop::collection::vec((0i64..12, 0i64..40, 0i64..8, 0u8..255), 0..30),
        right in prop::collection::vec((0i64..12, 0i64..30, 0u8..255), 0..25),
        shapes in prop::collection::vec((0usize..4, 0i64..20), 1..3),
        attach in 0usize..2,
    ) {
        let mut catalog = Catalog::new();
        catalog.add(table_from_rows("t", &left));
        catalog.add(right_table_from_rows(&right));
        if attach == 1 {
            catalog.refresh_snapshot("t").unwrap();
            catalog.refresh_snapshot("u").unwrap();
        }
        for (shape, x) in &shapes {
            assert_paths_agree(&catalog, &spj_sql(*shape, *x))?;
        }
    }

    /// End-to-end engine runs: the same cleaning workload under
    /// `query_exec ∈ {row, auto, vectorized}` × worker counts must produce
    /// byte-identical query results, repaired base tables and provenance
    /// dumps — cleaning relaxes cells mid-run, so the second query reads
    /// engine-made probabilistic data through the coded kernels.
    #[test]
    fn engine_agrees_across_query_exec_modes(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..25), 8..40),
        split in 0i64..6,
    ) {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Float),
        ])
        .unwrap();
        let table = Table::from_rows(
            "t",
            schema,
            rows.iter()
                .map(|(a, b, c)| {
                    let c = if c % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Float(*c as f64 / 2.0)
                    };
                    vec![Value::Int(*a), Value::Int(*b), c]
                })
                .collect(),
        )
        .unwrap();
        let sql_first = format!("SELECT a, b, c FROM t WHERE a <= {split}");
        let run = |exec: QueryExecMode, workers: usize| {
            let mut engine = DaisyEngine::new(
                DaisyConfig::default()
                    .with_worker_threads(workers)
                    .with_cost_model(false)
                    .with_query_exec(exec),
            )
            .unwrap();
            engine.register_table(table.clone());
            engine
                .add_constraint_text("dc", "t1.a = t2.a & t1.b < t2.b & t1.c > t2.c")
                .unwrap();
            let first = engine.execute_sql(&sql_first).unwrap();
            let second = engine.execute_sql("SELECT a, b, c FROM t").unwrap();
            (
                dump(&first.result),
                dump(&second.result),
                first.report.errors_repaired + second.report.errors_repaired,
                engine.table("t").unwrap().tuples().to_vec(),
                engine.provenance("t").unwrap().dump(),
            )
        };
        let baseline = run(QueryExecMode::Row, 1);
        for exec in [QueryExecMode::Row, QueryExecMode::Auto, QueryExecMode::Vectorized] {
            for workers in [1usize, 2, 4, 7] {
                let replay = run(exec, workers);
                prop_assert!(
                    replay == baseline,
                    "engine diverged under query_exec={exec} workers={workers}"
                );
            }
        }
    }

    /// Sessions under footprint-recording commit validation: the vectorized
    /// path must record exactly the read footprint of the row path (it is
    /// recorded before the kernels run, by construction), and commits must
    /// land identically.
    #[test]
    fn session_footprints_agree_across_query_exec_modes(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..25), 8..30),
        split in 0i64..6,
    ) {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Float),
        ])
        .unwrap();
        let table = Table::from_rows(
            "t",
            schema,
            rows.iter()
                .map(|(a, b, c)| vec![Value::Int(*a), Value::Int(*b), Value::Float(*c as f64)])
                .collect(),
        )
        .unwrap();
        let sql = format!("SELECT a, b FROM t WHERE a <= {split}");
        let run = |exec: QueryExecMode| -> (String, Footprint, Vec<daisy::storage::Tuple>) {
            let mut engine = DaisyEngine::new(
                DaisyConfig::default()
                    .with_worker_threads(2)
                    .with_cost_model(false)
                    .with_query_exec(exec),
            )
            .unwrap();
            engine.register_table(table.clone());
            engine
                .add_constraint_text("dc", "t1.a = t2.a & t1.b < t2.b & t1.c > t2.c")
                .unwrap();
            let shared = engine.into_shared();
            let mut session = shared.session_named("probe");
            let outcome = session.execute_sql(&sql).unwrap();
            let reads = session.read_footprint().clone();
            session.commit().unwrap();
            (dump(&outcome.result), reads, shared.table("t").unwrap().tuples().to_vec())
        };
        let (row_dump, row_reads, row_table) = run(QueryExecMode::Row);
        for exec in [QueryExecMode::Auto, QueryExecMode::Vectorized] {
            let (vec_dump, vec_reads, vec_table) = run(exec);
            prop_assert!(row_dump == vec_dump, "result diverged under {exec}");
            prop_assert!(row_reads == vec_reads, "footprint diverged under {exec}");
            prop_assert!(row_table == vec_table, "committed table diverged under {exec}");
        }
    }
}
