//! Integration tests: time travel over the durable log.
//!
//! Differential properties, driven by generated workloads:
//!
//! 1. **`world_at(v)` ≡ in-memory prefix replay.**  For every version `v`,
//!    reconstructing the historical world from the durable store (newest
//!    checkpoint ≤ v plus log replay) is byte-identical — tables and
//!    provenance — to committing the first `v` requests against a plain
//!    in-memory core.  This holds for a durable service run at 1, 2, 4 and
//!    7 scheduler workers: the worker count changes wall-clock
//!    interleaving only, never the logged history.
//! 2. **`deltas_between(a..b)` composes.**  Applying the staged deltas and
//!    provenance diffs of commits `a+1..=b` onto `world_at(a)` reproduces
//!    `world_at(b)` exactly — the log's records really are the difference
//!    between any two historical worlds.

use proptest::prelude::*;

use daisy::common::{ColumnId, TupleId};
use daisy::prelude::*;
use daisy::storage::{CellProvenance, ProvenanceStore, Tuple};
use daisy::wal::ScratchDir;

const GROUPS: i64 = 5;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn dirty_table() -> Table {
    let schema = Schema::from_pairs(&[("lhs", DataType::Int), ("rhs", DataType::Int)]).unwrap();
    let mut rows = Vec::new();
    for g in 0..GROUPS {
        rows.push(vec![Value::Int(g), Value::Int(g * 10)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10 + 1)]);
    }
    Table::from_rows("t", schema, rows).unwrap()
}

fn engine(checkpoint_interval: usize) -> DaisyEngine {
    let mut engine = DaisyEngine::new(
        DaisyConfig::default()
            .with_worker_threads(1)
            .with_cost_model(false)
            .with_durability(DurabilityMode::Commit)
            .with_checkpoint_interval(checkpoint_interval),
    )
    .unwrap();
    engine.register_table(dirty_table());
    engine.add_fd(&FunctionalDependency::new(&["lhs"], "rhs"), "phi");
    engine
}

/// One generated request: clean the tuples of one FD group.
fn requests_for(groups: &[i64]) -> Vec<ServiceRequest> {
    groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            ServiceRequest::new(
                format!("s{i}"),
                format!("SELECT lhs, rhs FROM t WHERE lhs = {g}"),
            )
        })
        .collect()
}

type ProvenanceDump = Vec<((TupleId, ColumnId), CellProvenance)>;

#[derive(Debug, Clone, PartialEq)]
struct WorldDump {
    tuples: Vec<Tuple>,
    provenance: ProvenanceDump,
}

/// The acknowledged world after each in-memory commit (index = version):
/// the ground truth `world_at` is checked against.
fn in_memory_history(requests: &[ServiceRequest]) -> Vec<WorldDump> {
    let shared = engine(2).into_shared();
    let snap = |shared: &std::sync::Arc<EngineShared>| WorldDump {
        tuples: shared.table("t").unwrap().tuples().to_vec(),
        provenance: shared.provenance("t").map(|p| p.dump()).unwrap_or_default(),
    };
    let mut history = vec![snap(&shared)];
    for request in requests {
        let mut session = shared.session_named(&request.session);
        match &request.op {
            RequestOp::Sql(sql) => {
                session.execute_sql(sql).unwrap();
            }
            RequestOp::Ingest { table, rows } => {
                session.ingest_rows(table, rows.clone()).unwrap();
            }
        }
        session.commit().unwrap();
        history.push(snap(&shared));
    }
    history
}

fn snapshot_dump(snapshot: &WorldSnapshot) -> WorldDump {
    WorldDump {
        tuples: snapshot
            .table("t")
            .expect("table t persisted")
            .tuples()
            .to_vec(),
        provenance: snapshot
            .provenance("t")
            .map(|p| p.dump())
            .unwrap_or_default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 1: the durable store's `world_at(v)` equals the in-memory
    /// prefix replay at every version, for every worker count.
    #[test]
    fn world_at_equals_in_memory_prefix_replay(
        groups in prop::collection::vec(0i64..GROUPS, 1..7),
    ) {
        let requests = requests_for(&groups);
        let history = in_memory_history(&requests);
        for workers in WORKER_COUNTS {
            let dir = ScratchDir::new();
            let service = CleaningService::with_persistence(engine(2), dir.path()).unwrap();
            let report = service.run_with_workers(&requests, workers);
            prop_assert!(report.outcomes.iter().all(|o| o.outcome.is_ok()));
            prop_assert_eq!(report.final_version as usize, history.len() - 1);
            for (v, want) in history.iter().enumerate() {
                let snapshot = service.shared().world_at(v as u64).unwrap();
                prop_assert_eq!(snapshot.version() as usize, v);
                prop_assert_eq!(&snapshot_dump(&snapshot), want);
            }
            // Out-of-range versions are typed errors, not garbage worlds.
            prop_assert!(service.shared().world_at(history.len() as u64).is_err());
        }
    }

    /// Property 2: `deltas_between(a..b)` composes — replaying those
    /// records' staged deltas and provenance diffs onto `world_at(a)`
    /// reproduces `world_at(b)` byte for byte.
    #[test]
    fn deltas_between_compose_across_any_range(
        groups in prop::collection::vec(0i64..GROUPS, 2..7),
        cut in (0usize..100, 0usize..100),
    ) {
        let requests = requests_for(&groups);
        let dir = ScratchDir::new();
        let service = CleaningService::with_persistence(engine(2), dir.path()).unwrap();
        let report = service.run(&requests);
        prop_assert!(report.outcomes.iter().all(|o| o.outcome.is_ok()));
        let final_version = report.final_version;

        // Two cut points spanning an arbitrary (possibly empty) range.
        let a = (cut.0 as u64) % (final_version + 1);
        let b = a + (cut.1 as u64) % (final_version - a + 1);
        let commits = service.shared().deltas_between(a..b).unwrap();
        prop_assert_eq!(commits.len() as u64, b - a);

        // Compose: start from world_at(a), apply each commit's staged
        // deltas and provenance diffs in version order.
        let start = service.shared().world_at(a).unwrap();
        let mut table = start.table("t").expect("table t persisted").clone();
        let mut provenance: ProvenanceStore =
            start.provenance("t").cloned().unwrap_or_default();
        for (i, commit) in commits.iter().enumerate() {
            prop_assert_eq!(commit.version, a + 1 + i as u64);
            for (name, delta) in &commit.staged {
                prop_assert_eq!(name.as_str(), "t");
                table.apply_delta(delta).unwrap();
            }
            for (name, diff) in &commit.provenance {
                prop_assert_eq!(name.as_str(), "t");
                diff.apply(&mut provenance);
            }
        }
        let end = service.shared().world_at(b).unwrap();
        prop_assert_eq!(table.tuples(), end.table("t").unwrap().tuples());
        prop_assert_eq!(
            provenance.dump(),
            end.provenance("t").map(|p| p.dump()).unwrap_or_default()
        );
    }
}
