//! Integration tests: SPJ queries with violations on both sides of the join
//! (the clean⋈ behaviour of §4.4, Table 4, Lemma 5).

use daisy::data::errors::inject_fd_errors;
use daisy::data::ssb::{generate_lineorder, generate_supplier, SsbConfig};
use daisy::prelude::*;

fn setup(rows: usize) -> DaisyEngine {
    let config = SsbConfig {
        lineorder_rows: rows,
        distinct_orderkeys: rows / 10,
        distinct_suppkeys: 50,
        ..SsbConfig::default()
    };
    let mut lineorder = generate_lineorder(&config).unwrap();
    let mut supplier = generate_supplier(&config).unwrap();
    inject_fd_errors(&mut lineorder, "orderkey", "suppkey", 1.0, 0.1, 3).unwrap();
    inject_fd_errors(&mut supplier, "address", "suppkey", 0.5, 0.5, 4).unwrap();
    let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    engine.register_table(lineorder);
    engine.register_table(supplier);
    engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
    engine.add_fd(&FunctionalDependency::new(&["address"], "suppkey"), "psi");
    engine
}

#[test]
fn join_results_include_candidate_matches() {
    let mut engine = setup(2_000);
    let outcome = engine
        .execute_sql(
            "SELECT lineorder.orderkey, lineorder.suppkey, supplier.name FROM lineorder \
             JOIN supplier ON lineorder.suppkey = supplier.suppkey \
             WHERE orderkey <= 20",
        )
        .unwrap();
    assert!(!outcome.result.is_empty());
    // Join output tuples carry lineage to both base relations.
    for t in &outcome.result.tuples {
        assert_eq!(t.lineage.len(), 2);
    }
    // Cleaning repaired cells on the driving table.
    assert!(
        engine
            .table("lineorder")
            .unwrap()
            .probabilistic_tuple_count()
            > 0
    );
}

#[test]
fn join_cleaning_also_repairs_the_joined_table() {
    let mut engine = setup(2_000);
    engine
        .execute_sql(
            "SELECT lineorder.orderkey, supplier.address FROM lineorder \
             JOIN supplier ON lineorder.suppkey = supplier.suppkey \
             WHERE orderkey <= 200",
        )
        .unwrap();
    // The supplier side had address → suppkey violations among its
    // qualifying part; they must be repaired in place too.
    assert!(
        engine
            .table("supplier")
            .unwrap()
            .probabilistic_tuple_count()
            > 0
    );
}

#[test]
fn join_query_probabilistic_pairs_superset_of_dirty_pairs() {
    // The cleaned join must never lose pairs the dirty join produced: the
    // original value always remains one of the candidates (§4, Table 4e).
    let mut dirty_engine = setup(1_500);
    let sql = "SELECT lineorder.orderkey, supplier.name FROM lineorder \
               JOIN supplier ON lineorder.suppkey = supplier.suppkey \
               WHERE orderkey <= 50";
    // Count pairs on a cleaning-unaware engine (no rules registered).
    let mut unaware = DaisyEngine::with_defaults();
    unaware.register_table(dirty_engine.table("lineorder").unwrap().clone());
    unaware.register_table(dirty_engine.table("supplier").unwrap().clone());
    let dirty_pairs = unaware.execute_sql(sql).unwrap().result.len();
    let clean_pairs = dirty_engine.execute_sql(sql).unwrap().result.len();
    assert!(clean_pairs >= dirty_pairs);
}

#[test]
fn group_by_over_join_cleans_before_aggregation() {
    let mut engine = setup(1_500);
    let outcome = engine
        .execute_sql(
            "SELECT supplier.nation, COUNT(*) FROM lineorder \
             JOIN supplier ON lineorder.suppkey = supplier.suppkey \
             WHERE orderkey <= 100 GROUP BY supplier.nation",
        )
        .unwrap();
    assert!(!outcome.result.is_empty());
    assert!(outcome.result.schema.contains("COUNT(*)"));
    assert!(outcome.report.errors_repaired > 0);
}
