//! Integration tests: footprint-based commit validation.
//!
//! Two properties are pinned down here, on top of the worker-count
//! invariance `integration_service.rs` already enforces:
//!
//! 1. **The validation mode never changes an observable output.**  Version
//!    and footprint validation produce byte-identical query results,
//!    tables and provenance for the same admitted requests, at every
//!    worker count — footprint validation only changes *how* a commit is
//!    admitted, never *what* it publishes.
//! 2. **Disjoint-table workloads never replay under footprint
//!    validation.**  Sessions cleaning different tables have disjoint
//!    rule keys and disjoint footprints, so every conflicted commit takes
//!    the `O(|delta|)` install path; the cause counters prove no request
//!    log was ever re-executed.

use proptest::prelude::*;

use daisy::common::{ColumnId, CommitValidation, TupleId};
use daisy::prelude::*;
use daisy::storage::{CellProvenance, Tuple};

/// Worker counts every scenario replays at; 1 is the serial baseline, 7
/// exceeds the session-lane count.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

type ProvenanceDump = Vec<((TupleId, ColumnId), CellProvenance)>;

/// Everything observable about one service run, wall-clock and commit-path
/// bookkeeping excluded (the validation mode is allowed to change *how*
/// commits are admitted, never *what* they publish).
#[derive(Debug, Clone, PartialEq)]
struct ServiceSnapshot {
    outcomes: Vec<(usize, String, Result<Vec<Tuple>, String>)>,
    commits: u64,
    final_version: u64,
    tables: Vec<(String, Vec<Tuple>)>,
    provenance: Vec<(String, ProvenanceDump)>,
}

fn snapshot_service(service: &CleaningService, report: &ServiceReport) -> ServiceSnapshot {
    let outcomes = report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.submitted,
                o.session.clone(),
                o.outcome
                    .as_ref()
                    .map(|q| q.result.tuples.clone())
                    .map_err(|e| e.clone()),
            )
        })
        .collect();
    let shared = service.shared();
    let names = shared.table_names();
    let tables = names
        .iter()
        .map(|n| (n.clone(), shared.table(n).unwrap().tuples().to_vec()))
        .collect();
    let provenance = names
        .iter()
        .map(|n| {
            (
                n.clone(),
                shared.provenance(n).map(|p| p.dump()).unwrap_or_default(),
            )
        })
        .collect();
    ServiceSnapshot {
        outcomes,
        commits: report.commits,
        final_version: report.final_version,
        tables,
        provenance,
    }
}

/// A dirty two-column FD table (`lhs -> rhs` violated within groups).
fn dirty_fd_table(name: &str, groups: usize, salt: i64) -> Table {
    let schema = Schema::from_pairs(&[("lhs", DataType::Int), ("rhs", DataType::Int)]).unwrap();
    let mut rows = Vec::new();
    for g in 0..groups as i64 {
        // Three tuples per group; one dissents on the rhs.
        rows.push(vec![Value::Int(g), Value::Int(g * 10 + salt)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10 + salt)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10 + salt + 1)]);
    }
    Table::from_rows(name, schema, rows).unwrap()
}

const DISJOINT_LANES: usize = 6;

/// One table per session lane, all governed by the same FD: the canonical
/// disjoint-table workload.
fn disjoint_service(validation: CommitValidation, workers: usize) -> CleaningService {
    let mut engine = DaisyEngine::new(
        DaisyConfig::default()
            .with_worker_threads(1)
            .with_cost_model(false)
            .with_service_workers(workers)
            .with_commit_validation(validation),
    )
    .unwrap();
    for lane in 0..DISJOINT_LANES {
        engine.register_table(dirty_fd_table(&format!("region_{lane}"), 6, lane as i64));
    }
    engine.add_fd(&FunctionalDependency::new(&["lhs"], "rhs"), "phi");
    CleaningService::new(engine)
}

/// One request per lane, each session confined to its own table.  A second
/// request on the same table could legitimately replay — it may speculate
/// before its predecessor's repairs land, a genuine read conflict — so the
/// zero-replay invariant below is only guaranteed for one-shot lanes.
fn disjoint_requests() -> Vec<ServiceRequest> {
    (0..DISJOINT_LANES)
        .map(|lane| {
            ServiceRequest::new(
                format!("s{lane}"),
                format!("SELECT lhs, rhs FROM region_{lane} WHERE lhs <= 4"),
            )
        })
        .collect()
}

/// Disjoint-table sessions must produce byte-identical outputs under both
/// validation modes at every worker count, and under footprint validation
/// no commit may ever replay its request log.
#[test]
fn disjoint_tables_are_identical_across_modes_and_never_replay() {
    let requests = disjoint_requests();
    let baseline = {
        let service = disjoint_service(CommitValidation::Version, 1);
        let report = service.run_serial(&requests);
        snapshot_service(&service, &report)
    };
    assert!(baseline.outcomes.iter().all(|(_, _, o)| o.is_ok()));
    assert_eq!(baseline.commits, DISJOINT_LANES as u64);

    for validation in [CommitValidation::Version, CommitValidation::Footprint] {
        for workers in WORKER_COUNTS {
            let service = disjoint_service(validation, workers);
            let report = service.run(&requests);
            assert_eq!(
                baseline,
                snapshot_service(&service, &report),
                "outputs diverged at {workers} workers under {validation} validation"
            );
            assert_eq!(report.causes.total(), report.commits);
            if validation == CommitValidation::Footprint {
                // Disjoint rule keys and footprints: every conflicted
                // commit installs in O(|delta|) — zero replays, zero
                // rechecks, perfect clean-commit rate.
                assert_eq!(
                    report.causes.full_rebase, 0,
                    "a disjoint-table commit replayed at {workers} workers"
                );
                assert_eq!(report.causes.delta_recheck, 0);
                assert_eq!(report.rebases, 0);
                assert!((report.clean_commit_rate() - 1.0).abs() < 1e-12);
                assert_eq!(
                    report.causes.clean + report.causes.footprint_clean,
                    report.commits
                );
            }
        }
    }
}

/// A shared-table (fully contended) workload: footprint validation must
/// degrade gracefully to exactly the version-mode behaviour.
#[test]
fn contended_tables_are_identical_across_modes() {
    let build = |validation: CommitValidation, workers: usize| {
        let mut engine = DaisyEngine::new(
            DaisyConfig::default()
                .with_worker_threads(1)
                .with_cost_model(false)
                .with_service_workers(workers)
                .with_commit_validation(validation),
        )
        .unwrap();
        engine.register_table(dirty_fd_table("hot", 8, 0));
        engine.add_fd(&FunctionalDependency::new(&["lhs"], "rhs"), "phi");
        CleaningService::new(engine)
    };
    let requests: Vec<ServiceRequest> = (0..6)
        .map(|i| {
            ServiceRequest::new(
                format!("s{}", i % 3),
                format!("SELECT lhs, rhs FROM hot WHERE lhs <= {}", 2 + i),
            )
        })
        .collect();
    let baseline = {
        let service = build(CommitValidation::Version, 1);
        let report = service.run_serial(&requests);
        snapshot_service(&service, &report)
    };
    for validation in [CommitValidation::Version, CommitValidation::Footprint] {
        for workers in WORKER_COUNTS {
            let service = build(validation, workers);
            let report = service.run(&requests);
            assert_eq!(
                baseline,
                snapshot_service(&service, &report),
                "outputs diverged at {workers} workers under {validation} validation"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings over a shared dirty table: footprint
    /// validation, version validation and the serial replay must be
    /// byte-identical, whatever the schedule.
    #[test]
    fn footprint_equals_version_equals_serial(
        pairs in prop::collection::vec((0i64..12, 0i64..6), 8..60),
        // Each request: (session 0..3, predicate threshold).
        plan in prop::collection::vec((0usize..3, 0i64..12), 1..10),
        workers in 2usize..6,
    ) {
        let schema =
            Schema::from_pairs(&[("lhs", DataType::Int), ("rhs", DataType::Int)]).unwrap();
        let table = Table::from_rows(
            "t",
            schema,
            pairs.iter().map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]).collect(),
        )
        .unwrap();
        let requests: Vec<ServiceRequest> = plan
            .iter()
            .map(|(session, threshold)| {
                ServiceRequest::new(
                    format!("s{session}"),
                    format!("SELECT lhs, rhs FROM t WHERE lhs <= {threshold}"),
                )
            })
            .collect();
        let build = |validation: CommitValidation| {
            let mut engine = DaisyEngine::new(
                DaisyConfig::default()
                    .with_worker_threads(1)
                    .with_cost_model(false)
                    .with_service_workers(workers)
                    .with_commit_validation(validation),
            )
            .unwrap();
            engine.register_table(table.clone());
            engine.add_fd(&FunctionalDependency::new(&["lhs"], "rhs"), "phi");
            CleaningService::new(engine)
        };
        let serial = build(CommitValidation::Version);
        let serial_report = serial.run_serial(&requests);
        let baseline = snapshot_service(&serial, &serial_report);
        for validation in [CommitValidation::Version, CommitValidation::Footprint] {
            let service = build(validation);
            let report = service.run(&requests);
            let replay = snapshot_service(&service, &report);
            prop_assert!(
                baseline == replay,
                "{} validation diverged from serial replay",
                validation
            );
        }
    }
}
