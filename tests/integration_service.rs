//! Integration tests: the concurrent multi-session cleaning service.
//!
//! The service's defining guarantee is that **the number of scheduler
//! workers never changes any observable output**: N interleaved sessions
//! committed through the sequenced turnstile produce byte-identical query
//! results, cleaning reports, provenance dumps and final tables to the same
//! admitted requests replayed strictly serially.  These tests pin that down
//! over the SSB workload the other suites use, plus a proptest that throws
//! random session schedules at the scheduler.

use proptest::prelude::*;

use daisy::common::{ColumnId, ServiceFairness, TupleId};
use daisy::data::errors::{inject_fd_errors, inject_inequality_errors};
use daisy::data::ssb::{generate_lineorder, SsbConfig};
use daisy::prelude::*;
use daisy::storage::{CellProvenance, Tuple};

/// The scheduler worker counts every scenario is replayed at; 1 is the
/// serial baseline, 7 deliberately exceeds the request-lane count.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A canonical provenance dump, as produced by `ProvenanceStore::dump`.
type ProvenanceDump = Vec<((TupleId, ColumnId), CellProvenance)>;

/// Everything observable about one service run, wall-clock excluded.
#[derive(Debug, Clone, PartialEq)]
struct ServiceSnapshot {
    /// Per-request: (submitted index, session, result tuples or error).
    outcomes: Vec<(usize, String, Result<Vec<Tuple>, String>)>,
    /// Per-request report counters for successful requests.
    counters: Vec<Option<(usize, usize, usize, usize)>>,
    commits: u64,
    final_version: u64,
    /// Final base-table tuples and provenance, per table in name order.
    tables: Vec<(String, Vec<Tuple>)>,
    provenance: Vec<(String, ProvenanceDump)>,
}

fn snapshot_service(service: &CleaningService, report: &ServiceReport) -> ServiceSnapshot {
    let outcomes = report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.submitted,
                o.session.clone(),
                o.outcome
                    .as_ref()
                    .map(|q| q.result.tuples.clone())
                    .map_err(|e| e.clone()),
            )
        })
        .collect();
    let counters = report
        .outcomes
        .iter()
        .map(|o| {
            o.outcome.as_ref().ok().map(|q| {
                (
                    q.result.len(),
                    q.report.extra_tuples,
                    q.report.errors_repaired,
                    q.report.cells_updated,
                )
            })
        })
        .collect();
    let shared = service.shared();
    let names = shared.table_names();
    let tables = names
        .iter()
        .map(|n| (n.clone(), shared.table(n).unwrap().tuples().to_vec()))
        .collect();
    let provenance = names
        .iter()
        .map(|n| {
            (
                n.clone(),
                shared.provenance(n).map(|p| p.dump()).unwrap_or_default(),
            )
        })
        .collect();
    ServiceSnapshot {
        outcomes,
        counters,
        commits: report.commits,
        final_version: report.final_version,
        tables,
        provenance,
    }
}

fn dirty_lineorder(rows: usize, seed: u64) -> Table {
    let ssb = SsbConfig {
        lineorder_rows: rows,
        distinct_orderkeys: rows / 10,
        distinct_suppkeys: 20,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.15, seed).unwrap();
    inject_inequality_errors(
        &mut table,
        "extended_price",
        "discount",
        0.05,
        0.5,
        seed + 1,
    )
    .unwrap();
    table
}

fn build_service(table: &Table, fairness: ServiceFairness, workers: usize) -> CleaningService {
    let mut engine = DaisyEngine::new(
        DaisyConfig::default()
            .with_worker_threads(2)
            .with_cost_model(false)
            .with_theta_partitions(16)
            .with_service_workers(workers)
            .with_service_fairness(fairness),
    )
    .unwrap();
    engine.register_table(table.clone());
    engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
    engine
        .add_constraint_text(
            "dc",
            "t1.suppkey = t2.suppkey & t1.extended_price < t2.extended_price \
             & t1.discount > t2.discount",
        )
        .unwrap();
    CleaningService::new(engine)
}

fn mixed_requests() -> Vec<ServiceRequest> {
    vec![
        ServiceRequest::new(
            "a",
            "SELECT orderkey, suppkey FROM lineorder WHERE suppkey <= 8",
        ),
        ServiceRequest::new(
            "b",
            "SELECT suppkey, extended_price, discount FROM lineorder WHERE extended_price <= 4000",
        ),
        ServiceRequest::new(
            "a",
            "SELECT orderkey, suppkey FROM lineorder WHERE suppkey > 8",
        ),
        ServiceRequest::new(
            "c",
            "SELECT suppkey, COUNT(*) FROM lineorder GROUP BY suppkey",
        ),
        ServiceRequest::new(
            "b",
            "SELECT suppkey, extended_price, discount FROM lineorder",
        ),
        ServiceRequest::new("c", "SELECT orderkey FROM lineorder WHERE orderkey <= 40"),
    ]
}

/// N interleaved sessions under the scheduler must be byte-identical to the
/// serial replay, at every worker count and under both fairness policies.
#[test]
fn concurrent_sessions_match_serial_replay() {
    let table = dirty_lineorder(600, 51);
    let requests = mixed_requests();
    for fairness in [ServiceFairness::RoundRobin, ServiceFairness::Fifo] {
        let serial_service = build_service(&table, fairness, 1);
        let serial_report = serial_service.run_serial(&requests);
        let baseline = snapshot_service(&serial_service, &serial_report);
        assert!(
            baseline
                .counters
                .iter()
                .flatten()
                .any(|&(_, _, repaired, _)| repaired > 0),
            "scenario must repair something to be a meaningful probe"
        );
        for workers in WORKER_COUNTS {
            let service = build_service(&table, fairness, workers);
            let report = service.run(&requests);
            let replay = snapshot_service(&service, &report);
            assert_eq!(
                baseline, replay,
                "service diverged at {workers} workers under {fairness} fairness"
            );
        }
    }
}

/// Failed requests must be transactional no-ops at every worker count.
#[test]
fn failed_requests_are_nops_at_any_worker_count() {
    let table = dirty_lineorder(400, 52);
    let mut requests = mixed_requests();
    requests.insert(2, ServiceRequest::new("a", "SELECT broken FROM nowhere"));
    requests.insert(5, ServiceRequest::new("b", "SELECT FROM"));

    let serial_service = build_service(&table, ServiceFairness::RoundRobin, 1);
    let serial_report = serial_service.run_serial(&requests);
    let baseline = snapshot_service(&serial_service, &serial_report);
    assert_eq!(
        baseline
            .outcomes
            .iter()
            .filter(|(_, _, o)| o.is_err())
            .count(),
        2
    );
    assert_eq!(baseline.commits, 6);
    for workers in &WORKER_COUNTS[1..] {
        let service = build_service(&table, ServiceFairness::RoundRobin, *workers);
        let report = service.run(&requests);
        assert_eq!(
            baseline,
            snapshot_service(&service, &report),
            "failure handling diverged at {workers} workers"
        );
    }
}

/// The `DAISY_SERVICE_WORKERS` override must flow into the default config;
/// whatever it says, the scheduler's outputs stay invariant.
#[test]
fn service_worker_env_override_preserves_results() {
    if let Some(forced) = DaisyConfig::env_service_workers() {
        assert_eq!(
            DaisyConfig::default().service_workers,
            forced,
            "DAISY_SERVICE_WORKERS must size the default config"
        );
    }
    if let Some(forced) = ServiceFairness::from_env() {
        assert_eq!(DaisyConfig::default().service_fairness, forced);
    }
    let table = dirty_lineorder(300, 53);
    let requests = mixed_requests();
    let default_workers = DaisyConfig::default().service_workers;
    let env_sized = build_service(&table, ServiceFairness::RoundRobin, default_workers);
    let env_report = env_sized.run(&requests);
    let other = build_service(&table, ServiceFairness::RoundRobin, default_workers + 3);
    let other_report = other.run(&requests);
    assert_eq!(
        snapshot_service(&env_sized, &env_report),
        snapshot_service(&other, &other_report)
    );
}

/// Builds a small dirty FD table for the proptest schedules.
fn fd_table(pairs: &[(i64, i64)]) -> Table {
    let schema = Schema::from_pairs(&[("lhs", DataType::Int), ("rhs", DataType::Int)]).unwrap();
    Table::from_rows(
        "t",
        schema,
        pairs
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random session schedules — random table, random per-session request
    /// interleavings, random worker counts — always match serial replay.
    #[test]
    fn random_session_schedules_match_serial_replay(
        pairs in prop::collection::vec((0i64..12, 0i64..6), 8..80),
        // Each request: (session 0..3, predicate threshold).
        plan in prop::collection::vec((0usize..3, 0i64..12), 1..10),
        workers in 2usize..6,
    ) {
        let table = fd_table(&pairs);
        let requests: Vec<ServiceRequest> = plan
            .iter()
            .map(|(session, threshold)| {
                ServiceRequest::new(
                    format!("s{session}"),
                    format!("SELECT lhs, rhs FROM t WHERE lhs <= {threshold}"),
                )
            })
            .collect();
        let build = || {
            let mut engine = DaisyEngine::new(
                DaisyConfig::default()
                    .with_worker_threads(1)
                    .with_cost_model(false)
                    .with_service_workers(workers),
            )
            .unwrap();
            engine.register_table(table.clone());
            engine.add_fd(&FunctionalDependency::new(&["lhs"], "rhs"), "phi");
            CleaningService::new(engine)
        };
        let serial = build();
        let serial_report = serial.run_serial(&requests);
        let concurrent = build();
        let concurrent_report = concurrent.run(&requests);
        prop_assert_eq!(
            snapshot_service(&serial, &serial_report),
            snapshot_service(&concurrent, &concurrent_report)
        );
    }
}
