//! Differential tests for the streaming-ingest path: the persistent
//! [`MaintainedIndex`] absorbed delta by delta must be indistinguishable —
//! violations, candidate-pair counts, repaired tables, provenance — from
//! rebuilding the violation index on every check, and from a brute-force
//! quadratic oracle; and the service scheduler must replay ingest streams
//! byte-identically at any worker count.
//!
//! Three layers, matching how the incremental path is assembled:
//!
//! 1. **Index layer** — `absorb_delta` + `detect_delta` versus a fresh
//!    [`ViolationIndex`] swept with the delta admit filter, versus the
//!    quadratic oracle restricted to pairs touching the delta.
//! 2. **Engine layer** — `DaisyEngine::ingest_rows` under
//!    `IncrementalMode::On` versus `Off` (per-batch rebuild): identical
//!    final tuples, provenance and cleaning reports.
//! 3. **Service layer** — mixed SQL + ingest request streams at 1/2/4/7
//!    scheduler workers: identical outcomes, tables and provenance.

use proptest::prelude::*;

use daisy::common::{DaisyConfig, DataType, IncrementalMode, Schema, Value};
use daisy::core::index::{canonicalize_violations, MaintainedIndex, ViolationIndex};
use daisy::core::DaisyEngine;
use daisy::exec::ExecContext;
use daisy::expr::{ComparisonOp, DcPredicate, DenialConstraint, Operand, Violation};
use daisy::service::{CleaningService, ServiceRequest};
use daisy::storage::{Delta, Table};

/// Builds the shared three-column test table: `a` is a low-cardinality
/// grouping column, `b` numeric, `c` a float column with occasional NULLs
/// so NULL sweep exclusion is exercised through the maintained path too.
fn row_values(row: &(i64, i64, i64)) -> Vec<Value> {
    let (a, b, c) = *row;
    let c = if c % 5 == 0 {
        Value::Null
    } else {
        Value::Float(c as f64 / 2.0)
    };
    vec![Value::Int(a), Value::Int(b), c]
}

fn table_from_rows(rows: &[(i64, i64, i64)]) -> Table {
    let schema = Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Int),
        ("c", DataType::Float),
    ])
    .unwrap();
    Table::from_rows("t", schema, rows.iter().map(row_values).collect()).unwrap()
}

const COLUMNS: [&str; 3] = ["a", "b", "c"];

/// Decodes one `(op, left column, right column, shape)` spec into a
/// predicate, same scheme as `integration_detection_differential`.
fn predicate_from_spec(spec: &(usize, usize, usize, usize)) -> DcPredicate {
    let (op, lcol, rcol, shape) = *spec;
    let op = [
        ComparisonOp::Eq,
        ComparisonOp::Neq,
        ComparisonOp::Lt,
        ComparisonOp::Le,
        ComparisonOp::Gt,
        ComparisonOp::Ge,
    ][op % 6];
    let left_col = COLUMNS[lcol % 3];
    let right_col = COLUMNS[rcol % 3];
    match shape % 5 {
        0 => DcPredicate::new(Operand::attr(0, left_col), op, Operand::attr(1, right_col)),
        1 => DcPredicate::new(Operand::attr(1, left_col), op, Operand::attr(0, right_col)),
        2 => DcPredicate::new(Operand::attr(0, left_col), op, Operand::attr(0, right_col)),
        3 => DcPredicate::new(Operand::attr(1, left_col), op, Operand::attr(1, right_col)),
        _ => DcPredicate::new(
            Operand::attr(0, left_col),
            op,
            Operand::Const(Value::Int((rcol % 3) as i64 * 2)),
        ),
    }
}

/// An equality-bearing DC with a random residual tail: the shape the index
/// subsystem is built for, and one that reliably produces repairs.
fn equality_dc(tail: &[(usize, usize, usize, usize)]) -> DenialConstraint {
    let mut predicates = vec![
        DcPredicate::new(
            Operand::attr(0, "a"),
            ComparisonOp::Eq,
            Operand::attr(1, "a"),
        ),
        DcPredicate::new(
            Operand::attr(0, "b"),
            ComparisonOp::Lt,
            Operand::attr(1, "b"),
        ),
    ];
    predicates.extend(tail.iter().map(predicate_from_spec));
    DenialConstraint::new("dc", 2, predicates)
}

/// Brute-force delta-restricted oracle: every ordered pair of distinct
/// tuples with at least one member at a delta position, canonicalised.
fn delta_oracle(table: &Table, dc: &DenialConstraint, delta_from: usize) -> Vec<Violation> {
    let tuples = table.tuples();
    let mut expected = Vec::new();
    for (i, x) in tuples.iter().enumerate() {
        for (j, y) in tuples.iter().enumerate() {
            if i == j || (i < delta_from && j < delta_from) {
                continue;
            }
            if dc.violated_by(table.schema(), &[x, y]).unwrap() {
                expected.push(Violation::pair(dc.id, x.id, y.id).canonical());
            }
        }
    }
    expected.sort_by(|a, b| a.tuples.cmp(&b.tuples));
    expected.dedup();
    expected
}

/// Appends `rows` to `table` as one append delta with fresh sequential
/// ids — the same delta `DaisyEngine::ingest_rows` stages.
fn append_batch(table: &mut Table, rows: &[(i64, i64, i64)]) -> Delta {
    let mut delta = Delta::new();
    let base = table.next_tuple_id().raw();
    for (k, row) in rows.iter().enumerate() {
        delta.push_append(
            daisy::common::TupleId::new(base + k as u64),
            row_values(row),
        );
    }
    table.apply_delta(&delta).unwrap();
    delta
}

fn engine_with(
    mode: IncrementalMode,
    base: &[(i64, i64, i64)],
    dc: &DenialConstraint,
) -> DaisyEngine {
    let mut engine = DaisyEngine::new(
        DaisyConfig::default()
            .with_worker_threads(1)
            .with_incremental_detection(mode),
    )
    .unwrap();
    engine.register_table(table_from_rows(base));
    engine.add_constraint(dc.clone());
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Index layer: across a stream of append batches, the maintained
    /// index (absorbed delta by delta, never rebuilt) finds exactly the
    /// violations of (a) a fresh per-batch index rebuild swept with the
    /// delta admit filter `i ∈ Δ ∨ j ∈ Δ` — including the candidate-pair
    /// counts — and (b) the brute-force quadratic oracle restricted to
    /// pairs touching the delta.
    #[test]
    fn maintained_index_matches_rebuild_and_oracle_across_batches(
        base in prop::collection::vec((0i64..5, 0i64..30, 0i64..25), 2..50),
        tail in prop::collection::vec((0usize..6, 0usize..3, 0usize..3, 0usize..5), 0..3),
        batches in prop::collection::vec(
            prop::collection::vec((0i64..5, 0i64..30, 0i64..25), 1..8),
            1..4,
        ),
    ) {
        let ctx = ExecContext::new(2);
        let dc = equality_dc(&tail);
        let plan = dc.index_plan().expect("two-tuple DCs always have a plan");
        let mut table = table_from_rows(&base);
        let schema = table.schema().as_ref().clone();
        let mut maintained = MaintainedIndex::build(&schema, &dc, &plan, &table).unwrap();

        for batch in &batches {
            let delta = append_batch(&mut table, batch);
            maintained.absorb_delta(&table, &delta).unwrap();
            prop_assert!(maintained.is_current(&table));
            let delta_from = table.len() - batch.len();
            let positions: Vec<usize> = (delta_from..table.len()).collect();
            let (incremental, incremental_pairs) = maintained
                .detect_delta(&ctx, &schema, table.tuples(), &positions)
                .unwrap();

            let rebuilt = ViolationIndex::build(&ctx, &schema, &dc, &plan, table.tuples()).unwrap();
            let (found, rebuild_pairs) = rebuilt
                .sweep_detect(&ctx, &schema, table.tuples(), |i, j| {
                    i >= delta_from || j >= delta_from
                })
                .unwrap();
            let rebuild = canonicalize_violations(found);

            prop_assert_eq!(&incremental, &rebuild);
            prop_assert_eq!(incremental_pairs, rebuild_pairs);
            prop_assert_eq!(&incremental, &delta_oracle(&table, &dc, delta_from));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine layer: the same ingest stream through `IncrementalMode::On`
    /// (persistent maintained index) and `IncrementalMode::Off` (per-batch
    /// index rebuild) produces byte-identical repaired tables, provenance
    /// and per-batch cleaning reports.
    #[test]
    fn incremental_ingest_matches_rebuild_mode_end_to_end(
        base in prop::collection::vec((0i64..5, 0i64..30, 0i64..25), 2..40),
        tail in prop::collection::vec((0usize..6, 0usize..3, 0usize..3, 0usize..5), 0..2),
        batches in prop::collection::vec(
            prop::collection::vec((0i64..5, 0i64..30, 0i64..25), 0..6),
            1..4,
        ),
    ) {
        let dc = equality_dc(&tail);
        let mut on = engine_with(IncrementalMode::On, &base, &dc);
        let mut off = engine_with(IncrementalMode::Off, &base, &dc);
        for batch in &batches {
            let rows: Vec<Vec<Value>> = batch.iter().map(row_values).collect();
            let on_outcome = on.ingest_rows("t", rows.clone()).unwrap();
            let off_outcome = off.ingest_rows("t", rows).unwrap();
            prop_assert_eq!(
                on_outcome.report.errors_repaired,
                off_outcome.report.errors_repaired
            );
            prop_assert_eq!(
                on_outcome.report.cells_updated,
                off_outcome.report.cells_updated
            );
        }
        prop_assert_eq!(on.table("t").unwrap().tuples(), off.table("t").unwrap().tuples());
        prop_assert_eq!(
            on.provenance("t").map(|p| p.dump()),
            off.provenance("t").map(|p| p.dump())
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Service layer: a mixed SQL + ingest request stream commits
    /// byte-identically at 1, 2, 4 and 7 scheduler workers — the streaming
    /// ingest path composes with speculative execution and footprint-based
    /// commit validation without breaking the determinism guarantee.
    #[test]
    fn ingest_request_streams_are_deterministic_at_any_worker_count(
        base in prop::collection::vec((0i64..5, 0i64..30, 0i64..25), 2..30),
        batches in prop::collection::vec(
            prop::collection::vec((0i64..5, 0i64..30, 0i64..25), 0..5),
            1..4,
        ),
    ) {
        let dc = equality_dc(&[]);
        let requests: Vec<ServiceRequest> = batches
            .iter()
            .enumerate()
            .flat_map(|(k, batch)| {
                let rows: Vec<Vec<Value>> = batch.iter().map(row_values).collect();
                vec![
                    ServiceRequest::ingest(format!("s{}", k % 3), "t", rows),
                    ServiceRequest::new(format!("s{}", (k + 1) % 3), "SELECT b FROM t WHERE a = 1"),
                ]
            })
            .collect();

        let run = |workers: usize| {
            let service = CleaningService::new(engine_with(IncrementalMode::On, &base, &dc));
            let report = service.run_with_workers(&requests, workers);
            let observable: Vec<(usize, Option<Vec<daisy::storage::Tuple>>)> = report
                .outcomes
                .iter()
                .map(|o| (o.submitted, o.outcome.as_ref().ok().map(|q| q.result.tuples.clone())))
                .collect();
            let table = service.shared().table("t").unwrap().tuples().to_vec();
            let provenance = service.shared().provenance("t").map(|p| p.dump());
            (observable, table, provenance)
        };

        let serial = run(1);
        for workers in [2usize, 4, 7] {
            let concurrent = run(workers);
            prop_assert!(concurrent == serial, "diverged at {} workers", workers);
        }
    }
}
