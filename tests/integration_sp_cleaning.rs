//! Integration tests: SP queries over dirty SSB data, Daisy vs the offline
//! baseline (the correctness guarantee of §4.1: for FDs, the query-driven
//! approach produces the same qualifying tuples as cleaning everything
//! offline and then querying).

use daisy::data::errors::inject_fd_errors;
use daisy::data::ssb::{generate_lineorder, SsbConfig};
use daisy::data::workload::non_overlapping_range_queries;
use daisy::offline::full::offline_clean_fd;
use daisy::prelude::*;
use daisy::query::physical::PredicateMode;
use daisy::query::{execute, Catalog, LogicalPlan};

fn dirty_lineorder(rows: usize) -> Table {
    let config = SsbConfig {
        lineorder_rows: rows,
        distinct_orderkeys: rows / 10,
        distinct_suppkeys: 50,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&config).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.1, 7).unwrap();
    table
}

#[test]
fn daisy_sp_results_match_offline_cleaning_then_querying() {
    let dirty = dirty_lineorder(2_000);
    let fd = FunctionalDependency::new(&["orderkey"], "suppkey");

    // Offline: clean the whole table first, then run the workload.
    let mut offline_table = dirty.clone();
    offline_clean_fd(&mut offline_table, &fd).unwrap();

    // Daisy: clean incrementally while running the same workload.
    let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    engine.register_table(dirty.clone());
    engine.add_fd(&fd, "phi");

    let workload =
        non_overlapping_range_queries(&dirty, "suppkey", 10, &["orderkey", "suppkey"]).unwrap();
    let ctx = daisy::exec::ExecContext::sequential();
    let mut offline_catalog = Catalog::new();
    offline_catalog.add(offline_table);

    for query in &workload.queries {
        let daisy_result = engine.execute(query).unwrap().result;
        let plan = LogicalPlan::from_query(query).unwrap();
        let offline_result =
            execute(&ctx, &offline_catalog, &plan, PredicateMode::Possible).unwrap();
        // Same set of qualifying base tuples (compare by sorted tuple ids of
        // the driving table — SP queries keep base identity).
        let mut daisy_ids: Vec<_> = daisy_result.tuple_ids();
        let mut offline_ids: Vec<_> = offline_result.tuple_ids();
        daisy_ids.sort();
        offline_ids.sort();
        assert_eq!(
            daisy_ids, offline_ids,
            "query `{query}` returned different qualifying tuples"
        );
    }
}

#[test]
fn daisy_repairs_only_what_queries_touch() {
    let dirty = dirty_lineorder(2_000);
    let fd = FunctionalDependency::new(&["orderkey"], "suppkey");
    let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    engine.register_table(dirty.clone());
    engine.add_fd(&fd, "phi");

    // One narrow query: only its correlated cluster becomes probabilistic.
    let workload =
        non_overlapping_range_queries(&dirty, "suppkey", 50, &["orderkey", "suppkey"]).unwrap();
    engine.execute(&workload.queries[0]).unwrap();
    let after_one = engine
        .table("lineorder")
        .unwrap()
        .probabilistic_tuple_count();
    assert!(after_one > 0, "the touched cluster must be repaired");
    assert!(
        after_one < dirty.len(),
        "gradual cleaning must not touch the whole dataset after one query"
    );

    // Offline cleaning repairs everything at once.
    let mut offline_table = dirty.clone();
    offline_clean_fd(&mut offline_table, &fd).unwrap();
    assert!(offline_table.probabilistic_tuple_count() > after_one);
}

#[test]
fn repeated_and_overlapping_queries_are_idempotent() {
    let dirty = dirty_lineorder(1_000);
    let fd = FunctionalDependency::new(&["orderkey"], "suppkey");
    let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    engine.register_table(dirty);
    engine.add_fd(&fd, "phi");

    let q = "SELECT orderkey, suppkey FROM lineorder WHERE suppkey <= 10";
    let first = engine.execute_sql(q).unwrap();
    let updated_after_first = engine.table("lineorder").unwrap().total_candidates();
    let second = engine.execute_sql(q).unwrap();
    let updated_after_second = engine.table("lineorder").unwrap().total_candidates();
    assert_eq!(first.result.len(), second.result.len());
    assert_eq!(
        updated_after_first, updated_after_second,
        "re-running the same query must not add new candidates"
    );
}

#[test]
fn queries_with_no_overlapping_rule_run_untouched() {
    let dirty = dirty_lineorder(500);
    let mut engine = DaisyEngine::with_defaults();
    engine.register_table(dirty.clone());
    engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
    let outcome = engine
        .execute_sql("SELECT quantity FROM lineorder WHERE quantity < 10")
        .unwrap();
    assert!(!outcome.result.is_empty());
    assert_eq!(outcome.report.errors_repaired, 0);
    assert_eq!(
        engine
            .table("lineorder")
            .unwrap()
            .probabilistic_tuple_count(),
        0
    );
}
