//! Integration tests: cross-thread-count determinism.
//!
//! Every data-parallel primitive in `daisy-exec` is order preserving, and
//! the parallelised cleaning kernels (the partial theta-join DC check, FD
//! violation grouping in `cleanσ`, and candidate-range construction in the
//! general-DC repair) merge their per-partition results in partition order.
//! The end-to-end guarantee this buys is that **the number of worker
//! threads never changes any observable output**: query results, cleaning
//! reports, provenance, and the final probabilistic state of the base
//! tables are byte-identical whether the engine runs on 1 thread or 7.
//!
//! These tests pin that guarantee down for the three workload families the
//! other integration suites exercise (SP cleaning, SPJ cleaning, and
//! general-DC engine workloads).

use daisy::common::{ColumnId, DetectionStrategy, SnapshotMode, TupleId, Value};
use daisy::data::errors::{inject_fd_errors, inject_inequality_errors};
use daisy::data::ssb::{generate_lineorder, generate_supplier, SsbConfig};
use daisy::data::workload::non_overlapping_range_queries;
use daisy::prelude::*;
use daisy::storage::{CellProvenance, Table, Tuple};

/// The worker counts every scenario is replayed at; 1 is the sequential
/// baseline, 7 deliberately does not divide typical block/row counts.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A canonical provenance dump, as produced by `ProvenanceStore::dump`.
type ProvenanceDump = Vec<((TupleId, ColumnId), CellProvenance)>;

/// Everything observable about one engine session, in deterministic order.
#[derive(Debug, Clone, PartialEq)]
struct SessionSnapshot {
    /// Per-query result tuples (schema-ordered cells, candidate sets and
    /// all — `Tuple` equality is structural).
    results: Vec<Vec<Tuple>>,
    /// Per-query report counters (everything except wall-clock time).
    reports: Vec<ReportCounters>,
    /// Canonical provenance dump per table, in table-name order.
    provenance: Vec<(String, ProvenanceDump)>,
    /// Final base-table tuples per table, in table-name order.
    tables: Vec<(String, Vec<Tuple>)>,
}

#[derive(Debug, Clone, PartialEq)]
struct ReportCounters {
    strategy: CleaningStrategy,
    result_tuples: usize,
    extra_tuples: usize,
    relaxation_iterations: usize,
    errors_repaired: usize,
    cells_updated: usize,
    estimated_accuracy: f64,
}

/// Runs `queries` against a fresh engine built by `setup` and snapshots
/// every observable output.
fn snapshot(mut engine: DaisyEngine, table_names: &[&str], queries: &[Query]) -> SessionSnapshot {
    let mut results = Vec::with_capacity(queries.len());
    for query in queries {
        let outcome = engine.execute(query).expect("query must succeed");
        results.push(outcome.result.tuples);
    }
    let reports = engine
        .session()
        .queries
        .iter()
        .map(|r| ReportCounters {
            strategy: r.strategy,
            result_tuples: r.result_tuples,
            extra_tuples: r.extra_tuples,
            relaxation_iterations: r.relaxation_iterations,
            errors_repaired: r.errors_repaired,
            cells_updated: r.cells_updated,
            estimated_accuracy: r.estimated_accuracy,
        })
        .collect();
    let mut names: Vec<&str> = table_names.to_vec();
    names.sort_unstable();
    let provenance = names
        .iter()
        .map(|n| {
            (
                n.to_string(),
                engine.provenance(n).map(|p| p.dump()).unwrap_or_default(),
            )
        })
        .collect();
    let tables = names
        .iter()
        .map(|n| (n.to_string(), engine.table(n).unwrap().tuples().to_vec()))
        .collect();
    SessionSnapshot {
        results,
        reports,
        provenance,
        tables,
    }
}

/// Replays one scenario at every worker count and asserts each snapshot is
/// identical to the single-threaded baseline.
fn assert_thread_count_invariant<F>(scenario: &str, table_names: &[&str], build: F)
where
    F: Fn(usize) -> (DaisyEngine, Vec<Query>),
{
    let (engine, queries) = build(1);
    let baseline = snapshot(engine, table_names, &queries);
    assert!(
        baseline.reports.iter().any(|r| r.errors_repaired > 0),
        "scenario `{scenario}` must actually repair something to be a meaningful determinism probe"
    );
    for workers in &WORKER_COUNTS[1..] {
        let (engine, queries) = build(*workers);
        let replay = snapshot(engine, table_names, &queries);
        assert_eq!(
            baseline, replay,
            "scenario `{scenario}` diverged at {workers} worker threads"
        );
    }
}

fn config(workers: usize) -> DaisyConfig {
    DaisyConfig::default()
        .with_worker_threads(workers)
        .with_data_partitions(2 * workers)
        .with_cost_model(false)
}

#[test]
fn sp_fd_cleaning_is_thread_count_invariant() {
    let ssb = SsbConfig {
        lineorder_rows: 1_200,
        distinct_orderkeys: 120,
        distinct_suppkeys: 40,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.15, 41).unwrap();
    let workload =
        non_overlapping_range_queries(&table, "suppkey", 8, &["orderkey", "suppkey"]).unwrap();

    assert_thread_count_invariant("sp", &["lineorder"], |workers| {
        let mut engine = DaisyEngine::new(config(workers)).unwrap();
        engine.register_table(table.clone());
        engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
        (engine, workload.queries.clone())
    });
}

#[test]
fn spj_cleaning_is_thread_count_invariant() {
    let ssb = SsbConfig {
        lineorder_rows: 1_000,
        distinct_orderkeys: 100,
        distinct_suppkeys: 40,
        ..SsbConfig::default()
    };
    let mut lineorder = generate_lineorder(&ssb).unwrap();
    let mut supplier = generate_supplier(&ssb).unwrap();
    inject_fd_errors(&mut lineorder, "orderkey", "suppkey", 1.0, 0.1, 42).unwrap();
    inject_fd_errors(&mut supplier, "address", "suppkey", 0.5, 0.5, 43).unwrap();
    let queries: Vec<Query> = [
        "SELECT lineorder.orderkey, lineorder.suppkey, supplier.name FROM lineorder \
         JOIN supplier ON lineorder.suppkey = supplier.suppkey WHERE orderkey <= 30",
        "SELECT lineorder.orderkey, supplier.address FROM lineorder \
         JOIN supplier ON lineorder.suppkey = supplier.suppkey WHERE orderkey <= 200",
    ]
    .iter()
    .map(|sql| parse_query(sql).unwrap())
    .collect();

    assert_thread_count_invariant("spj", &["lineorder", "supplier"], |workers| {
        let mut engine = DaisyEngine::new(config(workers)).unwrap();
        engine.register_table(lineorder.clone());
        engine.register_table(supplier.clone());
        engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
        engine.add_fd(&FunctionalDependency::new(&["address"], "suppkey"), "psi");
        (engine, queries.clone())
    });
}

#[test]
fn general_dc_engine_workload_is_thread_count_invariant() {
    let ssb = SsbConfig {
        lineorder_rows: 900,
        distinct_orderkeys: 180,
        distinct_suppkeys: 20,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_inequality_errors(&mut table, "extended_price", "discount", 0.05, 0.5, 44).unwrap();
    let queries: Vec<Query> = [
        "SELECT extended_price, discount FROM lineorder WHERE extended_price <= 4000",
        "SELECT extended_price, discount FROM lineorder WHERE extended_price >= 3000",
        "SELECT extended_price, discount FROM lineorder",
    ]
    .iter()
    .map(|sql| parse_query(sql).unwrap())
    .collect();

    assert_thread_count_invariant("engine-dc", &["lineorder"], |workers| {
        let mut engine = DaisyEngine::new(config(workers).with_theta_partitions(16)).unwrap();
        engine.register_table(table.clone());
        engine
            .add_constraint_text(
                "dc",
                "t1.extended_price < t2.extended_price & t1.discount > t2.discount",
            )
            .unwrap();
        (engine, queries.clone())
    });
}

#[test]
fn morsel_granularity_is_invariant_on_a_skewed_workload() {
    // `data_partitions` controls only morsel granularity — how finely the
    // work-stealing scheduler slices each kernel's input — and must never
    // change an observable output.  The workload is deliberately
    // equality-skewed: most rows are collapsed onto one hot supplier, so
    // the hot hash partition dominates the candidate mass and the weighted
    // morsel cuts genuinely split it (at 16 partitions a single sweep task
    // covers only a slice of the hot partition's outer loop).  Every
    // (workers, data_partitions) combination must produce a session
    // byte-identical to the 1-worker, 1-partition baseline.
    let ssb = SsbConfig {
        lineorder_rows: 900,
        distinct_orderkeys: 180,
        distinct_suppkeys: 20,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_inequality_errors(&mut table, "extended_price", "discount", 0.08, 0.5, 51).unwrap();
    // Collapse three of every four rows onto supplier 1.
    let schema = table.schema().as_ref().clone();
    let suppkey = schema.index_of("suppkey").unwrap();
    let width = schema.len();
    let values: Vec<Vec<Value>> = table
        .tuples()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            (0..width)
                .map(|c| {
                    if c == suppkey && i % 4 != 0 {
                        Value::Int(1)
                    } else {
                        t.value(c).unwrap()
                    }
                })
                .collect()
        })
        .collect();
    let table = Table::from_rows("lineorder", schema, values).unwrap();
    let queries: Vec<Query> = [
        "SELECT suppkey, extended_price, discount FROM lineorder WHERE extended_price <= 4000",
        "SELECT suppkey, extended_price, discount FROM lineorder",
    ]
    .iter()
    .map(|sql| parse_query(sql).unwrap())
    .collect();

    let build = |workers: usize, partitions: usize| {
        let mut engine = DaisyEngine::new(
            config(workers)
                .with_data_partitions(partitions)
                .with_theta_partitions(16)
                .with_detection_strategy(DetectionStrategy::Indexed),
        )
        .unwrap();
        engine.register_table(table.clone());
        engine
            .add_constraint_text(
                "dc",
                "t1.suppkey = t2.suppkey & t1.extended_price < t2.extended_price \
                 & t1.discount > t2.discount",
            )
            .unwrap();
        (engine, queries.clone())
    };

    let (engine, qs) = build(1, 1);
    let baseline = snapshot(engine, &["lineorder"], &qs);
    assert!(
        baseline.reports.iter().any(|r| r.errors_repaired > 0),
        "the skewed workload must actually repair something to be a meaningful probe"
    );
    for &partitions in &[1usize, 3, 16] {
        for &workers in &WORKER_COUNTS {
            let (engine, qs) = build(workers, partitions);
            let replay = snapshot(engine, &["lineorder"], &qs);
            assert_eq!(
                baseline, replay,
                "skewed session diverged at {workers} workers x {partitions} data partitions"
            );
        }
    }
}

#[test]
fn forced_detection_strategies_agree_and_are_thread_count_invariant() {
    // An equality-bearing DC (inverted price/discount pairs *within a
    // supplier*) so the indexed kernel genuinely hash-partitions, plus the
    // incremental range flow of the engine.  Each forced strategy must be
    // invariant across worker counts, and — because both kernels emit
    // canonically ordered violations over the same candidate space — the
    // two strategies must produce byte-identical sessions too.
    let ssb = SsbConfig {
        lineorder_rows: 900,
        distinct_orderkeys: 180,
        distinct_suppkeys: 20,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_inequality_errors(&mut table, "extended_price", "discount", 0.1, 0.6, 46).unwrap();
    let queries: Vec<Query> = [
        "SELECT suppkey, extended_price, discount FROM lineorder WHERE extended_price <= 4000",
        "SELECT suppkey, extended_price, discount FROM lineorder",
    ]
    .iter()
    .map(|sql| parse_query(sql).unwrap())
    .collect();

    let mut per_strategy = Vec::new();
    for strategy in [DetectionStrategy::Pairwise, DetectionStrategy::Indexed] {
        let build = |workers: usize| {
            let mut engine = DaisyEngine::new(
                config(workers)
                    .with_theta_partitions(16)
                    .with_detection_strategy(strategy),
            )
            .unwrap();
            engine.register_table(table.clone());
            engine
                .add_constraint_text(
                    "dc",
                    "t1.suppkey = t2.suppkey & t1.extended_price < t2.extended_price \
                     & t1.discount > t2.discount",
                )
                .unwrap();
            (engine, queries.clone())
        };
        assert_thread_count_invariant(&format!("forced-{strategy}"), &["lineorder"], build);
        let (engine, queries) = build(1);
        per_strategy.push(snapshot(engine, &["lineorder"], &queries));
    }
    assert_eq!(
        per_strategy[0], per_strategy[1],
        "pairwise and indexed detection diverged"
    );
}

#[test]
fn snapshot_modes_agree_and_are_thread_count_invariant() {
    // The full knob matrix: columnar snapshot {on, off} × detection kernel
    // {pairwise, indexed}, replayed at every worker count.  The workload
    // mixes an FD (exercising the snapshot-keyed `cleanσ` grouping — 1.2k
    // rows clears the `Auto` threshold, `On`/`Off` are forced here anyway)
    // and an equality-bearing general DC (exercising the coded violation
    // index and the snapshot-patched repair loop).  Every combination must
    // produce byte-identical sessions.
    let ssb = SsbConfig {
        lineorder_rows: 1_200,
        distinct_orderkeys: 120,
        distinct_suppkeys: 20,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.1, 47).unwrap();
    inject_inequality_errors(&mut table, "extended_price", "discount", 0.08, 0.5, 48).unwrap();
    let queries: Vec<Query> = [
        "SELECT orderkey, suppkey FROM lineorder WHERE suppkey <= 8",
        "SELECT suppkey, extended_price, discount FROM lineorder WHERE extended_price <= 4000",
        "SELECT suppkey, extended_price, discount FROM lineorder",
    ]
    .iter()
    .map(|sql| parse_query(sql).unwrap())
    .collect();

    let mut sessions = Vec::new();
    for snapshot_mode in [SnapshotMode::Off, SnapshotMode::On] {
        for detection in [DetectionStrategy::Pairwise, DetectionStrategy::Indexed] {
            let build = |workers: usize| {
                let mut engine = DaisyEngine::new(
                    config(workers)
                        .with_theta_partitions(16)
                        .with_snapshot_mode(snapshot_mode)
                        .with_detection_strategy(detection),
                )
                .unwrap();
                engine.register_table(table.clone());
                engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
                engine
                    .add_constraint_text(
                        "dc",
                        "t1.suppkey = t2.suppkey & t1.extended_price < t2.extended_price \
                         & t1.discount > t2.discount",
                    )
                    .unwrap();
                (engine, queries.clone())
            };
            assert_thread_count_invariant(
                &format!("snapshot-{snapshot_mode}-{detection}"),
                &["lineorder"],
                build,
            );
            let (engine, queries) = build(1);
            sessions.push((
                format!("{snapshot_mode}/{detection}"),
                snapshot(engine, &["lineorder"], &queries),
            ));
        }
    }
    let (baseline_name, baseline) = &sessions[0];
    for (name, session) in &sessions[1..] {
        assert_eq!(
            baseline, session,
            "sessions diverged between {baseline_name} and {name}"
        );
    }
}

#[test]
fn interleaved_session_commits_are_thread_count_invariant() {
    // Two sessions branch from the same shared world, execute overlapping
    // cleaning queries *before* either commits, then commit in a fixed
    // order — the second validates stale and rebases.  The committed world
    // and both final outcomes must equal the strictly serial execution of
    // the same two requests, at every worker count.
    let ssb = SsbConfig {
        lineorder_rows: 600,
        distinct_orderkeys: 60,
        distinct_suppkeys: 15,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.15, 49).unwrap();
    let sql_a = "SELECT orderkey, suppkey FROM lineorder WHERE suppkey <= 7";
    let sql_b = "SELECT orderkey, suppkey FROM lineorder WHERE suppkey <= 12";

    let shared_for = |workers: usize| {
        let mut engine = DaisyEngine::new(config(workers)).unwrap();
        engine.register_table(table.clone());
        engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
        engine.into_shared()
    };

    let interleaved = |workers: usize| {
        let shared = shared_for(workers);
        let mut a = shared.session();
        let mut b = shared.session();
        a.execute_sql(sql_a).unwrap();
        b.execute_sql(sql_b).unwrap();
        let ra = a.commit().unwrap();
        let rb = b.commit().unwrap();
        assert!(!ra.rebased);
        assert!(rb.rebased, "the second commit must detect the conflict");
        (
            ra.outcomes[0].result.tuples.clone(),
            rb.outcomes[0].result.tuples.clone(),
            shared.table("lineorder").unwrap().tuples().to_vec(),
            shared.provenance("lineorder").unwrap().dump(),
        )
    };
    let serial = || {
        let shared = shared_for(1);
        let mut a = shared.session();
        a.execute_sql(sql_a).unwrap();
        let ra = a.commit().unwrap();
        let mut b = shared.session();
        b.execute_sql(sql_b).unwrap();
        let rb = b.commit().unwrap();
        assert!(!rb.rebased);
        (
            ra.outcomes[0].result.tuples.clone(),
            rb.outcomes[0].result.tuples.clone(),
            shared.table("lineorder").unwrap().tuples().to_vec(),
            shared.provenance("lineorder").unwrap().dump(),
        )
    };

    let baseline = serial();
    for workers in WORKER_COUNTS {
        assert_eq!(
            interleaved(workers),
            baseline,
            "interleaved sessions diverged from serial at {workers} workers"
        );
    }
}

#[test]
fn worker_thread_env_override_preserves_results() {
    // The CI matrix forces DAISY_WORKER_THREADS; when it is set, the forced
    // count must flow into `DaisyConfig::default()` (the plumbing this test
    // pins down), and an engine built from the untouched default must
    // return the same results as one with an explicit, different worker
    // count — i.e. the override can change only the thread count, never
    // behaviour.
    if let Some(forced) = DaisyConfig::env_worker_threads() {
        assert_eq!(
            DaisyConfig::default().worker_threads,
            forced,
            "DAISY_WORKER_THREADS must size the default config"
        );
    }

    let ssb = SsbConfig {
        lineorder_rows: 400,
        distinct_orderkeys: 40,
        distinct_suppkeys: 10,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&ssb).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.2, 45).unwrap();

    let run = |cfg: DaisyConfig| {
        let mut engine = DaisyEngine::new(cfg).unwrap();
        engine.register_table(table.clone());
        engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
        let outcome = engine
            .execute_sql("SELECT orderkey, suppkey FROM lineorder WHERE suppkey <= 5")
            .unwrap();
        (outcome.result.tuples, outcome.report.errors_repaired)
    };
    // Env-sized (or machine-sized) default vs an explicit different count.
    let default_cfg = DaisyConfig::default().with_cost_model(false);
    let other_workers = default_cfg.worker_threads + 3;
    assert_eq!(run(default_cfg), run(config(other_workers)));
}
