//! Property-based tests over the core invariants listed in DESIGN.md §6.

use proptest::prelude::*;

use daisy::core::fd_index::FdIndex;
use daisy::core::multirule::merge_deltas;
use daisy::core::relaxation::{probability_more_violations, relax_fd, FilterTarget};
use daisy::prelude::*;
use daisy::storage::{Candidate, Cell, Delta};

/// Builds a two-column table (lhs, rhs) from generated pairs.
fn table_from_pairs(pairs: &[(i64, i64)]) -> Table {
    let schema = Schema::from_pairs(&[("lhs", DataType::Int), ("rhs", DataType::Int)]).unwrap();
    Table::from_rows(
        "t",
        schema,
        pairs
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Candidate probabilities of every probabilistic cell sum to one.
    #[test]
    fn candidate_probabilities_sum_to_one(weights in prop::collection::vec(0.0f64..10.0, 1..8)) {
        let cands: Vec<Candidate> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| Candidate::exact(Value::Int(i as i64), *w))
            .collect();
        let cell = Cell::probabilistic(cands);
        let total: f64 = cell.candidates().iter().map(|c| c.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Relaxation closure: after relaxing, no unvisited tuple shares an lhs
    /// value with the relaxed set (rhs-filter single-iteration guarantee of
    /// Lemma 1 applied to the lhs side it covers).
    #[test]
    fn relaxation_covers_lhs_correlations(pairs in prop::collection::vec((0i64..20, 0i64..10), 1..120)) {
        let table = table_from_pairs(&pairs);
        let fd = FunctionalDependency::new(&["lhs"], "rhs");
        let index = FdIndex::build(&table, &fd).unwrap();
        // Answer: every tuple whose rhs equals the first tuple's rhs.
        let target = table.tuples()[0].value(1).unwrap();
        let answer: Vec<_> = table
            .tuples()
            .iter()
            .filter(|t| t.value(1).unwrap() == target)
            .cloned()
            .collect();
        let out = relax_fd(&index, &answer, table.tuples(), FilterTarget::Rhs, 8).unwrap();
        // Every tuple sharing an lhs value with the answer must be in the
        // answer or among the extras.
        let mut covered: std::collections::HashSet<_> =
            answer.iter().map(|t| t.id).collect();
        covered.extend(out.extra.iter().map(|t| t.id));
        let answer_lhs: std::collections::HashSet<Value> =
            answer.iter().map(|t| t.value(0).unwrap()).collect();
        for t in table.tuples() {
            if answer_lhs.contains(&t.value(0).unwrap()) {
                prop_assert!(covered.contains(&t.id));
            }
        }
    }

    /// Full (fixpoint) relaxation is closed under both lhs and rhs
    /// correlation: no unvisited tuple shares an lhs or rhs value with the
    /// relaxed set.
    #[test]
    fn fixpoint_relaxation_is_transitively_closed(pairs in prop::collection::vec((0i64..15, 0i64..8), 1..100)) {
        let table = table_from_pairs(&pairs);
        let fd = FunctionalDependency::new(&["lhs"], "rhs");
        let index = FdIndex::build(&table, &fd).unwrap();
        let answer = vec![table.tuples()[0].clone()];
        let out = relax_fd(&index, &answer, table.tuples(), FilterTarget::Lhs, 64).unwrap();
        let mut covered: std::collections::HashSet<_> = answer.iter().map(|t| t.id).collect();
        covered.extend(out.extra.iter().map(|t| t.id));
        let lhs_values: std::collections::HashSet<Value> = covered
            .iter()
            .map(|id| table.tuple(*id).unwrap().value(0).unwrap())
            .collect();
        let rhs_values: std::collections::HashSet<Value> = covered
            .iter()
            .map(|id| table.tuple(*id).unwrap().value(1).unwrap())
            .collect();
        for t in table.tuples() {
            if lhs_values.contains(&t.value(0).unwrap()) || rhs_values.contains(&t.value(1).unwrap()) {
                prop_assert!(covered.contains(&t.id), "tuple {} correlated but not covered", t.id);
            }
        }
    }

    /// Lemma 4: merging rule deltas is commutative.
    #[test]
    fn delta_merge_is_commutative(
        weights_a in prop::collection::vec(0.1f64..5.0, 1..5),
        weights_b in prop::collection::vec(0.1f64..5.0, 1..5),
    ) {
        let make = |weights: &[f64], offset: i64| -> Delta {
            let mut d = Delta::new();
            d.push_update(
                daisy::common::TupleId::new(1),
                daisy::common::ColumnId::new(0),
                Cell::probabilistic(
                    weights
                        .iter()
                        .enumerate()
                        .map(|(i, w)| Candidate::exact(Value::Int(offset + i as i64), *w))
                        .collect(),
                ),
            );
            d
        };
        let a = make(&weights_a, 0);
        let b = make(&weights_b, 2);
        let ab = merge_deltas(&[a.clone(), b.clone()]);
        let ba = merge_deltas(&[b, a]);
        let cell_ab = &ab.updates()[0].cell;
        let cell_ba = &ba.updates()[0].cell;
        prop_assert_eq!(cell_ab.candidate_count(), cell_ba.candidate_count());
        for cand in cell_ab.candidates() {
            let twin = cell_ba
                .candidates()
                .iter()
                .find(|c| c.value == cand.value)
                .expect("candidate present in both merge orders");
            prop_assert!((cand.probability - twin.probability).abs() < 1e-9);
        }
    }

    /// The hypergeometric violation-probability estimate is a probability
    /// and is monotone in the number of violations.
    #[test]
    fn violation_probability_is_monotone(n in 10usize..500, sample in 1usize..100) {
        let sample = sample.min(n);
        let mut last = 0.0f64;
        for vio in [0usize, n / 10, n / 4, n / 2] {
            let p = probability_more_violations(n, vio, sample);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p + 1e-12 >= last);
            last = p;
        }
    }

    /// The SQL parser never panics and, when it succeeds, the query
    /// round-trips through Display → parse to the same structure.
    #[test]
    fn parser_roundtrip(key in 0i64..1000, sel in prop::sample::select(vec!["orderkey", "suppkey"])) {
        let sql = format!("SELECT orderkey, suppkey FROM lineorder WHERE {sel} <= {key}");
        let q = daisy::query::parse_query(&sql).unwrap();
        let reparsed = daisy::query::parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Possible-world predicate evaluation is exact for point candidates: a
    /// range predicate over one probabilistic column holds iff some single
    /// candidate lies inside the range (not one candidate per bound).
    #[test]
    fn possible_world_evaluation_is_exact_for_point_candidates(
        candidates in prop::collection::vec(0i64..100, 1..8),
        low in 0i64..100,
        width in 0i64..30,
    ) {
        let high = low + width;
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let cell = Cell::probabilistic(
            candidates.iter().map(|v| Candidate::exact(Value::Int(*v), 1.0)).collect(),
        );
        let tuple = daisy::storage::Tuple::from_cells(daisy::common::TupleId::new(0), vec![cell]);
        let predicate = BoolExpr::between("x", low, high);
        let expected = candidates.iter().any(|v| *v >= low && *v <= high);
        prop_assert_eq!(predicate.eval_possible(&schema, &tuple).unwrap(), expected);
    }

    /// Enumerating the possible worlds of a tuple yields probabilities that
    /// sum to one and exactly candidate-count-product many worlds.
    #[test]
    fn world_enumeration_probabilities_sum_to_one(
        weights_a in prop::collection::vec(0.1f64..5.0, 1..5),
        weights_b in prop::collection::vec(0.1f64..5.0, 1..5),
    ) {
        use daisy::storage::{enumerate_worlds, world_count, WorldEnumeration};
        let cell = |weights: &[f64]| {
            Cell::probabilistic(
                weights
                    .iter()
                    .enumerate()
                    .map(|(i, w)| Candidate::exact(Value::Int(i as i64), *w))
                    .collect(),
            )
        };
        let tuple = daisy::storage::Tuple::from_cells(
            daisy::common::TupleId::new(0),
            vec![cell(&weights_a), cell(&weights_b)],
        );
        prop_assert_eq!(world_count(&tuple), weights_a.len() * weights_b.len());
        let WorldEnumeration::Complete(worlds) = enumerate_worlds(&tuple, 64).unwrap() else {
            return Err(TestCaseError::fail("expected complete enumeration"));
        };
        prop_assert_eq!(worlds.len(), weights_a.len() * weights_b.len());
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Materialising repairs with the most-probable policy produces a fully
    /// deterministic table and is idempotent.
    #[test]
    fn repair_materialization_is_idempotent(pairs in prop::collection::vec((0i64..10, 0i64..5), 2..60)) {
        use daisy::core::repair::{materialize_repairs, RepairPolicy};
        use daisy::offline::full::offline_clean_fd;
        let mut table = table_from_pairs(&pairs);
        let fd = FunctionalDependency::new(&["lhs"], "rhs");
        offline_clean_fd(&mut table, &fd).unwrap();
        let once = materialize_repairs(&table, None, RepairPolicy::MostProbable).unwrap();
        prop_assert_eq!(once.table.probabilistic_tuple_count(), 0);
        let twice = materialize_repairs(&once.table, None, RepairPolicy::MostProbable).unwrap();
        prop_assert!(twice.repairs.is_empty());
        for (a, b) in once.table.tuples().iter().zip(twice.table.tuples()) {
            for col in 0..a.arity() {
                prop_assert_eq!(a.value(col).unwrap(), b.value(col).unwrap());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential oracle for the parallel theta-join DC check: on a random
    /// table and worker count, the partitioned parallel check finds exactly
    /// the violation set (and the same block/pair statistics) as the
    /// sequential `ExecContext::sequential()` path.
    #[test]
    fn parallel_theta_check_matches_sequential_oracle(
        rows in prop::collection::vec((0i64..40, 0i64..40), 2..90),
        blocks in 1usize..7,
        workers in 2usize..9,
    ) {
        use daisy::core::theta::ThetaMatrix;
        use daisy::exec::ExecContext;

        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap();
        let table = Table::from_rows(
            "t",
            schema,
            rows.iter().map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]).collect(),
        )
        .unwrap();
        let dc = DenialConstraint::parse("dc", "t1.a < t2.a & t1.b > t2.b").unwrap();

        let mut serial = ThetaMatrix::build(table.schema(), table.tuples(), &dc, blocks).unwrap();
        let (expected, expected_stats) = serial
            .check_all(&ExecContext::sequential(), table.schema(), table.tuples())
            .unwrap();

        let mut parallel = ThetaMatrix::build(table.schema(), table.tuples(), &dc, blocks).unwrap();
        let (found, stats) = parallel
            .check_all(&ExecContext::new(workers), table.schema(), table.tuples())
            .unwrap();

        prop_assert_eq!(&found, &expected);
        prop_assert_eq!(stats, expected_stats);

        // And both must agree with a brute-force quadratic reference.
        let mut brute = Vec::new();
        for x in table.tuples() {
            for y in table.tuples() {
                if x.id != y.id && dc.violated_by(table.schema(), &[x, y]).unwrap() {
                    brute.push(daisy::expr::Violation::pair(dc.id, x.id, y.id).canonical());
                }
            }
        }
        brute.sort_by(|a, b| a.tuples.cmp(&b.tuples));
        brute.dedup();
        prop_assert_eq!(found, brute);
    }

    /// The incremental range check is thread-count invariant too, including
    /// the shared `checked` bookkeeping: two successive range checks at any
    /// worker count find the same combined violations as one sequential
    /// full check.
    #[test]
    fn parallel_incremental_theta_check_matches_sequential_oracle(
        rows in prop::collection::vec((0i64..30, 0i64..30), 2..70),
        split in 0i64..30,
        workers in 2usize..9,
    ) {
        use daisy::core::theta::ThetaMatrix;
        use daisy::exec::ExecContext;

        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap();
        let table = Table::from_rows(
            "t",
            schema,
            rows.iter().map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]).collect(),
        )
        .unwrap();
        let dc = DenialConstraint::parse("dc", "t1.a < t2.a & t1.b > t2.b").unwrap();

        let run = |ctx: &ExecContext| {
            let mut matrix =
                ThetaMatrix::build(table.schema(), table.tuples(), &dc, 4).unwrap();
            let (first, s1) = matrix
                .check_range(ctx, table.schema(), table.tuples(), None, Some(&Value::Int(split)))
                .unwrap();
            let (second, s2) = matrix
                .check_range(ctx, table.schema(), table.tuples(), Some(&Value::Int(split)), None)
                .unwrap();
            let mut stats = s1;
            stats.merge(&s2);
            let mut combined: Vec<daisy::expr::Violation> =
                first.into_iter().chain(second).collect();
            combined.sort_by(|a, b| a.tuples.cmp(&b.tuples));
            combined.dedup();
            (combined, stats)
        };
        let (expected, expected_stats) = run(&ExecContext::sequential());
        let (found, stats) = run(&ExecContext::new(workers));
        prop_assert_eq!(found, expected);
        prop_assert_eq!(stats, expected_stats);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The §4.1 correctness guarantee as a property: for a random dirty
    /// table and a random rhs-range query, Daisy's query-time cleaning
    /// returns exactly the tuples that offline cleaning followed by the same
    /// query returns.
    #[test]
    fn daisy_single_query_matches_offline_for_fds(
        pairs in prop::collection::vec((0i64..8, 0i64..6), 4..80),
        low in 0i64..6,
        width in 0i64..3,
    ) {
        use daisy::exec::ExecContext;
        use daisy::offline::full::offline_clean_fd;
        use daisy::query::physical::PredicateMode;
        use daisy::query::{execute, Catalog, LogicalPlan};

        let high = low + width;
        let dirty = table_from_pairs(&pairs);
        let fd = FunctionalDependency::new(&["lhs"], "rhs");
        let sql = format!("SELECT lhs, rhs FROM t WHERE rhs >= {low} AND rhs <= {high}");

        // Offline: clean everything, then query.
        let mut offline_table = dirty.clone();
        offline_clean_fd(&mut offline_table, &fd).unwrap();
        let mut catalog = Catalog::new();
        catalog.add(offline_table);
        let query = daisy::query::parse_query(&sql).unwrap();
        let plan = LogicalPlan::from_query(&query).unwrap();
        let offline_result =
            execute(&ExecContext::sequential(), &catalog, &plan, PredicateMode::Possible).unwrap();

        // Daisy: clean while querying.
        let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
        engine.register_table(dirty);
        engine.add_fd(&fd, "phi");
        let daisy_result = engine.execute_sql(&sql).unwrap().result;

        let mut offline_ids = offline_result.tuple_ids();
        let mut daisy_ids = daisy_result.tuple_ids();
        offline_ids.sort();
        daisy_ids.sort();
        prop_assert_eq!(daisy_ids, offline_ids);
    }
}
