//! Integration tests: the offline baselines and accuracy metrics (Tables
//! 5–6), including the DaisyH / DaisyP configurations over the hospital
//! dataset.

use daisy::data::hospital::{generate_hospital, HospitalConfig};
use daisy::offline::holoclean::{holoclean_repair, infer_over_daisy_domains};
use daisy::offline::metrics::evaluate_repairs;
use daisy::prelude::*;

fn config() -> HospitalConfig {
    HospitalConfig {
        rows: 600,
        hospitals: 60,
        error_fraction: 0.05,
        seed: 5,
    }
}

#[test]
fn holoclean_baseline_reaches_reasonable_accuracy() {
    let (dirty, truth, _constraints) = generate_hospital(&config()).unwrap();
    let fds = vec![
        FunctionalDependency::new(&["zip"], "city"),
        FunctionalDependency::new(&["hospital_name"], "zip"),
        FunctionalDependency::new(&["phone"], "zip"),
    ];
    let outcome = holoclean_repair(&dirty, &fds, 1).unwrap();
    let quality = evaluate_repairs(&dirty, &truth, &outcome.repairs).unwrap();
    assert!(quality.precision > 0.6, "precision {}", quality.precision);
    assert!(quality.recall > 0.3, "recall {}", quality.recall);
    assert!(quality.f1 > 0.4);
}

#[test]
fn daisyp_accuracy_improves_with_more_rules_table_5_shape() {
    // Table 5: with all three rules, Daisy's most-probable-candidate
    // selection (DaisyP) is highly accurate; with one rule only, it is much
    // weaker.  Verify that ordering.
    let run = |rule_count: usize| -> f64 {
        let (dirty, truth, constraints) = generate_hospital(&config()).unwrap();
        let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
        engine.register_table(dirty.clone());
        for rule in constraints.rules().iter().take(rule_count) {
            engine.add_constraint(rule.clone());
        }
        // A small exploratory workload accessing the whole dataset.
        engine
            .execute_sql("SELECT zip, city FROM hospital WHERE zip >= 10000")
            .unwrap();
        engine
            .execute_sql("SELECT hospital_name, zip FROM hospital WHERE zip >= 10000")
            .unwrap();
        engine
            .execute_sql("SELECT phone, zip FROM hospital WHERE zip >= 10000")
            .unwrap();
        let repairs = infer_over_daisy_domains(engine.table("hospital").unwrap(), &dirty);
        evaluate_repairs(&dirty, &truth, &repairs).unwrap().f1
    };
    let one_rule = run(1);
    let three_rules = run(3);
    assert!(
        three_rules >= one_rule,
        "F1 with three rules ({three_rules:.3}) must not be worse than with one ({one_rule:.3})"
    );
    assert!(three_rules > 0.3);
}

#[test]
fn offline_fd_cleaning_covers_all_errors_daisy_covers_touched_ones() {
    let (dirty, _truth, _) = generate_hospital(&config()).unwrap();
    let fd = FunctionalDependency::new(&["zip"], "city");

    let mut offline_table = dirty.clone();
    let offline = daisy::offline::full::offline_clean_fd(&mut offline_table, &fd).unwrap();

    let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    engine.register_table(dirty);
    engine.add_fd(&fd, "phi1");
    // A selective query touches only part of the dataset.
    engine
        .execute_sql("SELECT zip, city FROM hospital WHERE zip <= 10010")
        .unwrap();
    let daisy_probabilistic = engine
        .table("hospital")
        .unwrap()
        .probabilistic_tuple_count();
    assert!(offline.errors_repaired > 0);
    assert!(daisy_probabilistic <= offline_table.probabilistic_tuple_count());
}

#[test]
fn repair_quality_metric_edge_cases() {
    let (dirty, truth, _) = generate_hospital(&config()).unwrap();
    // No repairs: perfect precision, zero recall (errors exist).
    let q = evaluate_repairs(&dirty, &truth, &[]).unwrap();
    assert_eq!(q.precision, 1.0);
    assert_eq!(q.recall, 0.0);
    assert!(q.errors > 0);
    // Clean data: no errors, vacuous recall.
    let q = evaluate_repairs(&truth, &truth, &[]).unwrap();
    assert_eq!(q.errors, 0);
    assert_eq!(q.recall, 1.0);
}
