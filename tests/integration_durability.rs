//! Integration tests: the durable core end to end.
//!
//! * A durable service restarted over its directory serves the exact
//!   tables and provenance it acknowledged before shutdown, at every sync
//!   policy, and keeps committing from the recovered version.
//! * The [`ServiceReport`] durability counters follow the policy: per-commit
//!   fsyncs under `commit`, none under `off` (checkpoints aside).
//! * **Corruption is never silent.**  Flipping a single byte anywhere in
//!   the commit log makes recovery either self-truncate an unsynced tail
//!   (landing on an exact acknowledged prefix) or refuse to load with
//!   [`DaisyError::CorruptLog`] — it never serves altered data.  Damaged
//!   checkpoints fall back to older ones plus log replay; only when every
//!   checkpoint is gone does recovery fail.
//!
//! All stores live in scratch directories under the system temp dir — the
//! workspace tree stays clean (CI enforces this after the test run).

use daisy::common::{ColumnId, DaisyError, TupleId};
use daisy::prelude::*;
use daisy::storage::{CellProvenance, Tuple};
use daisy::wal::{ScratchDir, FRAME_HEADER_LEN, LOG_FILE, LOG_HEADER_LEN};

/// Rows per FD group; one tuple dissents so every group needs cleaning.
const GROUPS: usize = 5;

fn dirty_table() -> Table {
    let schema = Schema::from_pairs(&[("lhs", DataType::Int), ("rhs", DataType::Int)]).unwrap();
    let mut rows = Vec::new();
    for g in 0..GROUPS as i64 {
        rows.push(vec![Value::Int(g), Value::Int(g * 10)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10 + 1)]);
    }
    Table::from_rows("t", schema, rows).unwrap()
}

fn engine(durability: DurabilityMode, checkpoint_interval: usize) -> DaisyEngine {
    let mut engine = DaisyEngine::new(
        DaisyConfig::default()
            .with_worker_threads(1)
            .with_cost_model(false)
            .with_durability(durability)
            .with_checkpoint_interval(checkpoint_interval),
    )
    .unwrap();
    engine.register_table(dirty_table());
    engine.add_fd(&FunctionalDependency::new(&["lhs"], "rhs"), "phi");
    engine
}

fn requests(n: usize) -> Vec<ServiceRequest> {
    (0..n)
        .map(|i| {
            ServiceRequest::new(
                format!("s{i}"),
                format!("SELECT lhs, rhs FROM t WHERE lhs = {}", i % GROUPS),
            )
        })
        .collect()
}

type ProvenanceDump = Vec<((TupleId, ColumnId), CellProvenance)>;

/// The observable committed state: tables plus provenance, byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
struct WorldDump {
    tables: Vec<(String, Vec<Tuple>)>,
    provenance: Vec<(String, ProvenanceDump)>,
}

fn dump(shared: &EngineShared) -> WorldDump {
    let names = shared.table_names();
    WorldDump {
        tables: names
            .iter()
            .map(|n| (n.clone(), shared.table(n).unwrap().tuples().to_vec()))
            .collect(),
        provenance: names
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    shared.provenance(n).map(|p| p.dump()).unwrap_or_default(),
                )
            })
            .collect(),
    }
}

#[test]
fn durable_service_recovers_after_restart() {
    let dir = ScratchDir::new();
    let before = {
        let service =
            CleaningService::with_persistence(engine(DurabilityMode::Commit, 3), dir.path())
                .unwrap();
        let report = service.run(&requests(5));
        assert!(report.outcomes.iter().all(|o| o.outcome.is_ok()));
        assert_eq!(report.final_version, 5);
        assert!(
            report.fsyncs >= report.commits,
            "commit mode syncs per commit"
        );
        assert!(
            report.checkpoints >= 1,
            "interval 3 over 5 commits checkpoints"
        );
        dump(service.shared())
    };

    // Restart over the same directory with the same bootstrap.
    let service =
        CleaningService::with_persistence(engine(DurabilityMode::Commit, 3), dir.path()).unwrap();
    assert_eq!(service.shared().version(), 5);
    assert_eq!(dump(service.shared()), before, "recovered state diverged");

    // The recovered core keeps serving and versions continue.
    let report = service.run(&requests(2));
    assert!(report.outcomes.iter().all(|o| o.outcome.is_ok()));
    assert_eq!(report.final_version, 7);
}

#[test]
fn every_durability_mode_round_trips_a_clean_shutdown() {
    for mode in [
        DurabilityMode::Off,
        DurabilityMode::Commit,
        DurabilityMode::Batch,
    ] {
        let dir = ScratchDir::new();
        let before = {
            let service = CleaningService::with_persistence(engine(mode, 100), dir.path()).unwrap();
            let report = service.run(&requests(4));
            assert!(report.outcomes.iter().all(|o| o.outcome.is_ok()));
            dump(service.shared())
        };
        let service = CleaningService::with_persistence(engine(mode, 100), dir.path()).unwrap();
        assert_eq!(service.shared().version(), 4, "{mode} lost commits");
        assert_eq!(dump(service.shared()), before, "{mode} diverged");
    }
}

#[test]
fn fsync_counters_follow_the_policy() {
    // `off` with a large checkpoint interval: the run itself never syncs.
    let dir = ScratchDir::new();
    let service =
        CleaningService::with_persistence(engine(DurabilityMode::Off, 100), dir.path()).unwrap();
    let report = service.run(&requests(4));
    assert_eq!(report.fsyncs, 0);
    assert_eq!(report.checkpoints, 0);

    // `commit`: at least one fsync per commit, plus checkpoint syncs.
    let dir = ScratchDir::new();
    let service =
        CleaningService::with_persistence(engine(DurabilityMode::Commit, 2), dir.path()).unwrap();
    let report = service.run(&requests(4));
    assert!(report.fsyncs >= report.commits);
    assert_eq!(report.checkpoints, 2);
}

/// Runs a workload and returns the scratch dir plus the acknowledged world
/// after every commit (index = version).
fn committed_history(
    mode: DurabilityMode,
    interval: usize,
    n: usize,
) -> (ScratchDir, Vec<WorldDump>) {
    let dir = ScratchDir::new();
    let shared = EngineShared::recover(engine(mode, interval), dir.path()).unwrap();
    let mut history = vec![dump(&shared)];
    for request in requests(n) {
        let mut session = shared.session_named(&request.session);
        match &request.op {
            RequestOp::Sql(sql) => {
                session.execute_sql(sql).unwrap();
            }
            RequestOp::Ingest { table, rows } => {
                session.ingest_rows(table, rows.clone()).unwrap();
            }
        }
        session.commit().unwrap();
        history.push(dump(&shared));
    }
    (dir, history)
}

/// Every single-byte flip in the commit log either refuses to load
/// (`CorruptLog`) or recovers an exact acknowledged prefix — never altered
/// data, never a half-commit.
#[test]
fn log_byte_flips_are_never_silently_wrong() {
    let (dir, history) = committed_history(DurabilityMode::Commit, 100, 3);
    let log_path = dir.path().join(LOG_FILE);
    let pristine = std::fs::read(&log_path).unwrap();
    for i in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[i] ^= 0x10;
        std::fs::write(&log_path, &bad).unwrap();
        match EngineShared::recover(engine(DurabilityMode::Commit, 100), dir.path()) {
            Err(err) => assert_eq!(
                err.category(),
                "corrupt-log",
                "flip at byte {i}: unexpected error {err}"
            ),
            Ok(shared) => {
                // Only a tail truncation (the flip landed in the final
                // record) may recover — and then to an exact earlier
                // acknowledged world, bit for bit.
                let version = shared.version() as usize;
                assert!(
                    version < history.len(),
                    "flip at byte {i} recovered unknown version {version}"
                );
                assert_eq!(
                    dump(&shared),
                    history[version],
                    "flip at byte {i} recovered an altered world"
                );
            }
        }
        // Recovery may have self-truncated the corrupted file; restore it.
        std::fs::write(&log_path, &pristine).unwrap();
    }
}

/// A truncated length prefix (garbage tail shorter than a frame header) is
/// a torn tail: recovery self-truncates and serves the full history.
#[test]
fn truncated_length_prefix_recovers_the_full_history() {
    let (dir, history) = committed_history(DurabilityMode::Commit, 100, 3);
    let log_path = dir.path().join(LOG_FILE);
    let pristine = std::fs::read(&log_path).unwrap();
    for extra in 1..FRAME_HEADER_LEN {
        let mut torn = pristine.clone();
        torn.extend(std::iter::repeat_n(0xCD, extra));
        std::fs::write(&log_path, &torn).unwrap();
        let shared = EngineShared::recover(engine(DurabilityMode::Commit, 100), dir.path())
            .unwrap_or_else(|e| panic!("{extra} garbage bytes should be a torn tail: {e}"));
        assert_eq!(shared.version() as usize, history.len() - 1);
        assert_eq!(dump(&shared), history[history.len() - 1]);
        std::fs::write(&log_path, &pristine).unwrap();
    }
}

/// Splicing a bit-exact duplicate of the last record onto the log (valid
/// CRC, stale chain) is detected as corruption, not replayed twice.
#[test]
fn duplicate_record_splice_is_rejected() {
    let (dir, _) = committed_history(DurabilityMode::Commit, 100, 3);
    let log_path = dir.path().join(LOG_FILE);
    let pristine = std::fs::read(&log_path).unwrap();
    // Walk the frames to find where the last record starts.
    let mut offset = LOG_HEADER_LEN as usize;
    let mut last_start = offset;
    while offset < pristine.len() {
        last_start = offset;
        let len = u32::from_le_bytes(pristine[offset..offset + 4].try_into().unwrap()) as usize;
        offset += FRAME_HEADER_LEN + len;
    }
    let mut spliced = pristine.clone();
    spliced.extend_from_slice(&pristine[last_start..]);
    std::fs::write(&log_path, &spliced).unwrap();
    let err = EngineShared::recover(engine(DurabilityMode::Commit, 100), dir.path()).unwrap_err();
    assert_eq!(err.category(), "corrupt-log");
}

/// A damaged newest checkpoint falls back to an older one plus log replay
/// and still recovers the exact final world; destroying every checkpoint
/// (while the log shows commits) is unrecoverable corruption.
#[test]
fn corrupt_checkpoints_fall_back_then_fail_loudly() {
    let (dir, history) = committed_history(DurabilityMode::Commit, 2, 5);
    let checkpoints: Vec<_> = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    assert!(checkpoints.len() >= 2, "interval 2 over 5 commits");

    // Flip a byte in the middle of every checkpoint, one at a time: each
    // falls back (older checkpoint or deeper replay) to the same world.
    for path in &checkpoints {
        let pristine = std::fs::read(path).unwrap();
        let mut bad = pristine.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        std::fs::write(path, &bad).unwrap();
        let shared = EngineShared::recover(engine(DurabilityMode::Commit, 2), dir.path())
            .unwrap_or_else(|e| panic!("single corrupt checkpoint must fall back: {e}"));
        assert_eq!(shared.version() as usize, history.len() - 1);
        assert_eq!(dump(&shared), history[history.len() - 1]);
        std::fs::write(path, &pristine).unwrap();
    }

    // Now corrupt all of them: the log alone cannot vouch for the state.
    for path in &checkpoints {
        let mut bad = std::fs::read(path).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        std::fs::write(path, &bad).unwrap();
    }
    let err = EngineShared::recover(engine(DurabilityMode::Commit, 2), dir.path()).unwrap_err();
    assert!(
        matches!(err, DaisyError::CorruptLog { .. }),
        "all-checkpoints-corrupt must be typed corruption, got {err}"
    );
}
