//! Integration tests: crash-injection recovery.
//!
//! The harness runs a fixed commit workload against a durable core whose
//! filesystem is a [`FailpointVfs`]: after a budget of N mutating
//! operations the N+1-th *tears* (a write persists only half its bytes)
//! and everything after fails — a simulated process death.  A reference
//! run with an unlimited budget counts the failpoints; the harness then
//! reruns the workload once per budget, so the store is killed at **every**
//! write, sync and rename boundary it ever crosses: mid-record, mid-sync,
//! mid-checkpoint, mid-rename, and even inside first-time initialization.
//!
//! After each injected crash, recovery over the real filesystem must
//! succeed and land on a world **byte-identical to an acknowledged-commit
//! prefix** — tables and provenance both — never a half-commit, never a
//! mix of versions:
//!
//! * under `commit` durability every acknowledged commit was fsynced, so
//!   recovery restores at least the acknowledged prefix (at most one
//!   logged-but-unacknowledged commit on top);
//! * under `batch` durability up to [`BATCH_SYNC_RECORDS`] acknowledged
//!   commits may be lost to the crash — but whatever version recovery
//!   lands on is still exactly that version's world.

use daisy::common::{ColumnId, TupleId};
use daisy::prelude::*;
use daisy::storage::{CellProvenance, Tuple};
use daisy::wal::{FailpointVfs, ScratchDir, Vfs, BATCH_SYNC_RECORDS};
use std::sync::Arc;

const GROUPS: usize = 4;
const COMMITS: usize = 6;
/// Checkpoint every other commit, so the harness crashes inside plenty of
/// checkpoint writes and renames too.
const CHECKPOINT_INTERVAL: usize = 2;

fn dirty_table() -> Table {
    let schema = Schema::from_pairs(&[("lhs", DataType::Int), ("rhs", DataType::Int)]).unwrap();
    let mut rows = Vec::new();
    for g in 0..GROUPS as i64 {
        rows.push(vec![Value::Int(g), Value::Int(g * 10)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10)]);
        rows.push(vec![Value::Int(g), Value::Int(g * 10 + 1)]);
    }
    Table::from_rows("t", schema, rows).unwrap()
}

fn engine(durability: DurabilityMode) -> DaisyEngine {
    let mut engine = DaisyEngine::new(
        DaisyConfig::default()
            .with_worker_threads(1)
            .with_cost_model(false)
            .with_durability(durability)
            .with_checkpoint_interval(CHECKPOINT_INTERVAL),
    )
    .unwrap();
    engine.register_table(dirty_table());
    engine.add_fd(&FunctionalDependency::new(&["lhs"], "rhs"), "phi");
    engine
}

fn query(i: usize) -> String {
    format!("SELECT lhs, rhs FROM t WHERE lhs = {}", i % GROUPS)
}

type ProvenanceDump = Vec<((TupleId, ColumnId), CellProvenance)>;

#[derive(Debug, Clone, PartialEq)]
struct WorldDump {
    tables: Vec<(String, Vec<Tuple>)>,
    provenance: Vec<(String, ProvenanceDump)>,
}

fn dump(shared: &EngineShared) -> WorldDump {
    let names = shared.table_names();
    WorldDump {
        tables: names
            .iter()
            .map(|n| (n.clone(), shared.table(n).unwrap().tuples().to_vec()))
            .collect(),
        provenance: names
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    shared.provenance(n).map(|p| p.dump()).unwrap_or_default(),
                )
            })
            .collect(),
    }
}

/// Runs the workload until it finishes or the injected crash surfaces.
/// Returns the number of *acknowledged* commits (a commit counts only once
/// `commit()` returned `Ok`).
fn run_workload(vfs: Arc<dyn Vfs>, dir: &std::path::Path, mode: DurabilityMode) -> usize {
    let Ok(shared) = EngineShared::recover_with_vfs(engine(mode), dir, vfs) else {
        return 0;
    };
    let mut acked = 0;
    for i in 0..COMMITS {
        let mut session = shared.session();
        if session.execute_sql(&query(i)).is_err() {
            break;
        }
        match session.commit() {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    acked
}

/// The reference: the workload on the real filesystem, capturing the world
/// after every acknowledged commit (index = version) and the total number
/// of mutating filesystem operations (= failpoints to inject).
fn reference(mode: DurabilityMode) -> (Vec<WorldDump>, u64) {
    let dir = ScratchDir::new();
    let vfs = FailpointVfs::unlimited();
    let shared =
        EngineShared::recover_with_vfs(engine(mode), dir.path(), Arc::new(vfs.clone())).unwrap();
    let mut history = vec![dump(&shared)];
    for i in 0..COMMITS {
        let mut session = shared.session();
        session.execute_sql(&query(i)).unwrap();
        session.commit().unwrap();
        history.push(dump(&shared));
    }
    drop(shared);
    (history, vfs.ops_attempted())
}

fn crash_everywhere(mode: DurabilityMode) {
    let (history, total_ops) = reference(mode);
    assert!(
        total_ops > 20,
        "harness must have real failpoints to inject"
    );
    for budget in 0..total_ops {
        let dir = ScratchDir::new();
        let vfs = FailpointVfs::new(budget as i64);
        let acked = run_workload(Arc::new(vfs.clone()), dir.path(), mode);
        assert!(
            vfs.crashed(),
            "budget {budget} of {total_ops} never hit its failpoint"
        );

        // The moment of truth: recovery over the real filesystem.
        let shared = EngineShared::recover(engine(mode), dir.path())
            .unwrap_or_else(|e| panic!("recovery failed after crash at op budget {budget}: {e}"));
        let recovered = shared.version() as usize;
        assert!(
            recovered < history.len(),
            "budget {budget}: recovered impossible version {recovered}"
        );
        // Byte-identical to the acknowledged prefix at that version —
        // tables and provenance — never a half-commit.
        assert_eq!(
            dump(&shared),
            history[recovered],
            "budget {budget}: recovered world is not commit {recovered}'s world"
        );
        // Policy-specific loss bounds.
        match mode {
            DurabilityMode::Commit => {
                // Every acknowledged commit was fsynced before the ack; at
                // most the one in-flight (logged but unacknowledged) commit
                // may additionally survive.
                assert!(
                    recovered >= acked && recovered <= acked + 1,
                    "budget {budget}: commit mode recovered {recovered} with {acked} acked"
                );
            }
            DurabilityMode::Batch => {
                assert!(
                    recovered <= acked + 1,
                    "budget {budget}: batch mode recovered {recovered} with {acked} acked"
                );
                assert!(
                    acked.saturating_sub(recovered) <= BATCH_SYNC_RECORDS,
                    "budget {budget}: batch mode lost more than a sync window"
                );
            }
            DurabilityMode::Off => {}
        }

        // The recovered core must keep working: one more commit lands.
        let mut session = shared.session();
        session.execute_sql(&query(0)).unwrap();
        session
            .commit()
            .unwrap_or_else(|e| panic!("budget {budget}: recovered core cannot commit: {e}"));
        assert_eq!(shared.version() as usize, recovered + 1);
    }
}

#[test]
fn recovery_after_every_crash_point_commit_mode() {
    crash_everywhere(DurabilityMode::Commit);
}

#[test]
fn recovery_after_every_crash_point_batch_mode() {
    crash_everywhere(DurabilityMode::Batch);
}
