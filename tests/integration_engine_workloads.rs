//! Integration tests: whole-workload behaviour of the engine — cost-model
//! strategy switching, multi-rule sessions, incremental rule addition and
//! general denial constraints.

use daisy::data::errors::{inject_fd_errors, inject_inequality_errors};
use daisy::data::ssb::{generate_lineorder, generate_lineorder_supplier, SsbConfig};
use daisy::data::workload::{non_overlapping_range_queries, random_selectivity_queries};
use daisy::prelude::*;

#[test]
fn cost_model_switches_and_still_matches_incremental_results() {
    // Low suppkey selectivity (few distinct suppkeys relative to orderkeys)
    // makes incremental updates expensive — the Fig. 7 situation.
    let config = SsbConfig {
        lineorder_rows: 1_200,
        distinct_orderkeys: 600,
        distinct_suppkeys: 12,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&config).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.5, 11).unwrap();
    let fd = FunctionalDependency::new(&["orderkey"], "suppkey");
    let workload =
        random_selectivity_queries(&table, "orderkey", 12, &["orderkey", "suppkey"], 5).unwrap();

    let mut with_cost = DaisyEngine::new(DaisyConfig::default().with_cost_model(true)).unwrap();
    with_cost.register_table(table.clone());
    with_cost.add_fd(&fd, "phi");
    let mut without_cost = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    without_cost.register_table(table);
    without_cost.add_fd(&fd, "phi");

    for query in &workload.queries {
        let a = with_cost.execute(query).unwrap();
        let b = without_cost.execute(query).unwrap();
        assert_eq!(
            a.result.len(),
            b.result.len(),
            "strategy switching must not change query answers"
        );
    }
    // With this workload shape the cost model is expected to switch at some
    // point; when it does, the session records it.
    if let Some(at) = with_cost.session().switch_point() {
        assert!(at < workload.len());
        assert_eq!(
            with_cost.session().queries[at].strategy,
            CleaningStrategy::FullRemaining
        );
    }
}

#[test]
fn two_overlapping_rules_clean_more_than_one() {
    let config = SsbConfig {
        lineorder_rows: 1_200,
        distinct_orderkeys: 150,
        distinct_suppkeys: 40,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder_supplier(&config).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.1, 21).unwrap();
    inject_fd_errors(&mut table, "address", "suppkey", 0.5, 0.2, 22).unwrap();
    let workload =
        non_overlapping_range_queries(&table, "orderkey", 8, &["orderkey", "suppkey", "address"])
            .unwrap();

    let run = |rules: usize| -> usize {
        let mut engine = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
        engine.register_table(table.clone());
        engine.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
        if rules > 1 {
            engine.add_fd(&FunctionalDependency::new(&["address"], "suppkey"), "psi");
        }
        for q in &workload.queries {
            engine.execute(q).unwrap();
        }
        engine.session().total_errors_repaired()
    };
    assert!(run(2) > run(1));
}

#[test]
fn incremental_rule_addition_matches_rerun_from_scratch() {
    // Table 7: adding ϕ2 after ϕ1 with provenance maintained must produce
    // the same probabilistic dataset as registering both rules up front.
    let config = SsbConfig {
        lineorder_rows: 1_500,
        distinct_orderkeys: 150,
        distinct_suppkeys: 30,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder_supplier(&config).unwrap();
    inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.1, 31).unwrap();
    inject_fd_errors(&mut table, "address", "suppkey", 0.5, 0.2, 32).unwrap();

    // Incremental: clean under ϕ1 via a full-table query, then add ϕ2.
    let mut incremental = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    incremental.register_table(table.clone());
    incremental.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
    incremental
        .execute_sql("SELECT orderkey, suppkey, address FROM lineorder_supplier")
        .unwrap();
    incremental
        .add_rule_incrementally(
            "lineorder_supplier",
            DenialConstraint::parse("psi", "t1.address = t2.address & t1.suppkey != t2.suppkey")
                .unwrap(),
        )
        .unwrap();

    // From scratch: both rules registered before the query.
    let mut scratch = DaisyEngine::new(DaisyConfig::default().with_cost_model(false)).unwrap();
    scratch.register_table(table);
    scratch.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
    scratch.add_fd(&FunctionalDependency::new(&["address"], "suppkey"), "psi");
    scratch
        .execute_sql("SELECT orderkey, suppkey, address FROM lineorder_supplier")
        .unwrap();

    let a = incremental.table("lineorder_supplier").unwrap();
    let b = scratch.table("lineorder_supplier").unwrap();
    // Same tuples become probabilistic either way.
    assert_eq!(a.probabilistic_tuple_count(), b.probabilistic_tuple_count());
}

#[test]
fn general_dc_cleaning_over_inequality_violations() {
    let config = SsbConfig {
        lineorder_rows: 800,
        distinct_orderkeys: 200,
        distinct_suppkeys: 20,
        ..SsbConfig::default()
    };
    let mut table = generate_lineorder(&config).unwrap();
    inject_inequality_errors(&mut table, "extended_price", "discount", 0.05, 0.5, 9).unwrap();
    let mut engine = DaisyEngine::new(
        DaisyConfig::default()
            .with_theta_partitions(16)
            .with_cost_model(false),
    )
    .unwrap();
    engine.register_table(table);
    engine
        .add_constraint_text(
            "dc",
            "t1.extended_price < t2.extended_price & t1.discount > t2.discount",
        )
        .unwrap();
    let outcome = engine
        .execute_sql("SELECT extended_price, discount FROM lineorder WHERE extended_price <= 5000")
        .unwrap();
    assert!(!outcome.result.is_empty());
    assert!(outcome.report.estimated_accuracy <= 1.0);
    assert!(
        engine
            .table("lineorder")
            .unwrap()
            .probabilistic_tuple_count()
            > 0
    );
}
