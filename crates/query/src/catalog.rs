//! The catalog: named tables the engine can query and update in place.

use std::collections::BTreeMap;
use std::sync::Arc;

use daisy_common::{DaisyError, Result};
use daisy_storage::{ColumnSnapshot, Table};

/// A collection of named tables.
///
/// Daisy mutates tables in place as queries clean them, so the catalog hands
/// out `&mut Table` as well.  Iteration order is deterministic (sorted by
/// name) to keep experiment output stable.
///
/// Tables are stored behind [`Arc`] so that cloning a catalog is a handful
/// of reference-count bumps: concurrent cleaning sessions snapshot the
/// whole catalog cheaply and only pay a deep table copy on their first
/// write to it (copy-on-write through [`Arc::make_mut`] in
/// [`Catalog::table_mut`]).
///
/// A table may carry an attached [`ColumnSnapshot`] (see
/// [`Catalog::attach_snapshot`]); the vectorized executor reads through it
/// when — and only when — it is still current for the table.  Replacing or
/// removing a table drops its snapshot; in-place mutation bumps the table
/// revision, which [`Catalog::current_snapshot`]'s currency check observes.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    snapshots: BTreeMap<String, Arc<ColumnSnapshot>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table under its own name, replacing any table previously
    /// registered under that name (and dropping its attached snapshot).
    pub fn add(&mut self, table: Table) {
        self.snapshots.remove(table.name());
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Registers an already-shared table under its own name without copying
    /// it, replacing any table previously registered under that name (and
    /// dropping its attached snapshot).
    pub fn add_shared(&mut self, table: Arc<Table>) {
        self.snapshots.remove(table.name());
        self.tables.insert(table.name().to_string(), table);
    }

    /// Attaches a columnar snapshot to table `name` for the vectorized
    /// read path.  The snapshot is only served while still current (see
    /// [`Catalog::current_snapshot`]); attaching a stale one is harmless.
    pub fn attach_snapshot(&mut self, name: &str, snapshot: Arc<ColumnSnapshot>) -> Result<()> {
        if !self.tables.contains_key(name) {
            return Err(DaisyError::Plan(format!("unknown table `{name}`")));
        }
        self.snapshots.insert(name.to_string(), snapshot);
        Ok(())
    }

    /// Builds and attaches a fresh snapshot of table `name`.
    pub fn refresh_snapshot(&mut self, name: &str) -> Result<()> {
        let snapshot = Arc::new(ColumnSnapshot::build(self.table(name)?)?);
        self.snapshots.insert(name.to_string(), snapshot);
        Ok(())
    }

    /// The snapshot attached to table `name`, provided it is still current
    /// (same revision and length as the table); `None` otherwise.
    pub fn current_snapshot(&self, name: &str) -> Option<Arc<ColumnSnapshot>> {
        let table = self.tables.get(name)?;
        self.snapshots
            .get(name)
            .filter(|snapshot| snapshot.is_current(table))
            .cloned()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| DaisyError::Plan(format!("unknown table `{name}`")))
    }

    /// Looks up a table's shared handle, for cheap cross-session snapshots.
    pub fn shared(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| DaisyError::Plan(format!("unknown table `{name}`")))
    }

    /// Looks up a table mutably.
    ///
    /// When the table is shared with other catalog clones (concurrent
    /// sessions holding consistent snapshots), this detaches a private copy
    /// first — classic copy-on-write; the other holders keep observing the
    /// unmodified table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| DaisyError::Plan(format!("unknown table `{name}`")))
    }

    /// Removes a table, returning it (copied out if still shared).
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.snapshots.remove(name);
        self.tables
            .remove(name)
            .map(|t| Arc::try_unwrap(t).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// `true` if a table with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// The registered table names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over the tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.tables.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};

    fn table(name: &str) -> Table {
        Table::new(name, Schema::from_pairs(&[("x", DataType::Int)]).unwrap())
    }

    #[test]
    fn add_lookup_remove() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.add(table("b"));
        cat.add(table("a"));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names(), vec!["a", "b"]);
        assert!(cat.table("a").is_ok());
        assert!(cat.table("z").is_err());
        assert!(cat.contains("b"));
        cat.table_mut("a")
            .unwrap()
            .push_values(vec![daisy_common::Value::Int(1)])
            .unwrap();
        assert_eq!(cat.table("a").unwrap().len(), 1);
        assert!(cat.remove("a").is_some());
        assert!(cat.remove("a").is_none());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn snapshots_attach_and_expire_with_the_table() {
        let mut cat = Catalog::new();
        let mut t = table("t");
        t.push_values(vec![daisy_common::Value::Int(1)]).unwrap();
        cat.add(t);
        assert!(cat
            .attach_snapshot(
                "nope",
                Arc::new(ColumnSnapshot::build(cat.table("t").unwrap()).unwrap())
            )
            .is_err());
        assert!(cat.current_snapshot("t").is_none());
        cat.refresh_snapshot("t").unwrap();
        assert!(cat.current_snapshot("t").is_some());
        // In-place mutation bumps the revision: the snapshot goes stale.
        cat.table_mut("t")
            .unwrap()
            .push_values(vec![daisy_common::Value::Int(2)])
            .unwrap();
        assert!(cat.current_snapshot("t").is_none());
        cat.refresh_snapshot("t").unwrap();
        assert!(cat.current_snapshot("t").is_some());
        // Replacing the table drops the attached snapshot outright.
        cat.add(table("t"));
        assert!(cat.current_snapshot("t").is_none());
    }

    #[test]
    fn re_adding_replaces() {
        let mut cat = Catalog::new();
        cat.add(table("t"));
        let mut t2 = table("t");
        t2.push_values(vec![daisy_common::Value::Int(5)]).unwrap();
        cat.add(t2);
        assert_eq!(cat.table("t").unwrap().len(), 1);
    }

    #[test]
    fn cloned_catalogs_copy_on_write() {
        let mut base = Catalog::new();
        base.add(table("t"));
        // A clone shares the table storage (no deep copy)…
        let mut session = base.clone();
        let shared_before = base.shared("t").unwrap();
        assert!(Arc::ptr_eq(&shared_before, &session.shared("t").unwrap()));
        // …until the clone writes, which detaches a private copy.
        session
            .table_mut("t")
            .unwrap()
            .push_values(vec![daisy_common::Value::Int(7)])
            .unwrap();
        assert_eq!(session.table("t").unwrap().len(), 1);
        assert_eq!(base.table("t").unwrap().len(), 0);
        assert!(Arc::ptr_eq(&shared_before, &base.shared("t").unwrap()));
        // Re-registering the modified table into the base is an Arc move.
        let committed = session.shared("t").unwrap();
        base.add_shared(Arc::clone(&committed));
        assert!(Arc::ptr_eq(&committed, &base.shared("t").unwrap()));
        assert_eq!(base.table("t").unwrap().len(), 1);
    }
}
