//! The query AST matching the paper's query template (§5):
//!
//! ```text
//! SELECT <SELECTLIST>
//! FROM <table name> [,(<table name>)]
//! [WHERE <col><op><val> [(AND/OR <col><op><val>)]]
//! [GROUP BY CLAUSE]
//! ```
//!
//! Joins are equi-joins expressed either with explicit `JOIN … ON` clauses or
//! with join predicates in the WHERE clause (the parser normalises both to
//! [`JoinSpec`]s).

use std::fmt;

use serde::{Deserialize, Serialize};

use daisy_expr::BoolExpr;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateFunc {
    /// `COUNT(*)` / `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggregateFunc {
    /// Parses an aggregate function name.
    pub fn parse(name: &str) -> Option<AggregateFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateFunc::Count),
            "SUM" => Some(AggregateFunc::Sum),
            "AVG" => Some(AggregateFunc::Avg),
            "MIN" => Some(AggregateFunc::Min),
            "MAX" => Some(AggregateFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggregateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Avg => "AVG",
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain column reference.
    Column(String),
    /// An aggregate over a column (`None` column means `COUNT(*)`).
    Aggregate {
        /// The aggregate function.
        func: AggregateFunc,
        /// The aggregated column; `None` only for `COUNT(*)`.
        column: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate { func, column } => match column {
                Some(c) => write!(f, "{func}({c})"),
                None => write!(f, "{func}(*)"),
            },
        }
    }
}

/// An equi-join between two of the query's tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// The table joined in (right side).
    pub table: String,
    /// Join key column on the accumulated left side (qualified).
    pub left_key: String,
    /// Join key column on `table` (qualified).
    pub right_key: String,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The SELECT list.
    pub select: Vec<SelectItem>,
    /// The first (driving) table of the FROM clause.
    pub from: String,
    /// Subsequent tables, each with its equi-join keys.
    pub joins: Vec<JoinSpec>,
    /// The WHERE clause (defaults to [`BoolExpr::True`]).
    pub filter: BoolExpr,
    /// GROUP BY columns (empty when the query has no grouping).
    pub group_by: Vec<String>,
}

impl Query {
    /// Creates a simple SELECT * query over one table.
    pub fn scan(table: impl Into<String>) -> Self {
        Query {
            select: vec![SelectItem::Wildcard],
            from: table.into(),
            joins: Vec::new(),
            filter: BoolExpr::True,
            group_by: Vec::new(),
        }
    }

    /// Builder: sets the WHERE clause.
    pub fn with_filter(mut self, filter: BoolExpr) -> Self {
        self.filter = filter;
        self
    }

    /// Builder: sets the SELECT list to plain columns.
    pub fn with_columns(mut self, columns: &[&str]) -> Self {
        self.select = columns
            .iter()
            .map(|c| SelectItem::Column(c.to_string()))
            .collect();
        self
    }

    /// Builder: appends an equi-join.
    pub fn join(
        mut self,
        table: impl Into<String>,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
    ) -> Self {
        self.joins.push(JoinSpec {
            table: table.into(),
            left_key: left_key.into(),
            right_key: right_key.into(),
        });
        self
    }

    /// Builder: sets the GROUP BY columns.
    pub fn with_group_by(mut self, columns: &[&str]) -> Self {
        self.group_by = columns.iter().map(|c| c.to_string()).collect();
        self
    }

    /// All table names referenced by the query, driving table first.
    pub fn tables(&self) -> Vec<&str> {
        let mut names = vec![self.from.as_str()];
        names.extend(self.joins.iter().map(|j| j.table.as_str()));
        names
    }

    /// `true` if the query aggregates (has a GROUP BY or an aggregate select
    /// item).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self
                .select
                .iter()
                .any(|s| matches!(s, SelectItem::Aggregate { .. }))
    }

    /// All attributes referenced anywhere in the query (select list, filter,
    /// join keys, group by); the overlap of this set with a rule's attributes
    /// decides whether the rule "affects query correctness" (§4.1).
    pub fn referenced_attributes(&self) -> Vec<String> {
        let mut attrs: Vec<String> = Vec::new();
        for item in &self.select {
            match item {
                SelectItem::Column(c) => attrs.push(c.clone()),
                SelectItem::Aggregate {
                    column: Some(c), ..
                } => attrs.push(c.clone()),
                _ => {}
            }
        }
        attrs.extend(self.filter.columns());
        for j in &self.joins {
            attrs.push(j.left_key.clone());
            attrs.push(j.right_key.clone());
        }
        attrs.extend(self.group_by.iter().cloned());
        attrs.sort();
        attrs.dedup();
        attrs
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            write!(f, " JOIN {} ON {} = {}", j.table, j.left_key, j.right_key)?;
        }
        if self.filter != BoolExpr::True {
            write!(f, " WHERE {}", self.filter)?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_expected_query() {
        let q = Query::scan("lineorder")
            .with_columns(&["orderkey", "suppkey"])
            .with_filter(BoolExpr::between("orderkey", 10, 20))
            .join("supplier", "lineorder.suppkey", "supplier.suppkey")
            .with_group_by(&["suppkey"]);
        assert_eq!(q.tables(), vec!["lineorder", "supplier"]);
        assert!(q.is_aggregate());
        let attrs = q.referenced_attributes();
        assert!(attrs.contains(&"orderkey".to_string()));
        assert!(attrs.contains(&"supplier.suppkey".to_string()));
    }

    #[test]
    fn aggregate_detection() {
        let plain = Query::scan("t").with_columns(&["a"]);
        assert!(!plain.is_aggregate());
        let mut agg = Query::scan("t");
        agg.select = vec![SelectItem::Aggregate {
            func: AggregateFunc::Avg,
            column: Some("co".into()),
        }];
        assert!(agg.is_aggregate());
    }

    #[test]
    fn aggregate_func_parse() {
        assert_eq!(AggregateFunc::parse("sum"), Some(AggregateFunc::Sum));
        assert_eq!(AggregateFunc::parse("AVG"), Some(AggregateFunc::Avg));
        assert_eq!(AggregateFunc::parse("median"), None);
    }

    #[test]
    fn display_roundtrips_visually() {
        let q = Query::scan("cities")
            .with_columns(&["zip"])
            .with_filter(BoolExpr::eq("city", "Los Angeles"));
        assert_eq!(
            q.to_string(),
            "SELECT zip FROM cities WHERE city = 'Los Angeles'"
        );
    }
}
