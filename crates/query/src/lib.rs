//! # daisy-query
//!
//! The query layer of Daisy: a parser for the SP / SPJ / group-by query
//! template of the paper (§5), a logical plan, and probabilistic-aware
//! physical operators (scan, filter, project, hash equi-join with
//! candidate-overlap join keys, incremental join, group-by aggregation).
//!
//! The cleaning operators themselves (`cleanσ`, `clean⋈`) live in
//! `daisy-core`; they are woven between these query operators by the
//! cleaning-aware planner.  The physical operators here are deliberately
//! exposed as standalone functions over `(Schema, Vec<Tuple>)` so the
//! cleaning planner can re-use them when it splices extra stages (relaxation,
//! incremental join updates) into a plan.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod catalog;
pub mod executor;
pub mod logical;
pub mod parser;
pub mod physical;
pub mod result;

pub use ast::{AggregateFunc, Query, SelectItem};
pub use catalog::Catalog;
pub use executor::{execute, execute_with};
pub use logical::LogicalPlan;
pub use parser::parse_query;
pub use result::QueryResult;
