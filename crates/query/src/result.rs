//! Query results.

use std::fmt;
use std::sync::Arc;

use daisy_common::{Result, Schema, TupleId, Value};
use daisy_storage::Tuple;

/// The result of executing a (possibly partial) query plan.
///
/// Result tuples keep their identity: for SP queries over one table the
/// tuple ids are the base-relation ids, and for joins the `lineage` of each
/// tuple records the originating base tuples.  The cleaning operators rely on
/// this to write repairs back to the base tables.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result schema.
    pub schema: Arc<Schema>,
    /// The result tuples.
    pub tuples: Vec<Tuple>,
}

impl QueryResult {
    /// Creates a result.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        QueryResult { schema, tuples }
    }

    /// An empty result with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        QueryResult {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the result has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The expected values of one column, in tuple order.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        self.tuples.iter().map(|t| t.value(idx)).collect()
    }

    /// The ids of the result tuples (base ids for SP results).
    pub fn tuple_ids(&self) -> Vec<TupleId> {
        self.tuples.iter().map(|t| t.id).collect()
    }

    /// Number of result tuples with at least one probabilistic cell.
    pub fn probabilistic_count(&self) -> usize {
        self.tuples.iter().filter(|t| t.is_probabilistic()).count()
    }

    /// Renders the result as rows of display strings (useful in examples).
    pub fn to_rows(&self) -> Vec<Vec<String>> {
        self.tuples
            .iter()
            .map(|t| t.cells.iter().map(|c| c.to_string()).collect())
            .collect()
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in self.tuples.iter().take(50) {
            let row: Vec<String> = t.cells.iter().map(|c| c.to_string()).collect();
            writeln!(f, "  {}", row.join(" | "))?;
        }
        if self.len() > 50 {
            writeln!(f, "  … {} more rows", self.len() - 50)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::DataType;

    #[test]
    fn accessors_work() {
        let schema = Arc::new(
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
        );
        let tuples = vec![
            Tuple::from_values(TupleId::new(3), vec![Value::Int(9001), Value::from("LA")]),
            Tuple::from_values(TupleId::new(7), vec![Value::Int(10001), Value::from("NY")]),
        ];
        let result = QueryResult::new(schema.clone(), tuples);
        assert_eq!(result.len(), 2);
        assert!(!result.is_empty());
        assert_eq!(
            result.column("zip").unwrap(),
            vec![Value::Int(9001), Value::Int(10001)]
        );
        assert_eq!(result.tuple_ids(), vec![TupleId::new(3), TupleId::new(7)]);
        assert_eq!(result.probabilistic_count(), 0);
        assert_eq!(result.to_rows()[0], vec!["9001", "LA"]);
        assert!(result.column("state").is_err());
        assert!(QueryResult::empty(schema).is_empty());
    }
}
