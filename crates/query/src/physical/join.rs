//! The hash equi-join operator with probabilistic join keys.
//!
//! Following §4 of the paper, "(self-)joins on probabilistic join-keys output
//! a pair iff the candidate values of the join-keys overlap", and the result
//! stores the originating tuple ids (lineage) so that a later repair of a
//! join-key value can invalidate or extend the pair set incrementally.

use std::collections::HashMap;
use std::sync::Arc;

use daisy_common::{Result, Schema, TupleId, Value};
use daisy_exec::{par_map_chunks, ExecContext};
use daisy_storage::Tuple;

/// The output of a join: result schema, result tuples (with lineage), and
/// the number of probe-side tuples that found at least one match.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// Combined schema (left fields then right fields).
    pub schema: Arc<Schema>,
    /// Result tuples; ids are fresh and local to the result, lineage records
    /// the base tuples.
    pub tuples: Vec<Tuple>,
    /// Number of left tuples that produced at least one output pair.
    pub matched_left: usize,
}

/// Hash equi-join of `left ⋈ right` on `left_key = right_key`.
///
/// Probabilistic join keys match when their candidate-value sets overlap.
/// The output order is deterministic: left order outer, right build order
/// inner.
pub fn hash_join(
    ctx: &ExecContext,
    left_schema: &Schema,
    left: &[Tuple],
    right_schema: &Schema,
    right: &[Tuple],
    left_key: &str,
    right_key: &str,
) -> Result<JoinOutput> {
    let out_schema = Arc::new(left_schema.join(right_schema)?);
    let left_idx = left_schema.index_of(left_key)?;
    let right_idx = right_schema.index_of(right_key)?;

    // Build side: every possible value of the right key maps to the list of
    // right positions carrying it.
    let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
    for (pos, tuple) in right.iter().enumerate() {
        for value in tuple.cell(right_idx)?.possible_values() {
            build.entry(value.clone()).or_default().push(pos);
        }
    }

    // Probe side, parallel over left positions.  Each output entry is
    // (left position, right position) so we can assign deterministic fresh
    // ids after the parallel phase.
    let left_positions: Vec<usize> = (0..left.len()).collect();
    let pairs: Vec<(usize, usize)> = {
        let build = &build;
        par_map_chunks(ctx, &left_positions, |chunk| {
            let mut out = Vec::new();
            for &pos in chunk {
                let Ok(cell) = left[pos].cell(left_idx) else {
                    continue;
                };
                let mut matches: Vec<usize> = Vec::new();
                for value in cell.possible_values() {
                    if let Some(positions) = build.get(value) {
                        matches.extend(positions.iter().copied());
                    }
                }
                matches.sort_unstable();
                matches.dedup();
                for right_pos in matches {
                    out.push((pos, right_pos));
                }
            }
            out
        })
    };

    let mut matched: Vec<bool> = vec![false; left.len()];
    let mut tuples = Vec::with_capacity(pairs.len());
    for (i, (lpos, rpos)) in pairs.iter().enumerate() {
        matched[*lpos] = true;
        tuples.push(Tuple::join(
            &left[*lpos],
            &right[*rpos],
            TupleId::new(i as u64),
        ));
    }
    Ok(JoinOutput {
        schema: out_schema,
        tuples,
        matched_left: matched.iter().filter(|m| **m).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::DataType;
    use daisy_storage::{Candidate, Cell};

    fn cities_schema() -> Schema {
        Schema::from_pairs(&[("c.zip", DataType::Int), ("c.city", DataType::Str)]).unwrap()
    }

    fn employees_schema() -> Schema {
        Schema::from_pairs(&[("e.zip", DataType::Int), ("e.name", DataType::Str)]).unwrap()
    }

    fn cities() -> Vec<Tuple> {
        vec![
            Tuple::from_values(TupleId::new(0), vec![Value::Int(9001), Value::from("LA")]),
            Tuple::from_cells(
                TupleId::new(1),
                vec![
                    Cell::probabilistic(vec![
                        Candidate::exact(Value::Int(9001), 0.5),
                        Candidate::exact(Value::Int(10001), 0.5),
                    ]),
                    Cell::Determinate(Value::from("SF")),
                ],
            ),
        ]
    }

    fn employees() -> Vec<Tuple> {
        vec![
            Tuple::from_values(
                TupleId::new(0),
                vec![Value::Int(9001), Value::from("Peter")],
            ),
            Tuple::from_values(
                TupleId::new(1),
                vec![Value::Int(10001), Value::from("Mary")],
            ),
            Tuple::from_values(TupleId::new(2), vec![Value::Int(10002), Value::from("Jon")]),
        ]
    }

    #[test]
    fn probabilistic_keys_match_on_candidate_overlap() {
        // Mirrors Table 4 of the paper: the probabilistic city tuple
        // {9001, 10001} joins both Peter (9001) and Mary (10001).
        let ctx = ExecContext::sequential();
        let out = hash_join(
            &ctx,
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        assert_eq!(out.schema.len(), 4);
        assert_eq!(out.tuples.len(), 3);
        assert_eq!(out.matched_left, 2);
        // Lineage records both base tuples of every pair.
        for t in &out.tuples {
            assert_eq!(t.lineage.len(), 2);
        }
        let names: Vec<Value> = out.tuples.iter().map(|t| t.value(3).unwrap()).collect();
        assert!(names.contains(&Value::from("Peter")));
        assert!(names.contains(&Value::from("Mary")));
        assert!(!names.contains(&Value::from("Jon")));
    }

    #[test]
    fn join_is_deterministic_across_parallelism() {
        let seq = hash_join(
            &ExecContext::sequential(),
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        let par = hash_join(
            &ExecContext::new(8),
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        let rows = |o: &JoinOutput| -> Vec<Vec<String>> {
            o.tuples
                .iter()
                .map(|t| t.cells.iter().map(|c| c.to_string()).collect())
                .collect()
        };
        assert_eq!(rows(&seq), rows(&par));
    }

    #[test]
    fn empty_inputs_and_missing_keys() {
        let ctx = ExecContext::sequential();
        let empty: Vec<Tuple> = Vec::new();
        let out = hash_join(
            &ctx,
            &cities_schema(),
            &empty,
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        assert!(out.tuples.is_empty());
        assert!(hash_join(
            &ctx,
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.nope",
            "e.zip",
        )
        .is_err());
    }
}
