//! The hash equi-join operator with probabilistic join keys.
//!
//! Following §4 of the paper, "(self-)joins on probabilistic join-keys output
//! a pair iff the candidate values of the join-keys overlap", and the result
//! stores the originating tuple ids (lineage) so that a later repair of a
//! join-key value can invalidate or extend the pair set incrementally.
//! NULL join keys never match (SQL equi-join semantics), on either path.
//!
//! Two implementations share those semantics: [`hash_join`] builds on owned
//! [`Value`] keys, [`hash_join_coded`] builds on `Copy`
//! [`ColumnCode`]s from the right table's [`ColumnSnapshot`] and probes
//! through the snapshot dictionary — no `Value` clone ever happens on the
//! build side.  Both validate their key columns up front with a typed
//! [`DaisyError::UnknownJoinColumn`], so a bad plan fails at operator
//! construction instead of mid-stream.

use std::collections::HashMap;
use std::sync::Arc;

use daisy_common::{DaisyError, Result, Schema, TupleId, Value};
use daisy_exec::{chunk_ranges, par_map_chunks, run_stealing, ExecContext};
use daisy_storage::{ColumnCode, ColumnSnapshot, Tuple};

/// The output of a join: result schema, result tuples (with lineage), and
/// the number of probe-side tuples that found at least one match.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// Combined schema (left fields then right fields).
    pub schema: Arc<Schema>,
    /// Result tuples; ids are fresh and local to the result, lineage records
    /// the base tuples.
    pub tuples: Vec<Tuple>,
    /// Number of left tuples that produced at least one output pair.
    pub matched_left: usize,
}

/// Hash equi-join of `left ⋈ right` on `left_key = right_key`.
///
/// Probabilistic join keys match when their candidate-value sets overlap.
/// The output order is deterministic: left order outer, right build order
/// inner.
pub fn hash_join(
    ctx: &ExecContext,
    left_schema: &Schema,
    left: &[Tuple],
    right_schema: &Schema,
    right: &[Tuple],
    left_key: &str,
    right_key: &str,
) -> Result<JoinOutput> {
    let out_schema = Arc::new(left_schema.join(right_schema)?);
    let (left_idx, right_idx) = validate_join_keys(left_schema, right_schema, left_key, right_key)?;

    // Build side: every possible value of the right key maps to the list of
    // right positions carrying it.  NULL keys never join.
    let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
    for (pos, tuple) in right.iter().enumerate() {
        for value in tuple.cell(right_idx)?.possible_values() {
            if value.is_null() {
                continue;
            }
            build.entry(value.clone()).or_default().push(pos);
        }
    }

    // Probe side, parallel over left positions.  Each output entry is
    // (left position, right position) so we can assign deterministic fresh
    // ids after the parallel phase.
    let left_positions: Vec<usize> = (0..left.len()).collect();
    let pairs: Vec<(usize, usize)> = {
        let build = &build;
        par_map_chunks(ctx, &left_positions, |chunk| {
            let mut out = Vec::new();
            for &pos in chunk {
                let Ok(cell) = left[pos].cell(left_idx) else {
                    continue;
                };
                let mut matches: Vec<usize> = Vec::new();
                for value in cell.possible_values() {
                    if value.is_null() {
                        continue;
                    }
                    if let Some(positions) = build.get(value) {
                        matches.extend(positions.iter().copied());
                    }
                }
                matches.sort_unstable();
                matches.dedup();
                for right_pos in matches {
                    out.push((pos, right_pos));
                }
            }
            out
        })
    };

    let mut matched: Vec<bool> = vec![false; left.len()];
    let mut tuples = Vec::with_capacity(pairs.len());
    for (i, (lpos, rpos)) in pairs.iter().enumerate() {
        matched[*lpos] = true;
        tuples.push(Tuple::join(
            &left[*lpos],
            &right[*rpos],
            TupleId::new(i as u64),
        ));
    }
    Ok(JoinOutput {
        schema: out_schema,
        tuples,
        matched_left: matched.iter().filter(|m| **m).count(),
    })
}

/// Resolves both join-key columns, reporting a missing one as a typed
/// [`DaisyError::UnknownJoinColumn`] — the up-front validation both join
/// implementations (and plan validation in the executor) share.
pub fn validate_join_keys(
    left_schema: &Schema,
    right_schema: &Schema,
    left_key: &str,
    right_key: &str,
) -> Result<(usize, usize)> {
    let left_idx = left_schema
        .index_of(left_key)
        .map_err(|_| DaisyError::UnknownJoinColumn {
            side: "left",
            column: left_key.to_string(),
        })?;
    let right_idx =
        right_schema
            .index_of(right_key)
            .map_err(|_| DaisyError::UnknownJoinColumn {
                side: "right",
                column: right_key.to_string(),
            })?;
    Ok((left_idx, right_idx))
}

/// Code-keyed hash equi-join: like [`hash_join`], but the build side is
/// keyed on `Copy` [`ColumnCode`]s read from the **right** table's snapshot
/// (no `Value` clones), and both sides may be restricted to sorted
/// selection vectors (`None` = all rows) — the late-materialization
/// protocol of the vectorized executor.
///
/// `right[i]` must be the tuple snapshot row `i` was built from.  The left
/// side needs no snapshot: probe values are encoded through the right
/// snapshot's dictionary on the fly.  Candidate strings the dictionary has
/// never interned (only possible for relaxed cells) are collected in an
/// exact side table, so they still match by value.
///
/// Byte-identical to [`hash_join`] over the same rows by construction:
/// [`ColumnCode`] shares `Value`'s equality and hash semantics (int/float
/// coercion, NaN == NaN), NULL keys never join on either path, and matches
/// are emitted in the same (left order outer, right build order inner)
/// order with the same fresh ids and lineage.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_coded(
    ctx: &ExecContext,
    left_schema: &Schema,
    left: &[Tuple],
    left_selection: Option<&[usize]>,
    right_schema: &Schema,
    right: &[Tuple],
    right_selection: Option<&[usize]>,
    right_snapshot: &ColumnSnapshot,
    left_key: &str,
    right_key: &str,
) -> Result<JoinOutput> {
    let out_schema = Arc::new(left_schema.join(right_schema)?);
    let (left_idx, right_idx) = validate_join_keys(left_schema, right_schema, left_key, right_key)?;
    if right_snapshot.len() != right.len() {
        return Err(DaisyError::Execution(format!(
            "coded join requires a snapshot aligned with its build side \
             ({} snapshot rows vs {} tuples)",
            right_snapshot.len(),
            right.len()
        )));
    }
    let all_left: Vec<usize>;
    let left_selection: &[usize] = match left_selection {
        Some(positions) => positions,
        None => {
            all_left = (0..left.len()).collect();
            &all_left
        }
    };
    let all_right: Vec<usize>;
    let right_selection: &[usize] = match right_selection {
        Some(positions) => positions,
        None => {
            all_right = (0..right.len()).collect();
            &all_right
        }
    };

    // Build side on codes.  Determinate keys read straight from the
    // snapshot column (`ColumnCode` is `Copy`); relaxed keys encode each
    // exact candidate through the dictionary.  A string is either interned
    // (all its occurrences land in `build`) or not (all land in `absent`),
    // so the two maps never split one value's positions.
    let mut build: HashMap<ColumnCode, Vec<usize>> = HashMap::new();
    let mut absent: HashMap<&str, Vec<usize>> = HashMap::new();
    for &pos in right_selection {
        let cell = right[pos].cell(right_idx)?;
        if cell.is_probabilistic() {
            for value in cell.possible_values() {
                if value.is_null() {
                    continue;
                }
                match right_snapshot.encode_ordering(value) {
                    Some(code) => build.entry(code).or_default().push(pos),
                    None => {
                        if let Value::Str(s) = value {
                            absent.entry(s.as_str()).or_default().push(pos);
                        }
                    }
                }
            }
        } else {
            let code = right_snapshot.ordering_code(pos, right_idx);
            if !code.is_null() {
                build.entry(code).or_default().push(pos);
            }
        }
    }

    // Probe side: morsel-parallel over the left selection, merged in morsel
    // order — the same deterministic (left outer, right build inner) order
    // as the row path.
    let probe_one = |value: &Value, matches: &mut Vec<usize>| {
        if value.is_null() {
            return;
        }
        match right_snapshot.encode_ordering(value) {
            Some(code) => {
                if let Some(positions) = build.get(&code) {
                    matches.extend(positions.iter().copied());
                }
            }
            None => {
                if let Value::Str(s) = value {
                    if let Some(positions) = absent.get(s.as_str()) {
                        matches.extend(positions.iter().copied());
                    }
                }
            }
        }
    };
    let ranges = chunk_ranges(left_selection.len(), ctx.morsel_count(left_selection.len()));
    let chunks: Vec<Vec<(usize, usize)>> = run_stealing(ctx, ranges.len(), |m| {
        let (start, end) = ranges[m];
        let mut out = Vec::new();
        for &pos in &left_selection[start..end] {
            let Ok(cell) = left[pos].cell(left_idx) else {
                continue;
            };
            let mut matches: Vec<usize> = Vec::new();
            if let Some(value) = cell.as_determinate() {
                probe_one(value, &mut matches);
            } else {
                for value in cell.possible_values() {
                    probe_one(value, &mut matches);
                }
            }
            matches.sort_unstable();
            matches.dedup();
            for right_pos in matches {
                out.push((pos, right_pos));
            }
        }
        out
    });

    let mut matched: Vec<bool> = vec![false; left.len()];
    let mut tuples = Vec::new();
    for (next_id, (lpos, rpos)) in chunks.into_iter().flatten().enumerate() {
        matched[lpos] = true;
        tuples.push(Tuple::join(
            &left[lpos],
            &right[rpos],
            TupleId::new(next_id as u64),
        ));
    }
    Ok(JoinOutput {
        schema: out_schema,
        tuples,
        matched_left: matched.iter().filter(|m| **m).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::DataType;
    use daisy_storage::{Candidate, Cell};

    fn cities_schema() -> Schema {
        Schema::from_pairs(&[("c.zip", DataType::Int), ("c.city", DataType::Str)]).unwrap()
    }

    fn employees_schema() -> Schema {
        Schema::from_pairs(&[("e.zip", DataType::Int), ("e.name", DataType::Str)]).unwrap()
    }

    fn cities() -> Vec<Tuple> {
        vec![
            Tuple::from_values(TupleId::new(0), vec![Value::Int(9001), Value::from("LA")]),
            Tuple::from_cells(
                TupleId::new(1),
                vec![
                    Cell::probabilistic(vec![
                        Candidate::exact(Value::Int(9001), 0.5),
                        Candidate::exact(Value::Int(10001), 0.5),
                    ]),
                    Cell::Determinate(Value::from("SF")),
                ],
            ),
        ]
    }

    fn employees() -> Vec<Tuple> {
        vec![
            Tuple::from_values(
                TupleId::new(0),
                vec![Value::Int(9001), Value::from("Peter")],
            ),
            Tuple::from_values(
                TupleId::new(1),
                vec![Value::Int(10001), Value::from("Mary")],
            ),
            Tuple::from_values(TupleId::new(2), vec![Value::Int(10002), Value::from("Jon")]),
        ]
    }

    #[test]
    fn probabilistic_keys_match_on_candidate_overlap() {
        // Mirrors Table 4 of the paper: the probabilistic city tuple
        // {9001, 10001} joins both Peter (9001) and Mary (10001).
        let ctx = ExecContext::sequential();
        let out = hash_join(
            &ctx,
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        assert_eq!(out.schema.len(), 4);
        assert_eq!(out.tuples.len(), 3);
        assert_eq!(out.matched_left, 2);
        // Lineage records both base tuples of every pair.
        for t in &out.tuples {
            assert_eq!(t.lineage.len(), 2);
        }
        let names: Vec<Value> = out.tuples.iter().map(|t| t.value(3).unwrap()).collect();
        assert!(names.contains(&Value::from("Peter")));
        assert!(names.contains(&Value::from("Mary")));
        assert!(!names.contains(&Value::from("Jon")));
    }

    #[test]
    fn join_is_deterministic_across_parallelism() {
        let seq = hash_join(
            &ExecContext::sequential(),
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        let par = hash_join(
            &ExecContext::new(8),
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        let rows = |o: &JoinOutput| -> Vec<Vec<String>> {
            o.tuples
                .iter()
                .map(|t| t.cells.iter().map(|c| c.to_string()).collect())
                .collect()
        };
        assert_eq!(rows(&seq), rows(&par));
    }

    #[test]
    fn empty_inputs_and_missing_keys() {
        let ctx = ExecContext::sequential();
        let empty: Vec<Tuple> = Vec::new();
        let out = hash_join(
            &ctx,
            &cities_schema(),
            &empty,
            &employees_schema(),
            &employees(),
            "c.zip",
            "e.zip",
        )
        .unwrap();
        assert!(out.tuples.is_empty());
        assert!(hash_join(
            &ctx,
            &cities_schema(),
            &cities(),
            &employees_schema(),
            &employees(),
            "c.nope",
            "e.zip",
        )
        .is_err());
    }

    #[test]
    fn missing_keys_raise_typed_errors_on_both_paths() {
        let ctx = ExecContext::sequential();
        let right = right_table();
        let snapshot = ColumnSnapshot::build(&right).unwrap();
        for (lk, rk, side, column) in [
            ("c.nope", "e.zip", "left", "c.nope"),
            ("c.zip", "e.nope", "right", "e.nope"),
        ] {
            let row_err = hash_join(
                &ctx,
                &cities_schema(),
                &cities(),
                &employees_schema(),
                &employees(),
                lk,
                rk,
            )
            .unwrap_err();
            let coded_err = hash_join_coded(
                &ctx,
                &cities_schema(),
                &cities(),
                None,
                right.schema(),
                right.tuples(),
                None,
                &snapshot,
                lk,
                rk,
            )
            .unwrap_err();
            for err in [row_err, coded_err] {
                match err {
                    DaisyError::UnknownJoinColumn { side: s, column: c } => {
                        assert_eq!(s, side);
                        assert_eq!(c, column);
                    }
                    other => panic!("expected UnknownJoinColumn, got {other:?}"),
                }
            }
        }
    }

    /// Builds the employees fixture as a `Table` (same schema and tuple
    /// ids) so the coded path has a snapshot to read.
    fn right_table() -> daisy_storage::Table {
        let mut table = daisy_storage::Table::new("e", employees_schema());
        for tuple in employees() {
            table.push_cells(tuple.cells).unwrap();
        }
        table
    }

    fn row_dump(out: &JoinOutput) -> Vec<(TupleId, Vec<TupleId>, Vec<String>)> {
        out.tuples
            .iter()
            .map(|t| {
                (
                    t.id,
                    t.lineage.clone(),
                    t.cells.iter().map(|c| c.to_string()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn coded_join_matches_row_join_exactly() {
        let right = right_table();
        let snapshot = ColumnSnapshot::build(&right).unwrap();
        for workers in [1usize, 2, 4, 7] {
            let ctx = ExecContext::new(workers);
            let row = hash_join(
                &ctx,
                &cities_schema(),
                &cities(),
                right.schema(),
                right.tuples(),
                "c.zip",
                "e.zip",
            )
            .unwrap();
            let coded = hash_join_coded(
                &ctx,
                &cities_schema(),
                &cities(),
                None,
                right.schema(),
                right.tuples(),
                None,
                &snapshot,
                "c.zip",
                "e.zip",
            )
            .unwrap();
            assert_eq!(row_dump(&row), row_dump(&coded));
            assert_eq!(row.matched_left, coded.matched_left);
        }
    }

    #[test]
    fn coded_join_honours_selection_vectors() {
        let right = right_table();
        let snapshot = ColumnSnapshot::build(&right).unwrap();
        let ctx = ExecContext::sequential();
        // Restrict the build side to employee rows {1, 2}: Peter (9001,
        // row 0) must no longer match anyone.
        let out = hash_join_coded(
            &ctx,
            &cities_schema(),
            &cities(),
            None,
            right.schema(),
            right.tuples(),
            Some(&[1, 2]),
            &snapshot,
            "c.zip",
            "e.zip",
        )
        .unwrap();
        let names: Vec<Value> = out.tuples.iter().map(|t| t.value(3).unwrap()).collect();
        assert_eq!(names, vec![Value::from("Mary")]);
        // Restrict the probe side to the probabilistic city only.
        let out = hash_join_coded(
            &ctx,
            &cities_schema(),
            &cities(),
            Some(&[1]),
            right.schema(),
            right.tuples(),
            None,
            &snapshot,
            "c.zip",
            "e.zip",
        )
        .unwrap();
        assert_eq!(out.tuples.len(), 2);
        assert_eq!(out.matched_left, 1);
    }

    /// `1 == 1.0` must join on both paths (`Value` and `ColumnCode` share
    /// int/float hash coercion), and NULL keys must never join on either —
    /// not even NULL-to-NULL.
    #[test]
    fn key_semantics_pin_coercion_and_nulls_on_both_paths() {
        let left_schema =
            Schema::from_pairs(&[("l.k", DataType::Float), ("l.tag", DataType::Str)]).unwrap();
        let left = vec![
            Tuple::from_values(TupleId::new(0), vec![Value::Float(1.0), Value::from("f1")]),
            Tuple::from_values(TupleId::new(1), vec![Value::Null, Value::from("null")]),
            Tuple::from_cells(
                TupleId::new(2),
                vec![
                    Cell::probabilistic(vec![
                        Candidate::exact(Value::Null, 0.5),
                        Candidate::exact(Value::Int(2), 0.5),
                    ]),
                    Cell::Determinate(Value::from("maybe")),
                ],
            ),
        ];
        let mut right = daisy_storage::Table::new(
            "r",
            Schema::from_pairs(&[("r.k", DataType::Int), ("r.tag", DataType::Str)]).unwrap(),
        );
        right
            .push_values(vec![Value::Int(1), Value::from("i1")])
            .unwrap();
        right
            .push_values(vec![Value::Null, Value::from("null")])
            .unwrap();
        right
            .push_values(vec![Value::Int(2), Value::from("i2")])
            .unwrap();
        let snapshot = ColumnSnapshot::build(&right).unwrap();
        let ctx = ExecContext::sequential();
        let row = hash_join(
            &ctx,
            &left_schema,
            &left,
            right.schema(),
            right.tuples(),
            "l.k",
            "r.k",
        )
        .unwrap();
        let coded = hash_join_coded(
            &ctx,
            &left_schema,
            &left,
            None,
            right.schema(),
            right.tuples(),
            None,
            &snapshot,
            "l.k",
            "r.k",
        )
        .unwrap();
        for out in [&row, &coded] {
            let pairs: Vec<(String, String)> = out
                .tuples
                .iter()
                .map(|t| {
                    (
                        t.value(1).unwrap().to_string(),
                        t.value(3).unwrap().to_string(),
                    )
                })
                .collect();
            // Float 1.0 joins Int 1; the NULL candidate contributes
            // nothing but the exact Int 2 candidate still joins; the
            // determinate NULLs on both sides join nothing.
            assert_eq!(
                pairs,
                vec![
                    ("f1".to_string(), "i1".to_string()),
                    ("maybe".to_string(), "i2".to_string()),
                ]
            );
            assert_eq!(out.matched_left, 2);
        }
        assert_eq!(row_dump(&row), row_dump(&coded));
    }
}
