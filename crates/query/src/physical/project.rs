//! The project operator.

use std::sync::Arc;

use daisy_common::{Result, Schema};
use daisy_storage::Tuple;

/// Projects tuples onto the named columns (in the requested order).
///
/// Tuple identity and lineage are preserved so that projections remain
/// traceable back to the base relation.
pub fn project(
    schema: &Schema,
    tuples: &[Tuple],
    columns: &[String],
) -> Result<(Arc<Schema>, Vec<Tuple>)> {
    let names: Vec<&str> = columns.iter().map(String::as_str).collect();
    let out_schema = Arc::new(schema.project(&names)?);
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<_>>()?;
    let projected: Vec<Tuple> = tuples
        .iter()
        .map(|t| t.project(&indices))
        .collect::<Result<_>>()?;
    Ok((out_schema, projected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, TupleId, Value};

    #[test]
    fn project_selects_and_preserves_identity() {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Str),
        ])
        .unwrap();
        let tuples = vec![Tuple::from_values(
            TupleId::new(42),
            vec![Value::Int(1), Value::Int(2), Value::from("x")],
        )];
        let (out_schema, out) =
            project(&schema, &tuples, &["c".to_string(), "a".to_string()]).unwrap();
        assert_eq!(out_schema.names(), vec!["c", "a"]);
        assert_eq!(out[0].id, TupleId::new(42));
        assert_eq!(out[0].value(0).unwrap(), Value::from("x"));
        assert!(project(&schema, &tuples, &["nope".to_string()]).is_err());
    }
}
