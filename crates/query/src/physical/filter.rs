//! The select (filter) operator: a row path cloning qualifying tuples and a
//! vectorized path producing selection vectors over snapshot column codes.

use daisy_common::{DaisyError, Result, Schema};
use daisy_exec::{chunk_ranges, par_map_chunks, run_stealing, ExecContext};
use daisy_expr::{BoolExpr, CodedScalarPredicate};
use daisy_storage::{ColumnSnapshot, Tuple};

/// How predicates treat probabilistic cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateMode {
    /// Evaluate over the expected (most probable) value of each cell: the
    /// behaviour of a query engine that is unaware of candidate fixes.
    Expected,
    /// Possible-world semantics (§4): a tuple qualifies iff at least one
    /// candidate value of each referenced cell could satisfy the predicate.
    Possible,
}

/// Filters tuples by the predicate, preserving order and identity.
///
/// Errors from predicate evaluation (e.g. unknown columns) are surfaced
/// rather than silently dropping tuples.
pub fn filter_tuples(
    ctx: &ExecContext,
    schema: &Schema,
    tuples: &[Tuple],
    predicate: &BoolExpr,
    mode: PredicateMode,
) -> Result<Vec<Tuple>> {
    if matches!(predicate, BoolExpr::True) {
        return Ok(tuples.to_vec());
    }
    // Validate referenced columns once up front so per-tuple evaluation
    // errors cannot differ between partitions.
    for column in predicate.columns() {
        schema.index_of(&column)?;
    }
    let results: Vec<Tuple> = par_map_chunks(ctx, tuples, |chunk| {
        chunk
            .iter()
            .filter(|t| {
                let verdict = match mode {
                    PredicateMode::Expected => predicate.eval_expected(schema, t),
                    PredicateMode::Possible => predicate.eval_possible(schema, t),
                };
                verdict.unwrap_or(false)
            })
            .cloned()
            .collect()
    });
    Ok(results)
}

/// Vectorized filter: evaluates the predicate over snapshot column codes
/// and returns the qualifying **positions** (a sorted selection vector)
/// instead of cloning tuples — the late-materialization protocol of the
/// vectorized executor.
///
/// `tuples[i]` must be the tuple snapshot row `i` was built from (the
/// caller guarantees the snapshot is current); `selection` restricts
/// evaluation to a sorted subset of positions (`None` = all rows).  Work is
/// split morsel-wise and dispatched through the work-stealing scheduler;
/// per-morsel outputs are concatenated in morsel order, so the result is
/// sorted and independent of worker count.
///
/// Byte-identical to [`filter_tuples`] over the same rows by construction:
/// clean rows run the coded comparisons (which mirror `Value::total_cmp`
/// exactly), and under [`PredicateMode::Possible`] rows with a
/// probabilistic referenced cell fall back to the exact per-tuple
/// [`BoolExpr::eval_possible`].  Under [`PredicateMode::Expected`] no
/// fallback is needed — the snapshot stores exactly the expected value of
/// every cell, relaxed or not.
pub fn filter_selection(
    ctx: &ExecContext,
    schema: &Schema,
    tuples: &[Tuple],
    snapshot: &ColumnSnapshot,
    selection: Option<&[usize]>,
    predicate: &BoolExpr,
    mode: PredicateMode,
) -> Result<Vec<usize>> {
    if snapshot.len() != tuples.len() {
        return Err(DaisyError::Execution(format!(
            "vectorized filter requires a snapshot aligned with its input \
             ({} snapshot rows vs {} tuples)",
            snapshot.len(),
            tuples.len()
        )));
    }
    let all: Vec<usize>;
    let selection: &[usize] = match selection {
        Some(positions) => positions,
        None => {
            all = (0..tuples.len()).collect();
            &all
        }
    };
    if matches!(predicate, BoolExpr::True) {
        return Ok(selection.to_vec());
    }
    // Resolution validates every referenced column up front, mirroring the
    // row path.
    let coded = CodedScalarPredicate::resolve(predicate, schema, snapshot)?;
    let ranges = chunk_ranges(selection.len(), ctx.morsel_count(selection.len()));
    let chunks: Vec<Vec<usize>> = run_stealing(ctx, ranges.len(), |m| {
        let (start, end) = ranges[m];
        let mut out = Vec::new();
        for &row in &selection[start..end] {
            let keep = if mode == PredicateMode::Possible
                && coded.references_probabilistic(&tuples[row])
            {
                predicate
                    .eval_possible(schema, &tuples[row])
                    .unwrap_or(false)
            } else {
                coded.eval(snapshot, row)
            };
            if keep {
                out.push(row);
            }
        }
        out
    });
    Ok(chunks.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, TupleId, Value};
    use daisy_storage::{Candidate, Cell, Table};

    fn schema() -> Schema {
        Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap()
    }

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::from_values(TupleId::new(0), vec![Value::Int(9001), Value::from("LA")]),
            Tuple::from_values(TupleId::new(1), vec![Value::Int(10001), Value::from("NY")]),
            Tuple::from_cells(
                TupleId::new(2),
                vec![
                    Cell::probabilistic(vec![
                        Candidate::exact(Value::Int(9001), 0.5),
                        Candidate::exact(Value::Int(10001), 0.5),
                    ]),
                    Cell::Determinate(Value::from("SF")),
                ],
            ),
        ]
    }

    #[test]
    fn expected_mode_sees_only_most_probable_world() {
        let ctx = ExecContext::sequential();
        let out = filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::eq("zip", 9001),
            PredicateMode::Expected,
        )
        .unwrap();
        // The probabilistic tuple's most probable value is whichever
        // candidate wins the tie-break; the determinate 9001 tuple always
        // qualifies.
        assert!(out.iter().any(|t| t.id == TupleId::new(0)));
    }

    #[test]
    fn possible_mode_keeps_candidate_worlds() {
        let ctx = ExecContext::new(4);
        let out = filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::eq("zip", 9001),
            PredicateMode::Possible,
        )
        .unwrap();
        let ids: Vec<TupleId> = out.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![TupleId::new(0), TupleId::new(2)]);
    }

    #[test]
    fn true_predicate_returns_everything() {
        let ctx = ExecContext::sequential();
        let out = filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::True,
            PredicateMode::Expected,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let ctx = ExecContext::sequential();
        assert!(filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::eq("state", "CA"),
            PredicateMode::Expected,
        )
        .is_err());
    }

    fn table() -> Table {
        let mut table = Table::new("t", schema());
        for tuple in tuples() {
            table.push_cells(tuple.cells).unwrap();
        }
        table
    }

    /// The selection-vector kernel must agree with the row path on every
    /// predicate shape × mode × worker count, including the probabilistic
    /// fallback rows.
    #[test]
    fn selection_matches_row_filter_across_modes_and_workers() {
        use daisy_expr::ComparisonOp;

        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let predicates = [
            BoolExpr::True,
            BoolExpr::eq("zip", 9001),
            BoolExpr::eq("zip", 10001),
            BoolExpr::between("zip", 9000, 9500),
            BoolExpr::cmp("zip", ComparisonOp::Ge, 10000).or(BoolExpr::eq("city", "LA")),
            BoolExpr::Not(Box::new(BoolExpr::eq("city", "SF"))),
        ];
        for predicate in &predicates {
            for mode in [PredicateMode::Expected, PredicateMode::Possible] {
                let row = filter_tuples(
                    &ExecContext::sequential(),
                    table.schema(),
                    table.tuples(),
                    predicate,
                    mode,
                )
                .unwrap();
                let row_ids: Vec<TupleId> = row.iter().map(|t| t.id).collect();
                for workers in [1usize, 2, 4, 7] {
                    let ctx = ExecContext::new(workers);
                    let selection = filter_selection(
                        &ctx,
                        table.schema(),
                        table.tuples(),
                        &snapshot,
                        None,
                        predicate,
                        mode,
                    )
                    .unwrap();
                    let sel_ids: Vec<TupleId> = selection
                        .iter()
                        .map(|&pos| table.tuples()[pos].id)
                        .collect();
                    assert_eq!(
                        row_ids, sel_ids,
                        "`{predicate}` diverged under {mode:?} with {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn selection_narrows_an_input_selection() {
        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let ctx = ExecContext::sequential();
        // Restrict to rows {1, 2}: row 0 qualifies the predicate but is not
        // in the input selection and must stay excluded.
        let out = filter_selection(
            &ctx,
            table.schema(),
            table.tuples(),
            &snapshot,
            Some(&[1, 2]),
            &BoolExpr::eq("zip", 9001),
            PredicateMode::Possible,
        )
        .unwrap();
        assert_eq!(out, vec![2]);
        // A True predicate returns the input selection unchanged.
        let all = filter_selection(
            &ctx,
            table.schema(),
            table.tuples(),
            &snapshot,
            Some(&[0, 2]),
            &BoolExpr::True,
            PredicateMode::Expected,
        )
        .unwrap();
        assert_eq!(all, vec![0, 2]);
    }

    #[test]
    fn selection_rejects_misaligned_snapshot_and_unknown_columns() {
        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let ctx = ExecContext::sequential();
        let fewer = &table.tuples()[..2];
        assert!(filter_selection(
            &ctx,
            table.schema(),
            fewer,
            &snapshot,
            None,
            &BoolExpr::eq("zip", 9001),
            PredicateMode::Expected,
        )
        .is_err());
        assert!(filter_selection(
            &ctx,
            table.schema(),
            table.tuples(),
            &snapshot,
            None,
            &BoolExpr::eq("state", "CA"),
            PredicateMode::Expected,
        )
        .is_err());
    }
}
