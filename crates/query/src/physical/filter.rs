//! The select (filter) operator.

use daisy_common::{Result, Schema};
use daisy_exec::{par_map_chunks, ExecContext};
use daisy_expr::BoolExpr;
use daisy_storage::Tuple;

/// How predicates treat probabilistic cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateMode {
    /// Evaluate over the expected (most probable) value of each cell: the
    /// behaviour of a query engine that is unaware of candidate fixes.
    Expected,
    /// Possible-world semantics (§4): a tuple qualifies iff at least one
    /// candidate value of each referenced cell could satisfy the predicate.
    Possible,
}

/// Filters tuples by the predicate, preserving order and identity.
///
/// Errors from predicate evaluation (e.g. unknown columns) are surfaced
/// rather than silently dropping tuples.
pub fn filter_tuples(
    ctx: &ExecContext,
    schema: &Schema,
    tuples: &[Tuple],
    predicate: &BoolExpr,
    mode: PredicateMode,
) -> Result<Vec<Tuple>> {
    if matches!(predicate, BoolExpr::True) {
        return Ok(tuples.to_vec());
    }
    // Validate referenced columns once up front so per-tuple evaluation
    // errors cannot differ between partitions.
    for column in predicate.columns() {
        schema.index_of(&column)?;
    }
    let results: Vec<Tuple> = par_map_chunks(ctx, tuples, |chunk| {
        chunk
            .iter()
            .filter(|t| {
                let verdict = match mode {
                    PredicateMode::Expected => predicate.eval_expected(schema, t),
                    PredicateMode::Possible => predicate.eval_possible(schema, t),
                };
                verdict.unwrap_or(false)
            })
            .cloned()
            .collect()
    });
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, TupleId, Value};
    use daisy_storage::{Candidate, Cell};

    fn schema() -> Schema {
        Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap()
    }

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::from_values(TupleId::new(0), vec![Value::Int(9001), Value::from("LA")]),
            Tuple::from_values(TupleId::new(1), vec![Value::Int(10001), Value::from("NY")]),
            Tuple::from_cells(
                TupleId::new(2),
                vec![
                    Cell::probabilistic(vec![
                        Candidate::exact(Value::Int(9001), 0.5),
                        Candidate::exact(Value::Int(10001), 0.5),
                    ]),
                    Cell::Determinate(Value::from("SF")),
                ],
            ),
        ]
    }

    #[test]
    fn expected_mode_sees_only_most_probable_world() {
        let ctx = ExecContext::sequential();
        let out = filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::eq("zip", 9001),
            PredicateMode::Expected,
        )
        .unwrap();
        // The probabilistic tuple's most probable value is whichever
        // candidate wins the tie-break; the determinate 9001 tuple always
        // qualifies.
        assert!(out.iter().any(|t| t.id == TupleId::new(0)));
    }

    #[test]
    fn possible_mode_keeps_candidate_worlds() {
        let ctx = ExecContext::new(4);
        let out = filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::eq("zip", 9001),
            PredicateMode::Possible,
        )
        .unwrap();
        let ids: Vec<TupleId> = out.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![TupleId::new(0), TupleId::new(2)]);
    }

    #[test]
    fn true_predicate_returns_everything() {
        let ctx = ExecContext::sequential();
        let out = filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::True,
            PredicateMode::Expected,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let ctx = ExecContext::sequential();
        assert!(filter_tuples(
            &ctx,
            &schema(),
            &tuples(),
            &daisy_expr::BoolExpr::eq("state", "CA"),
            PredicateMode::Expected,
        )
        .is_err());
    }
}
