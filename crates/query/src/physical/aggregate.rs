//! The group-by / aggregation operator.

use std::collections::HashMap;
use std::sync::Arc;

use daisy_common::{DaisyError, DataType, Field, Result, Schema, TupleId, Value};
use daisy_exec::{par_group_by, ExecContext};
use daisy_storage::Tuple;

use crate::ast::AggregateFunc;

/// One aggregate to compute, with its output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub func: AggregateFunc,
    /// The aggregated input column; `None` only for `COUNT(*)`.
    pub column: Option<String>,
    /// Name of the output column.
    pub alias: String,
}

impl AggregateSpec {
    /// Builds a spec with the conventional `FUNC(column)` alias.
    pub fn new(func: AggregateFunc, column: Option<&str>) -> Self {
        let alias = match column {
            Some(c) => format!("{func}({c})"),
            None => format!("{func}(*)"),
        };
        AggregateSpec {
            func,
            column: column.map(str::to_string),
            alias,
        }
    }
}

/// Group-by aggregation over expected (most probable) values.
///
/// The output schema is the group-by columns followed by one column per
/// aggregate.  Output order is deterministic: groups are sorted by their key
/// values.  Cleaning happens *before* aggregation in Daisy plans (§4,
/// "for group-by queries, cleaning takes place before the aggregation"), so
/// this operator never needs to reason about candidate sets itself.
pub fn aggregate(
    ctx: &ExecContext,
    schema: &Schema,
    tuples: &[Tuple],
    group_by: &[String],
    aggregates: &[AggregateSpec],
) -> Result<(Arc<Schema>, Vec<Tuple>)> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggregates
        .iter()
        .map(|a| match &a.column {
            Some(c) => schema.index_of(c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_>>()?;

    // Output schema: group columns keep their type, aggregates are numeric
    // (COUNT is Int, AVG is Float, SUM/MIN/MAX inherit Float for safety on
    // mixed inputs — exact typing is refined below when possible).
    let mut fields: Vec<Field> = Vec::new();
    for (name, &idx) in group_by.iter().zip(&group_idx) {
        fields.push(Field::new(name.clone(), schema.field_at(idx)?.data_type));
    }
    for (spec, idx) in aggregates.iter().zip(&agg_idx) {
        let dt = match spec.func {
            AggregateFunc::Count => DataType::Int,
            AggregateFunc::Avg => DataType::Float,
            AggregateFunc::Sum | AggregateFunc::Min | AggregateFunc::Max => match idx {
                Some(i) => schema.field_at(*i)?.data_type,
                None => DataType::Int,
            },
        };
        fields.push(Field::new(spec.alias.clone(), dt));
    }
    let out_schema = Arc::new(Schema::new(fields)?);

    // Group rows by their group-key values.
    let keys: Vec<Vec<Value>> = tuples
        .iter()
        .map(|t| {
            group_idx
                .iter()
                .map(|&i| t.value(i))
                .collect::<Result<Vec<Value>>>()
        })
        .collect::<Result<_>>()?;
    let groups: HashMap<Vec<Value>, Vec<usize>> = if group_by.is_empty() {
        // A single global group (even over an empty input, so COUNT(*) = 0).
        let mut m = HashMap::new();
        m.insert(Vec::new(), (0..tuples.len()).collect());
        m
    } else {
        par_group_by(ctx, &keys, |k| k.clone())
    };

    // Deterministic group order.
    let mut ordered: Vec<(Vec<Value>, Vec<usize>)> = groups.into_iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = Vec::with_capacity(ordered.len());
    for (gid, (key, rows)) in ordered.into_iter().enumerate() {
        let mut values: Vec<Value> = key;
        for (spec, idx) in aggregates.iter().zip(&agg_idx) {
            values.push(eval_aggregate(spec, *idx, &rows, tuples)?);
        }
        out.push(Tuple::from_values(TupleId::new(gid as u64), values));
    }
    Ok((out_schema, out))
}

fn eval_aggregate(
    spec: &AggregateSpec,
    column: Option<usize>,
    rows: &[usize],
    tuples: &[Tuple],
) -> Result<Value> {
    match spec.func {
        AggregateFunc::Count => match column {
            None => Ok(Value::Int(rows.len() as i64)),
            Some(idx) => {
                let mut n = 0;
                for &r in rows {
                    if !tuples[r].value(idx)?.is_null() {
                        n += 1;
                    }
                }
                Ok(Value::Int(n))
            }
        },
        AggregateFunc::Sum | AggregateFunc::Avg => {
            let idx = column
                .ok_or_else(|| DaisyError::Plan(format!("{} requires a column", spec.func)))?;
            let mut sum = 0.0;
            let mut count = 0usize;
            let mut all_int = true;
            for &r in rows {
                let v = tuples[r].value(idx)?;
                if v.is_null() {
                    continue;
                }
                if !matches!(v, Value::Int(_)) {
                    all_int = false;
                }
                sum += v.as_float().ok_or_else(|| {
                    DaisyError::Type(format!("cannot aggregate non-numeric value {v}"))
                })?;
                count += 1;
            }
            match spec.func {
                AggregateFunc::Sum => {
                    if all_int {
                        Ok(Value::Int(sum as i64))
                    } else {
                        Ok(Value::Float(sum))
                    }
                }
                _ => {
                    if count == 0 {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Float(sum / count as f64))
                    }
                }
            }
        }
        AggregateFunc::Min | AggregateFunc::Max => {
            let idx = column
                .ok_or_else(|| DaisyError::Plan(format!("{} requires a column", spec.func)))?;
            let mut best: Option<Value> = None;
            for &r in rows {
                let v = tuples[r].value(idx)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best.take() {
                    None => v,
                    Some(b) => {
                        if spec.func == AggregateFunc::Min {
                            Value::min_of(b, v)
                        } else {
                            Value::max_of(b, v)
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("year", DataType::Int),
            ("co", DataType::Float),
            ("site", DataType::Str),
        ])
        .unwrap()
    }

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::from_values(
                TupleId::new(0),
                vec![Value::Int(2000), Value::Float(1.0), Value::from("a")],
            ),
            Tuple::from_values(
                TupleId::new(1),
                vec![Value::Int(2000), Value::Float(3.0), Value::from("b")],
            ),
            Tuple::from_values(
                TupleId::new(2),
                vec![Value::Int(2001), Value::Float(2.0), Value::from("a")],
            ),
            Tuple::from_values(
                TupleId::new(3),
                vec![Value::Int(2001), Value::Null, Value::from("a")],
            ),
        ]
    }

    #[test]
    fn group_by_with_multiple_aggregates() {
        let ctx = ExecContext::new(4);
        let (out_schema, out) = aggregate(
            &ctx,
            &schema(),
            &tuples(),
            &["year".to_string()],
            &[
                AggregateSpec::new(AggregateFunc::Avg, Some("co")),
                AggregateSpec::new(AggregateFunc::Count, None),
                AggregateSpec::new(AggregateFunc::Max, Some("co")),
            ],
        )
        .unwrap();
        assert_eq!(
            out_schema.names(),
            vec!["year", "AVG(co)", "COUNT(*)", "MAX(co)"]
        );
        assert_eq!(out.len(), 2);
        // Year 2000: avg 2.0 over two rows.
        assert_eq!(out[0].value(0).unwrap(), Value::Int(2000));
        assert_eq!(out[0].value(1).unwrap(), Value::Float(2.0));
        assert_eq!(out[0].value(2).unwrap(), Value::Int(2));
        // Year 2001: AVG ignores the NULL.
        assert_eq!(out[1].value(1).unwrap(), Value::Float(2.0));
        assert_eq!(out[1].value(3).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let ctx = ExecContext::sequential();
        let (out_schema, out) = aggregate(
            &ctx,
            &schema(),
            &tuples(),
            &[],
            &[
                AggregateSpec::new(AggregateFunc::Count, None),
                AggregateSpec::new(AggregateFunc::Sum, Some("co")),
                AggregateSpec::new(AggregateFunc::Min, Some("co")),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0).unwrap(), Value::Int(4));
        assert_eq!(out[0].value(1).unwrap(), Value::Float(6.0));
        assert_eq!(out[0].value(2).unwrap(), Value::Float(1.0));
        assert_eq!(out_schema.len(), 3);
    }

    #[test]
    fn empty_input_still_produces_global_row() {
        let ctx = ExecContext::sequential();
        let (_, out) = aggregate(
            &ctx,
            &schema(),
            &[],
            &[],
            &[AggregateSpec::new(AggregateFunc::Count, None)],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0).unwrap(), Value::Int(0));
    }

    #[test]
    fn count_column_skips_nulls_and_sum_of_ints_stays_int() {
        let ctx = ExecContext::sequential();
        let int_schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        let rows = vec![
            Tuple::from_values(TupleId::new(0), vec![Value::Int(1), Value::Int(10)]),
            Tuple::from_values(TupleId::new(1), vec![Value::Int(1), Value::Null]),
        ];
        let (_, out) = aggregate(
            &ctx,
            &int_schema,
            &rows,
            &["k".to_string()],
            &[
                AggregateSpec::new(AggregateFunc::Count, Some("v")),
                AggregateSpec::new(AggregateFunc::Sum, Some("v")),
            ],
        )
        .unwrap();
        assert_eq!(out[0].value(1).unwrap(), Value::Int(1));
        assert_eq!(out[0].value(2).unwrap(), Value::Int(10));
    }

    #[test]
    fn aggregating_strings_is_a_type_error() {
        let ctx = ExecContext::sequential();
        let err = aggregate(
            &ctx,
            &schema(),
            &tuples(),
            &[],
            &[AggregateSpec::new(AggregateFunc::Sum, Some("site"))],
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_columns_error() {
        let ctx = ExecContext::sequential();
        assert!(aggregate(
            &ctx,
            &schema(),
            &tuples(),
            &["nope".to_string()],
            &[AggregateSpec::new(AggregateFunc::Count, None)],
        )
        .is_err());
        assert!(aggregate(
            &ctx,
            &schema(),
            &tuples(),
            &[],
            &[AggregateSpec::new(AggregateFunc::Sum, Some("nope"))],
        )
        .is_err());
    }
}
