//! Physical operators.
//!
//! Every operator is a standalone function over `(Schema, &[Tuple])` so that
//! the cleaning-aware planner of `daisy-core` can interleave its own
//! operators (relaxation, cleaning, incremental join updates) between them.
//! Operators preserve tuple identity and lineage wherever possible.

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod project;

pub use aggregate::{aggregate, AggregateSpec};
pub use filter::{filter_selection, filter_tuples, PredicateMode};
pub use join::{hash_join, hash_join_coded, validate_join_keys, JoinOutput};
pub use project::project;
