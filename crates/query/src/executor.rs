//! Plan execution: a row path and a vectorized batch-at-a-time path.
//!
//! The row path walks the plan materialising `Vec<Tuple>` between
//! operators.  The vectorized path keeps scans and filters as
//! `(table, snapshot, selection)` batches — sorted position lists over the
//! table's columnar snapshot — and only materialises tuples at the final
//! `project`/`aggregate` (or at a join output).  Both paths produce
//! byte-identical results; [`QueryExecMode`] picks between them.

use std::sync::Arc;

use daisy_common::{QueryExecMode, Result, Schema};
use daisy_exec::ExecContext;
use daisy_storage::{ColumnSnapshot, Table, Tuple};

use crate::catalog::Catalog;
use crate::logical::LogicalPlan;
use crate::physical::{
    aggregate, filter_selection, filter_tuples, hash_join, hash_join_coded, project,
    validate_join_keys, PredicateMode,
};
use crate::result::QueryResult;

/// Executes a logical plan against the catalog.
///
/// `mode` controls how probabilistic cells interact with predicates: Daisy's
/// cleaned queries run with [`PredicateMode::Possible`] so that candidate
/// fixes keep tuples in play; the "dirty baseline" (what a cleaning-unaware
/// engine would return) runs with [`PredicateMode::Expected`].
///
/// The execution path honours the `DAISY_QUERY_EXEC` environment override
/// and otherwise vectorizes per scanned table whenever a current snapshot
/// is attached to the catalog; use [`execute_with`] to force a path.
pub fn execute(
    ctx: &ExecContext,
    catalog: &Catalog,
    plan: &LogicalPlan,
    mode: PredicateMode,
) -> Result<QueryResult> {
    execute_with(
        ctx,
        catalog,
        plan,
        mode,
        QueryExecMode::from_env().unwrap_or_default(),
    )
}

/// [`execute`] with an explicit execution path.
///
/// `Row` forces tuple-at-a-time execution; `Vectorized` forces the batch
/// path, building ad-hoc snapshots for tables without a current one; `Auto`
/// vectorizes exactly the scans whose catalog snapshot is current and keeps
/// the rest on the row path.  All three return byte-identical results.
pub fn execute_with(
    ctx: &ExecContext,
    catalog: &Catalog,
    plan: &LogicalPlan,
    mode: PredicateMode,
    exec: QueryExecMode,
) -> Result<QueryResult> {
    // Operator-construction validation: join keys are checked against the
    // schemas the plan will produce before anything runs.
    validate_plan(catalog, plan)?;
    let (schema, tuples) = match exec {
        QueryExecMode::Row => execute_node(ctx, catalog, plan, mode)?,
        QueryExecMode::Auto | QueryExecMode::Vectorized => {
            let forced = exec == QueryExecMode::Vectorized;
            execute_vectorized(ctx, catalog, plan, mode, forced)?.materialize()
        }
    };
    Ok(QueryResult::new(schema, tuples))
}

/// Walks the plan bottom-up validating every join's key columns against the
/// schema its inputs will produce — the typed, up-front counterpart of the
/// mid-stream lookups the operators themselves perform.  Returns the node's
/// output schema where statically known; `None` above aggregates (whose
/// output schema is computed at runtime — `LogicalPlan::from_query` never
/// places joins above them).
fn validate_plan(catalog: &Catalog, plan: &LogicalPlan) -> Result<Option<Arc<Schema>>> {
    match plan {
        LogicalPlan::Scan { table } => Ok(Some(Arc::new(
            catalog.table(table)?.schema().qualify(table),
        ))),
        LogicalPlan::Filter { input, .. } => validate_plan(catalog, input),
        LogicalPlan::Project { input, columns } => {
            let Some(schema) = validate_plan(catalog, input)? else {
                return Ok(None);
            };
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            Ok(Some(Arc::new(schema.project(&names)?)))
        }
        LogicalPlan::Aggregate { input, .. } => {
            validate_plan(catalog, input)?;
            Ok(None)
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let left_schema = validate_plan(catalog, left)?;
            let right_schema = validate_plan(catalog, right)?;
            let (Some(l), Some(r)) = (left_schema, right_schema) else {
                return Ok(None);
            };
            validate_join_keys(&l, &r, left_key, right_key)?;
            Ok(Some(Arc::new(l.join(&r)?)))
        }
    }
}

/// An intermediate result of the vectorized path.
enum Batch {
    /// Unmaterialized rows: `selection` is a sorted position list into
    /// `table`, whose current columnar snapshot is attached.  Filters
    /// narrow the selection without touching a tuple.
    Pending {
        table: Arc<Table>,
        snapshot: Arc<ColumnSnapshot>,
        schema: Arc<Schema>,
        selection: Vec<usize>,
    },
    /// Materialized rows (join outputs, row-path subtrees, final results).
    Rows {
        schema: Arc<Schema>,
        tuples: Vec<Tuple>,
    },
}

impl Batch {
    /// Clones out the selected tuples — exactly what the row path would
    /// have produced for the same subtree.
    fn materialize(self) -> (Arc<Schema>, Vec<Tuple>) {
        match self {
            Batch::Pending {
                table,
                schema,
                selection,
                ..
            } => (
                schema,
                selection
                    .iter()
                    .map(|&pos| table.tuples()[pos].clone())
                    .collect(),
            ),
            Batch::Rows { schema, tuples } => (schema, tuples),
        }
    }
}

fn execute_vectorized(
    ctx: &ExecContext,
    catalog: &Catalog,
    plan: &LogicalPlan,
    mode: PredicateMode,
    forced: bool,
) -> Result<Batch> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.shared(table)?;
            let schema = Arc::new(t.schema().qualify(table));
            let snapshot = match catalog.current_snapshot(table) {
                Some(snapshot) => Some(snapshot),
                None if forced => Some(Arc::new(ColumnSnapshot::build(&t)?)),
                None => None,
            };
            Ok(match snapshot {
                Some(snapshot) => Batch::Pending {
                    selection: (0..t.len()).collect(),
                    snapshot,
                    schema,
                    table: t,
                },
                None => Batch::Rows {
                    schema,
                    tuples: t.tuples().to_vec(),
                },
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            match execute_vectorized(ctx, catalog, input, mode, forced)? {
                Batch::Pending {
                    table,
                    snapshot,
                    schema,
                    selection,
                } => {
                    let selection = filter_selection(
                        ctx,
                        &schema,
                        table.tuples(),
                        &snapshot,
                        Some(&selection),
                        predicate,
                        mode,
                    )?;
                    Ok(Batch::Pending {
                        table,
                        snapshot,
                        schema,
                        selection,
                    })
                }
                Batch::Rows { schema, tuples } => {
                    let tuples = filter_tuples(ctx, &schema, &tuples, predicate, mode)?;
                    Ok(Batch::Rows { schema, tuples })
                }
            }
        }
        LogicalPlan::Project { input, columns } => {
            match execute_vectorized(ctx, catalog, input, mode, forced)? {
                Batch::Pending {
                    table,
                    schema,
                    selection,
                    ..
                } => {
                    // Late materialization: build output tuples straight
                    // from the selected base rows.
                    let names: Vec<&str> = columns.iter().map(String::as_str).collect();
                    let out_schema = Arc::new(schema.project(&names)?);
                    let indices: Vec<usize> = columns
                        .iter()
                        .map(|c| schema.index_of(c))
                        .collect::<Result<_>>()?;
                    let tuples: Vec<Tuple> = selection
                        .iter()
                        .map(|&pos| table.tuples()[pos].project(&indices))
                        .collect::<Result<_>>()?;
                    Ok(Batch::Rows {
                        schema: out_schema,
                        tuples,
                    })
                }
                Batch::Rows { schema, tuples } => {
                    let (schema, tuples) = project(&schema, &tuples, columns)?;
                    Ok(Batch::Rows { schema, tuples })
                }
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let (schema, tuples) =
                execute_vectorized(ctx, catalog, input, mode, forced)?.materialize();
            let (schema, tuples) = aggregate(ctx, &schema, &tuples, group_by, aggregates)?;
            Ok(Batch::Rows { schema, tuples })
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let left_batch = execute_vectorized(ctx, catalog, left, mode, forced)?;
            let right_batch = execute_vectorized(ctx, catalog, right, mode, forced)?;
            let out = match right_batch {
                Batch::Pending {
                    table: right_table,
                    snapshot: right_snapshot,
                    schema: right_schema,
                    selection: right_selection,
                } => {
                    // Code-keyed join; the left side probes unmaterialized
                    // when it is still a pending selection.
                    let (left_schema, left_tuples, left_selection) = match &left_batch {
                        Batch::Pending {
                            table,
                            schema,
                            selection,
                            ..
                        } => (
                            Arc::clone(schema),
                            table.tuples(),
                            Some(selection.as_slice()),
                        ),
                        Batch::Rows { schema, tuples } => {
                            (Arc::clone(schema), tuples.as_slice(), None)
                        }
                    };
                    hash_join_coded(
                        ctx,
                        &left_schema,
                        left_tuples,
                        left_selection,
                        &right_schema,
                        right_table.tuples(),
                        Some(&right_selection),
                        &right_snapshot,
                        left_key,
                        right_key,
                    )?
                }
                Batch::Rows {
                    schema: right_schema,
                    tuples: right_tuples,
                } => {
                    let (left_schema, left_tuples) = left_batch.materialize();
                    hash_join(
                        ctx,
                        &left_schema,
                        &left_tuples,
                        &right_schema,
                        &right_tuples,
                        left_key,
                        right_key,
                    )?
                }
            };
            Ok(Batch::Rows {
                schema: out.schema,
                tuples: out.tuples,
            })
        }
    }
}

fn execute_node(
    ctx: &ExecContext,
    catalog: &Catalog,
    plan: &LogicalPlan,
    mode: PredicateMode,
) -> Result<(Arc<Schema>, Vec<Tuple>)> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.table(table)?;
            // Qualify the schema with the table name so joined schemas are
            // unambiguous while unqualified lookups still resolve.
            let schema = Arc::new(t.schema().qualify(table));
            Ok((schema, t.tuples().to_vec()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let (schema, tuples) = execute_node(ctx, catalog, input, mode)?;
            let filtered = filter_tuples(ctx, &schema, &tuples, predicate, mode)?;
            Ok((schema, filtered))
        }
        LogicalPlan::Project { input, columns } => {
            let (schema, tuples) = execute_node(ctx, catalog, input, mode)?;
            project(&schema, &tuples, columns)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let (schema, tuples) = execute_node(ctx, catalog, input, mode)?;
            aggregate(ctx, &schema, &tuples, group_by, aggregates)
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let (left_schema, left_tuples) = execute_node(ctx, catalog, left, mode)?;
            let (right_schema, right_tuples) = execute_node(ctx, catalog, right, mode)?;
            let out = hash_join(
                ctx,
                &left_schema,
                &left_tuples,
                &right_schema,
                &right_tuples,
                left_key,
                right_key,
            )?;
            Ok((out.schema, out.tuples))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use daisy_common::{DataType, Value};
    use daisy_storage::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let cities = Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap();
        let employees = Table::from_rows(
            "employees",
            Schema::from_pairs(&[("zip", DataType::Int), ("name", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Peter")],
                vec![Value::Int(10001), Value::from("Mary")],
                vec![Value::Int(10002), Value::from("Jon")],
            ],
        )
        .unwrap();
        cat.add(cities);
        cat.add(employees);
        cat
    }

    fn run(sql: &str) -> QueryResult {
        let cat = catalog();
        let ctx = ExecContext::sequential();
        let q = parse_query(sql).unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        execute(&ctx, &cat, &plan, PredicateMode::Expected).unwrap()
    }

    #[test]
    fn sp_query_end_to_end() {
        let result = run("SELECT zip FROM cities WHERE city = 'Los Angeles'");
        assert_eq!(result.len(), 1);
        assert_eq!(result.column("zip").unwrap(), vec![Value::Int(9001)]);
    }

    #[test]
    fn spj_query_end_to_end() {
        let result = run("SELECT cities.zip, employees.name FROM cities \
             JOIN employees ON cities.zip = employees.zip \
             WHERE city = 'Los Angeles'");
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.column("employees.name").unwrap(),
            vec![Value::from("Peter")]
        );
    }

    #[test]
    fn aggregate_query_end_to_end() {
        let result = run("SELECT zip, COUNT(*) FROM cities GROUP BY zip");
        assert_eq!(result.len(), 2);
        assert_eq!(
            result.column("COUNT(*)").unwrap(),
            vec![Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn range_query_end_to_end() {
        let result = run("SELECT * FROM employees WHERE zip >= 10001 AND zip <= 10002");
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let cat = catalog();
        let ctx = ExecContext::sequential();
        let q = parse_query("SELECT * FROM nope").unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        assert!(execute(&ctx, &cat, &plan, PredicateMode::Expected).is_err());
    }

    /// Renders a result for byte-level comparison between execution paths:
    /// schema column names plus every tuple's id, lineage and cells.
    fn dump(result: &QueryResult) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for field in result.schema.fields() {
            writeln!(out, "col {field}").unwrap();
        }
        for tuple in &result.tuples {
            writeln!(out, "{:?} {:?} {:?}", tuple.id, tuple.lineage, tuple.cells).unwrap();
        }
        out
    }

    /// Every SQL fixture must return byte-identical results on the row path
    /// and the vectorized path — with snapshots attached (Auto vectorizes)
    /// and without (Vectorized builds ad-hoc snapshots) — across predicate
    /// modes and worker counts.
    #[test]
    fn vectorized_path_matches_row_path_on_sql_fixtures() {
        let queries = [
            "SELECT zip FROM cities WHERE city = 'Los Angeles'",
            "SELECT * FROM employees WHERE zip >= 10001 AND zip <= 10002",
            "SELECT cities.zip, employees.name FROM cities \
             JOIN employees ON cities.zip = employees.zip \
             WHERE city = 'Los Angeles'",
            "SELECT cities.zip, employees.name FROM cities \
             JOIN employees ON cities.zip = employees.zip",
            "SELECT zip, COUNT(*) FROM cities GROUP BY zip",
        ];
        for attach_snapshots in [false, true] {
            let mut cat = catalog();
            if attach_snapshots {
                cat.refresh_snapshot("cities").unwrap();
                cat.refresh_snapshot("employees").unwrap();
            }
            for sql in &queries {
                let q = parse_query(sql).unwrap();
                let plan = LogicalPlan::from_query(&q).unwrap();
                for mode in [PredicateMode::Expected, PredicateMode::Possible] {
                    let row = execute_with(
                        &ExecContext::sequential(),
                        &cat,
                        &plan,
                        mode,
                        QueryExecMode::Row,
                    )
                    .unwrap();
                    for workers in [1usize, 2, 4, 7] {
                        let ctx = ExecContext::new(workers);
                        for exec in [QueryExecMode::Auto, QueryExecMode::Vectorized] {
                            let vec = execute_with(&ctx, &cat, &plan, mode, exec).unwrap();
                            assert_eq!(
                                dump(&row),
                                dump(&vec),
                                "`{sql}` diverged ({mode:?}, {exec}, {workers} workers, \
                                 snapshots={attach_snapshots})"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Join-key validation happens at plan validation — before any operator
    /// runs — and raises the typed error on every execution path.
    #[test]
    fn unknown_join_key_is_a_typed_plan_error_on_all_paths() {
        let cat = catalog();
        let ctx = ExecContext::sequential();
        let q = parse_query(
            "SELECT cities.zip FROM cities JOIN employees ON cities.zip = employees.postcode",
        )
        .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        for exec in [
            QueryExecMode::Row,
            QueryExecMode::Auto,
            QueryExecMode::Vectorized,
        ] {
            let err = execute_with(&ctx, &cat, &plan, PredicateMode::Possible, exec).unwrap_err();
            match err {
                daisy_common::DaisyError::UnknownJoinColumn { side, column } => {
                    assert_eq!(side, "right");
                    assert_eq!(column, "employees.postcode");
                }
                other => panic!("expected UnknownJoinColumn, got {other:?}"),
            }
        }
    }
}
