//! Plan execution.

use std::sync::Arc;

use daisy_common::{Result, Schema};
use daisy_exec::ExecContext;
use daisy_storage::Tuple;

use crate::catalog::Catalog;
use crate::logical::LogicalPlan;
use crate::physical::{aggregate, filter_tuples, hash_join, project, PredicateMode};
use crate::result::QueryResult;

/// Executes a logical plan against the catalog.
///
/// `mode` controls how probabilistic cells interact with predicates: Daisy's
/// cleaned queries run with [`PredicateMode::Possible`] so that candidate
/// fixes keep tuples in play; the "dirty baseline" (what a cleaning-unaware
/// engine would return) runs with [`PredicateMode::Expected`].
pub fn execute(
    ctx: &ExecContext,
    catalog: &Catalog,
    plan: &LogicalPlan,
    mode: PredicateMode,
) -> Result<QueryResult> {
    let (schema, tuples) = execute_node(ctx, catalog, plan, mode)?;
    Ok(QueryResult::new(schema, tuples))
}

fn execute_node(
    ctx: &ExecContext,
    catalog: &Catalog,
    plan: &LogicalPlan,
    mode: PredicateMode,
) -> Result<(Arc<Schema>, Vec<Tuple>)> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.table(table)?;
            // Qualify the schema with the table name so joined schemas are
            // unambiguous while unqualified lookups still resolve.
            let schema = Arc::new(t.schema().qualify(table));
            Ok((schema, t.tuples().to_vec()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let (schema, tuples) = execute_node(ctx, catalog, input, mode)?;
            let filtered = filter_tuples(ctx, &schema, &tuples, predicate, mode)?;
            Ok((schema, filtered))
        }
        LogicalPlan::Project { input, columns } => {
            let (schema, tuples) = execute_node(ctx, catalog, input, mode)?;
            project(&schema, &tuples, columns)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let (schema, tuples) = execute_node(ctx, catalog, input, mode)?;
            aggregate(ctx, &schema, &tuples, group_by, aggregates)
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let (left_schema, left_tuples) = execute_node(ctx, catalog, left, mode)?;
            let (right_schema, right_tuples) = execute_node(ctx, catalog, right, mode)?;
            let out = hash_join(
                ctx,
                &left_schema,
                &left_tuples,
                &right_schema,
                &right_tuples,
                left_key,
                right_key,
            )?;
            Ok((out.schema, out.tuples))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use daisy_common::{DataType, Value};
    use daisy_storage::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let cities = Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap();
        let employees = Table::from_rows(
            "employees",
            Schema::from_pairs(&[("zip", DataType::Int), ("name", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Peter")],
                vec![Value::Int(10001), Value::from("Mary")],
                vec![Value::Int(10002), Value::from("Jon")],
            ],
        )
        .unwrap();
        cat.add(cities);
        cat.add(employees);
        cat
    }

    fn run(sql: &str) -> QueryResult {
        let cat = catalog();
        let ctx = ExecContext::sequential();
        let q = parse_query(sql).unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        execute(&ctx, &cat, &plan, PredicateMode::Expected).unwrap()
    }

    #[test]
    fn sp_query_end_to_end() {
        let result = run("SELECT zip FROM cities WHERE city = 'Los Angeles'");
        assert_eq!(result.len(), 1);
        assert_eq!(result.column("zip").unwrap(), vec![Value::Int(9001)]);
    }

    #[test]
    fn spj_query_end_to_end() {
        let result = run("SELECT cities.zip, employees.name FROM cities \
             JOIN employees ON cities.zip = employees.zip \
             WHERE city = 'Los Angeles'");
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.column("employees.name").unwrap(),
            vec![Value::from("Peter")]
        );
    }

    #[test]
    fn aggregate_query_end_to_end() {
        let result = run("SELECT zip, COUNT(*) FROM cities GROUP BY zip");
        assert_eq!(result.len(), 2);
        assert_eq!(
            result.column("COUNT(*)").unwrap(),
            vec![Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn range_query_end_to_end() {
        let result = run("SELECT * FROM employees WHERE zip >= 10001 AND zip <= 10002");
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let cat = catalog();
        let ctx = ExecContext::sequential();
        let q = parse_query("SELECT * FROM nope").unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        assert!(execute(&ctx, &cat, &plan, PredicateMode::Expected).is_err());
    }
}
