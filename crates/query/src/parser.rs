//! A hand-written parser for the paper's query template.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! query     := SELECT select_list FROM ident join* where? group_by?
//! select_list := '*' | item (',' item)*
//! item      := ident | func '(' (ident | '*') ')'
//! join      := JOIN ident ON ident '=' ident
//! where     := WHERE disjunction
//! disjunction := conjunction (OR conjunction)*
//! conjunction := comparison (AND comparison)*
//! comparison  := ident op literal | literal op ident | '(' disjunction ')'
//! group_by  := GROUP BY ident (',' ident)*
//! literal   := number | 'string'
//! ```

use daisy_common::{DaisyError, Result, Value};
use daisy_expr::{BoolExpr, ComparisonOp, ScalarExpr};

use crate::ast::{AggregateFunc, JoinSpec, Query, SelectItem};

/// Parses a query string into a [`Query`].
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    if parser.pos != parser.tokens.len() {
        return Err(DaisyError::Parse(format!(
            "unexpected trailing input near `{}`",
            parser.peek_text()
        )));
    }
    Ok(query)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(String),
}

impl Token {
    fn text(&self) -> &str {
        match self {
            Token::Ident(s) | Token::Number(s) | Token::Str(s) | Token::Symbol(s) => s,
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' {
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '\'' {
                s.push(chars[i]);
                i += 1;
            }
            if i == chars.len() {
                return Err(DaisyError::Parse("unterminated string literal".into()));
            }
            i += 1;
            tokens.push(Token::Str(s));
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let mut s = String::new();
            s.push(c);
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                s.push(chars[i]);
                i += 1;
            }
            tokens.push(Token::Number(s));
        } else if c.is_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                s.push(chars[i]);
                i += 1;
            }
            tokens.push(Token::Ident(s));
        } else {
            // Multi-character operators.
            let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if ["<=", ">=", "!=", "<>"].contains(&two.as_str()) {
                tokens.push(Token::Symbol(two));
                i += 2;
            } else if "(),*=<>".contains(c) {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            } else {
                return Err(DaisyError::Parse(format!("unexpected character `{c}`")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> String {
        self.peek()
            .map(|t| t.text().to_string())
            .unwrap_or_default()
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.peek_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DaisyError::Parse(format!(
                "expected keyword `{kw}`, found `{}`",
                self.peek_text()
            )))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        match self.peek() {
            Some(Token::Symbol(s)) if s == sym => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(DaisyError::Parse(format!(
                "expected `{sym}`, found `{}`",
                self.peek_text()
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(DaisyError::Parse(format!(
                "expected identifier, found `{}`",
                other.map(|t| t.text().to_string()).unwrap_or_default()
            ))),
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.expect_ident()?;
        let mut joins = Vec::new();
        while self.peek_keyword("JOIN") {
            self.pos += 1;
            let table = self.expect_ident()?;
            self.expect_keyword("ON")?;
            let left_key = self.expect_ident()?;
            self.expect_symbol("=")?;
            let right_key = self.expect_ident()?;
            joins.push(JoinSpec {
                table,
                left_key,
                right_key,
            });
        }
        let filter = if self.peek_keyword("WHERE") {
            self.pos += 1;
            self.parse_disjunction()?
        } else {
            BoolExpr::True
        };
        let group_by = if self.peek_keyword("GROUP") {
            self.pos += 1;
            self.expect_keyword("BY")?;
            let mut cols = vec![self.expect_ident()?];
            while matches!(self.peek(), Some(Token::Symbol(s)) if s == ",") {
                self.pos += 1;
                cols.push(self.expect_ident()?);
            }
            cols
        } else {
            Vec::new()
        };
        Ok(Query {
            select,
            from,
            joins,
            filter,
            group_by,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = vec![self.parse_select_item()?];
        while matches!(self.peek(), Some(Token::Symbol(s)) if s == ",") {
            self.pos += 1;
            items.push(self.parse_select_item()?);
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == "*") {
            self.pos += 1;
            return Ok(SelectItem::Wildcard);
        }
        let name = self.expect_ident()?;
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == "(") {
            let func = AggregateFunc::parse(&name)
                .ok_or_else(|| DaisyError::Parse(format!("unknown aggregate `{name}`")))?;
            self.pos += 1;
            let column = if matches!(self.peek(), Some(Token::Symbol(s)) if s == "*") {
                self.pos += 1;
                None
            } else {
                Some(self.expect_ident()?)
            };
            self.expect_symbol(")")?;
            if column.is_none() && func != AggregateFunc::Count {
                return Err(DaisyError::Parse(format!("{func}(*) is not supported")));
            }
            Ok(SelectItem::Aggregate { func, column })
        } else {
            Ok(SelectItem::Column(name))
        }
    }

    fn parse_disjunction(&mut self) -> Result<BoolExpr> {
        let mut expr = self.parse_conjunction()?;
        while self.peek_keyword("OR") {
            self.pos += 1;
            let rhs = self.parse_conjunction()?;
            expr = expr.or(rhs);
        }
        Ok(expr)
    }

    fn parse_conjunction(&mut self) -> Result<BoolExpr> {
        let mut expr = self.parse_comparison()?;
        while self.peek_keyword("AND") {
            self.pos += 1;
            let rhs = self.parse_comparison()?;
            expr = expr.and(rhs);
        }
        Ok(expr)
    }

    fn parse_comparison(&mut self) -> Result<BoolExpr> {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == "(") {
            self.pos += 1;
            let inner = self.parse_disjunction()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        let left = self.parse_scalar()?;
        let op_text = match self.next() {
            Some(Token::Symbol(s)) => s,
            other => {
                return Err(DaisyError::Parse(format!(
                    "expected comparison operator, found `{}`",
                    other.map(|t| t.text().to_string()).unwrap_or_default()
                )))
            }
        };
        let op = ComparisonOp::parse(&op_text)
            .ok_or_else(|| DaisyError::Parse(format!("unknown operator `{op_text}`")))?;
        let right = self.parse_scalar()?;
        Ok(BoolExpr::Compare { left, op, right })
    }

    fn parse_scalar(&mut self) -> Result<ScalarExpr> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(ScalarExpr::Column(s)),
            Some(Token::Number(s)) => {
                if s.contains('.') {
                    s.parse::<f64>()
                        .map(|f| ScalarExpr::Literal(Value::Float(f)))
                        .map_err(|_| DaisyError::Parse(format!("invalid number `{s}`")))
                } else {
                    s.parse::<i64>()
                        .map(|i| ScalarExpr::Literal(Value::Int(i)))
                        .map_err(|_| DaisyError::Parse(format!("invalid number `{s}`")))
                }
            }
            Some(Token::Str(s)) => Ok(ScalarExpr::Literal(Value::Str(s))),
            other => Err(DaisyError::Parse(format!(
                "expected column or literal, found `{}`",
                other.map(|t| t.text().to_string()).unwrap_or_default()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_sp_query() {
        let q = parse_query("SELECT zip FROM cities WHERE city = 'Los Angeles'").unwrap();
        assert_eq!(q.from, "cities");
        assert_eq!(q.select, vec![SelectItem::Column("zip".into())]);
        assert_eq!(q.filter, BoolExpr::eq("city", "Los Angeles"));
        assert!(q.joins.is_empty());
        assert!(q.group_by.is_empty());
    }

    #[test]
    fn parses_range_filters_and_boolean_connectives() {
        let q = parse_query(
            "SELECT * FROM lineorder WHERE orderkey >= 10 AND orderkey <= 20 OR suppkey = 5",
        )
        .unwrap();
        // AND binds tighter than OR.
        match q.filter {
            BoolExpr::Or(_, _) => {}
            other => panic!("expected OR at the top, got {other}"),
        }
    }

    #[test]
    fn parses_parenthesised_predicates() {
        let q = parse_query("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)").unwrap();
        match q.filter {
            BoolExpr::And(_, rhs) => assert!(matches!(*rhs, BoolExpr::Or(_, _))),
            other => panic!("expected AND at the top, got {other}"),
        }
    }

    #[test]
    fn parses_joins_and_group_by() {
        let q = parse_query(
            "SELECT supplier.name, SUM(lineorder.revenue) FROM lineorder \
             JOIN supplier ON lineorder.suppkey = supplier.suppkey \
             WHERE lineorder.orderkey < 100 GROUP BY supplier.name",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].table, "supplier");
        assert_eq!(q.joins[0].left_key, "lineorder.suppkey");
        assert_eq!(q.group_by, vec!["supplier.name".to_string()]);
        assert!(q.is_aggregate());
    }

    #[test]
    fn parses_aggregates_including_count_star() {
        let q = parse_query("SELECT COUNT(*), AVG(co) FROM air GROUP BY year").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(
            q.select[0],
            SelectItem::Aggregate {
                func: AggregateFunc::Count,
                column: None
            }
        );
        assert!(parse_query("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn parses_float_and_negative_literals() {
        let q = parse_query("SELECT * FROM t WHERE tax > 0.25 AND delta >= -3").unwrap();
        let cols = q.filter.columns();
        assert!(cols.contains("tax") && cols.contains("delta"));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT * FROM t WHERE").is_err());
        assert!(parse_query("SELECT * FROM t WHERE a ~ 3").is_err());
        assert!(parse_query("SELECT * FROM t WHERE a = 'unterminated").is_err());
        assert!(parse_query("SELECT * FROM t GROUP year").is_err());
        assert!(parse_query("SELECT * FROM t extra garbage").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("select zip from cities where zip = 9001 group by zip").unwrap();
        assert_eq!(q.group_by, vec!["zip".to_string()]);
    }
}
