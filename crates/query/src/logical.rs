//! Logical query plans.

use std::fmt;

use daisy_common::{DaisyError, Result};
use daisy_expr::BoolExpr;

use crate::ast::{AggregateFunc, Query, SelectItem};
use crate::physical::AggregateSpec;

/// A logical plan node for the paper's query template (flat SPJ + group-by
/// queries).  The cleaning operators of `daisy-core` are woven between these
/// nodes by the cleaning-aware planner; the plain plan here corresponds to
/// running a query over the data as-is.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter the input by a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: BoolExpr,
    },
    /// Equi-join two plans.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join key on the left schema.
        left_key: String,
        /// Join key on the right schema.
        right_key: String,
    },
    /// Project onto named columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output columns (in order).
        columns: Vec<String>,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggregates: Vec<AggregateSpec>,
    },
}

impl LogicalPlan {
    /// Builds the canonical plan for a parsed [`Query`]:
    ///
    /// ```text
    /// Scan → Filter → (Join …)* → [Aggregate] → [Project]
    /// ```
    ///
    /// The filter is placed directly above the driving table's scan (the
    /// paper's queries filter the driving table; predicates over joined
    /// tables still work because filters evaluate over the joined schema if
    /// pushed later — here we keep the paper's shape and apply the filter
    /// before joins when it only references the driving table, after joins
    /// otherwise).
    pub fn from_query(query: &Query) -> Result<LogicalPlan> {
        let mut plan = LogicalPlan::Scan {
            table: query.from.clone(),
        };

        // Decide where the WHERE clause goes: before the joins when it only
        // references the driving table's (unqualified or self-qualified)
        // columns, otherwise after all joins.
        let filter_refs = query.filter.columns();
        let references_joined_table = query.joins.iter().any(|j| {
            filter_refs
                .iter()
                .any(|c| c.starts_with(&format!("{}.", j.table)))
        });
        let filter_early = !references_joined_table && query.filter != BoolExpr::True;
        if filter_early {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: query.filter.clone(),
            };
        }
        for join in &query.joins {
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::Scan {
                    table: join.table.clone(),
                }),
                left_key: join.left_key.clone(),
                right_key: join.right_key.clone(),
            };
        }
        if !filter_early && query.filter != BoolExpr::True {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: query.filter.clone(),
            };
        }

        if query.is_aggregate() {
            let mut aggregates = Vec::new();
            let mut group_by = query.group_by.clone();
            for item in &query.select {
                match item {
                    SelectItem::Aggregate { func, column } => {
                        aggregates.push(AggregateSpec::new(*func, column.as_deref()));
                    }
                    SelectItem::Column(c) => {
                        if !group_by.contains(c) {
                            // A bare column in an aggregate query must be a
                            // grouping column (SQL would reject it; we add it
                            // for convenience).
                            group_by.push(c.clone());
                        }
                    }
                    SelectItem::Wildcard => {
                        return Err(DaisyError::Plan(
                            "SELECT * cannot be combined with GROUP BY".into(),
                        ))
                    }
                }
            }
            if aggregates.is_empty() {
                aggregates.push(AggregateSpec::new(AggregateFunc::Count, None));
            }
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by,
                aggregates,
            };
        } else {
            let columns: Vec<String> = query
                .select
                .iter()
                .filter_map(|item| match item {
                    SelectItem::Column(c) => Some(c.clone()),
                    _ => None,
                })
                .collect();
            let is_wildcard = query
                .select
                .iter()
                .any(|item| matches!(item, SelectItem::Wildcard));
            if !is_wildcard && !columns.is_empty() {
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    columns,
                };
            }
        }
        Ok(plan)
    }

    /// The base tables referenced by the plan, in scan order.
    pub fn tables(&self) -> Vec<&str> {
        match self {
            LogicalPlan::Scan { table } => vec![table.as_str()],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.tables(),
            LogicalPlan::Join { left, right, .. } => {
                let mut t = left.tables();
                t.extend(right.tables());
                t
            }
        }
    }

    /// Pretty-prints the plan as an indented tree.
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table } => out.push_str(&format!("{pad}Scan {table}\n")),
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Project { input, columns } => {
                out.push_str(&format!("{pad}Project [{}]\n", columns.join(", ")));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let aggs: Vec<&str> = aggregates.iter().map(|a| a.alias.as_str()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate group_by=[{}] aggs=[{}]\n",
                    group_by.join(", "),
                    aggs.join(", ")
                ));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                out.push_str(&format!("{pad}Join {left_key} = {right_key}\n"));
                left.fmt_indent(out, depth + 1);
                right.fmt_indent(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn sp_query_plan_shape() {
        let q = parse_query("SELECT zip FROM cities WHERE city = 'LA'").unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        match &plan {
            LogicalPlan::Project { input, columns } => {
                assert_eq!(columns, &vec!["zip".to_string()]);
                assert!(matches!(**input, LogicalPlan::Filter { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
        assert_eq!(plan.tables(), vec!["cities"]);
    }

    #[test]
    fn join_query_filters_driving_table_early() {
        let q = parse_query(
            "SELECT * FROM lineorder JOIN supplier ON lineorder.suppkey = supplier.suppkey \
             WHERE orderkey < 100",
        )
        .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        // Join at the top, filter below it on the lineorder side.
        match &plan {
            LogicalPlan::Join { left, .. } => {
                assert!(matches!(**left, LogicalPlan::Filter { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
        assert_eq!(plan.tables(), vec!["lineorder", "supplier"]);
    }

    #[test]
    fn filter_referencing_joined_table_is_applied_late() {
        let q = parse_query(
            "SELECT * FROM lineorder JOIN supplier ON lineorder.suppkey = supplier.suppkey \
             WHERE supplier.address = 'x'",
        )
        .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        assert!(matches!(plan, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn aggregate_query_plan_collects_group_columns() {
        let q =
            parse_query("SELECT year, AVG(co) FROM air WHERE county = 5 GROUP BY year").unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        match &plan {
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                assert_eq!(group_by, &vec!["year".to_string()]);
                assert_eq!(aggregates.len(), 1);
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn wildcard_with_group_by_is_rejected() {
        let q = parse_query("SELECT * FROM t GROUP BY a").unwrap();
        assert!(LogicalPlan::from_query(&q).is_err());
    }

    #[test]
    fn display_shows_tree() {
        let q = parse_query("SELECT zip FROM cities WHERE city = 'LA'").unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let text = plan.to_string();
        assert!(text.contains("Project"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan cities"));
    }
}
