//! Query-workload generators.
//!
//! The paper's workloads are sequences of non-overlapping SP range queries
//! of a fixed selectivity (2% for Figs. 5, 6, 9), equality/range queries
//! with random selectivities (Fig. 7), SPJ workloads joining lineorder with
//! supplier (Fig. 11), mixed SP+SPJ workloads (Fig. 12), the SSB-style
//! Q1/Q2/Q3 chain (Fig. 13) and exploratory group-by workloads (Table 8).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use daisy_common::{Result, Value};
use daisy_expr::BoolExpr;
use daisy_query::Query;
use daisy_storage::Table;

/// A named sequence of queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// The queries, in execution order.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Builds `count` non-overlapping range queries over `column` of `table`,
/// each selecting roughly `selectivity` of the rows.  Together the queries
/// cover the whole value domain (the paper's "the workload accesses the
/// whole dataset").
pub fn non_overlapping_range_queries(
    table: &Table,
    column: &str,
    count: usize,
    select_columns: &[&str],
) -> Result<Workload> {
    let idx = table.column_index(column)?;
    let mut values: Vec<Value> = table
        .tuples()
        .iter()
        .map(|t| t.value(idx))
        .collect::<Result<_>>()?;
    values.sort();
    let n = values.len();
    let mut queries = Vec::with_capacity(count);
    for i in 0..count {
        let lo_pos = i * n / count;
        let hi_pos = (((i + 1) * n / count).saturating_sub(1)).max(lo_pos);
        let lo = values[lo_pos].clone();
        let hi = values[hi_pos].clone();
        let filter = BoolExpr::Compare {
            left: daisy_expr::ScalarExpr::col(column),
            op: daisy_expr::ComparisonOp::Ge,
            right: daisy_expr::ScalarExpr::Literal(lo),
        }
        .and(BoolExpr::Compare {
            left: daisy_expr::ScalarExpr::col(column),
            op: daisy_expr::ComparisonOp::Le,
            right: daisy_expr::ScalarExpr::Literal(hi),
        });
        queries.push(
            Query::scan(table.name())
                .with_columns(select_columns)
                .with_filter(filter),
        );
    }
    Ok(Workload {
        name: format!("{count} non-overlapping ranges over {column}"),
        queries,
    })
}

/// Builds `count` queries with random selectivities mixing equality and
/// range conditions over `column` (the Fig. 7 / Fig. 12 workload shape).
pub fn random_selectivity_queries(
    table: &Table,
    column: &str,
    count: usize,
    select_columns: &[&str],
    seed: u64,
) -> Result<Workload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = table.column_index(column)?;
    let mut values: Vec<Value> = table
        .tuples()
        .iter()
        .map(|t| t.value(idx))
        .collect::<Result<_>>()?;
    values.sort();
    values.dedup();
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        let filter = if rng.gen_bool(0.3) {
            let v = values[rng.gen_range(0..values.len())].clone();
            BoolExpr::Compare {
                left: daisy_expr::ScalarExpr::col(column),
                op: daisy_expr::ComparisonOp::Eq,
                right: daisy_expr::ScalarExpr::Literal(v),
            }
        } else {
            let a = rng.gen_range(0..values.len());
            let width = rng.gen_range(1..(values.len() / 4).max(2));
            let b = (a + width).min(values.len() - 1);
            BoolExpr::between(column, values[a].clone(), values[b].clone())
        };
        queries.push(
            Query::scan(table.name())
                .with_columns(select_columns)
                .with_filter(filter),
        );
    }
    Ok(Workload {
        name: format!("{count} random-selectivity queries over {column}"),
        queries,
    })
}

/// Turns an SP workload into an SPJ workload by joining every query with a
/// dimension table (the Fig. 11 shape: filter lineorder, join supplier).
///
/// Unqualified column references of the SP queries are qualified with their
/// driving table so they stay unambiguous once the dimension table's columns
/// enter the joined schema (e.g. `suppkey` exists in both lineorder and
/// supplier).
pub fn join_workload(
    base: &Workload,
    dimension: &str,
    left_key: &str,
    right_key: &str,
) -> Workload {
    Workload {
        name: format!("{} ⋈ {dimension}", base.name),
        queries: base
            .queries
            .iter()
            .map(|q| {
                let driving = q.from.clone();
                let mut joined = q.clone().join(dimension, left_key, right_key);
                joined.select = joined
                    .select
                    .into_iter()
                    .map(|item| match item {
                        daisy_query::SelectItem::Column(c) if !c.contains('.') => {
                            daisy_query::SelectItem::Column(format!("{driving}.{c}"))
                        }
                        other => other,
                    })
                    .collect();
                joined.filter = qualify_filter(joined.filter, &driving);
                joined
            })
            .collect(),
    }
}

/// Prefixes unqualified column references of a filter with the driving-table
/// name.
fn qualify_filter(expr: BoolExpr, table: &str) -> BoolExpr {
    use daisy_expr::ScalarExpr;
    let qualify = |s: ScalarExpr| match s {
        ScalarExpr::Column(c) if !c.contains('.') => ScalarExpr::Column(format!("{table}.{c}")),
        other => other,
    };
    match expr {
        BoolExpr::Compare { left, op, right } => BoolExpr::Compare {
            left: qualify(left),
            op,
            right: qualify(right),
        },
        BoolExpr::And(a, b) => BoolExpr::And(
            Box::new(qualify_filter(*a, table)),
            Box::new(qualify_filter(*b, table)),
        ),
        BoolExpr::Or(a, b) => BoolExpr::Or(
            Box::new(qualify_filter(*a, table)),
            Box::new(qualify_filter(*b, table)),
        ),
        BoolExpr::Not(e) => BoolExpr::Not(Box::new(qualify_filter(*e, table))),
        BoolExpr::True => BoolExpr::True,
    }
}

/// Interleaves two workloads (SP and SPJ) into a mixed workload (Fig. 12).
pub fn mixed_workload(a: &Workload, b: &Workload, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries: Vec<Query> = a.queries.iter().chain(b.queries.iter()).cloned().collect();
    queries.shuffle(&mut rng);
    Workload {
        name: format!("mixed({}, {})", a.name, b.name),
        queries,
    }
}

/// The SSB-style query chain of Fig. 13.
///
/// * Q1: lineorder ⋈ supplier with a range filter on suppkey,
/// * Q2: Q1 additionally joined with part and date, grouped by year & brand,
/// * Q3: Q2 with a fourth join against customer.
pub fn ssb_query_chain(suppkey_low: i64, suppkey_high: i64) -> Vec<Query> {
    let filter = BoolExpr::between("lineorder.suppkey", suppkey_low, suppkey_high);
    let q1 = Query::scan("lineorder")
        .with_columns(&["lineorder.orderkey", "lineorder.suppkey", "supplier.name"])
        .with_filter(filter.clone())
        .join("supplier", "lineorder.suppkey", "supplier.suppkey");
    let mut q2 = Query::scan("lineorder")
        .with_filter(filter.clone())
        .join("supplier", "lineorder.suppkey", "supplier.suppkey")
        .join("part", "lineorder.partkey", "part.partkey")
        .join("date", "lineorder.datekey", "date.datekey")
        .with_group_by(&["date.year", "part.brand"]);
    q2.select = vec![
        daisy_query::SelectItem::Column("date.year".into()),
        daisy_query::SelectItem::Column("part.brand".into()),
        daisy_query::SelectItem::Aggregate {
            func: daisy_query::AggregateFunc::Sum,
            column: Some("lineorder.revenue".into()),
        },
    ];
    let mut q3 = q2.clone();
    q3.joins.push(daisy_query::ast::JoinSpec {
        table: "customer".into(),
        left_key: "lineorder.custkey".into(),
        right_key: "customer.custkey".into(),
    });
    vec![q1, q2, q3]
}

/// The air-quality exploratory workload of Table 8: one query per county,
/// each computing the average CO grouped by year.
pub fn airquality_workload(states: usize, counties_per_state: usize, count: usize) -> Workload {
    let mut queries = Vec::with_capacity(count);
    for i in 0..count {
        let state = (i % states) as i64;
        let county = ((i / states) % counties_per_state) as i64;
        let mut q = Query::scan("airquality")
            .with_filter(BoolExpr::eq("state_code", state).and(BoolExpr::eq("county_code", county)))
            .with_group_by(&["year"]);
        q.select = vec![
            daisy_query::SelectItem::Column("year".into()),
            daisy_query::SelectItem::Aggregate {
                func: daisy_query::AggregateFunc::Avg,
                column: Some("co".into()),
            },
        ];
        queries.push(q);
    }
    Workload {
        name: format!("{count} per-county CO averages"),
        queries,
    }
}

/// The product exploratory workload of Table 8: point lookups through the
/// category attribute.
pub fn nestle_workload(categories: usize, count: usize) -> Workload {
    let queries = (0..count)
        .map(|i| {
            Query::scan("products")
                .with_columns(&["name", "material", "category", "price"])
                .with_filter(BoolExpr::eq(
                    "category",
                    format!("Category{}", i % categories),
                ))
        })
        .collect();
    Workload {
        name: format!("{count} category lookups"),
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssb::{generate_lineorder, SsbConfig};

    fn lineorder() -> Table {
        generate_lineorder(&SsbConfig {
            lineorder_rows: 5_000,
            distinct_orderkeys: 500,
            distinct_suppkeys: 50,
            ..SsbConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn range_queries_cover_domain_with_target_selectivity() {
        let table = lineorder();
        let workload =
            non_overlapping_range_queries(&table, "orderkey", 50, &["orderkey", "suppkey"])
                .unwrap();
        assert_eq!(workload.len(), 50);
        // Together the filters cover every orderkey value.
        let stats = daisy_storage::TableStatistics::compute(&table).unwrap();
        let min = stats.column("orderkey").unwrap().min.clone().unwrap();
        let max = stats.column("orderkey").unwrap().max.clone().unwrap();
        let first = workload
            .queries
            .first()
            .unwrap()
            .filter
            .range_of("orderkey")
            .unwrap();
        let last = workload
            .queries
            .last()
            .unwrap()
            .filter
            .range_of("orderkey")
            .unwrap();
        assert_eq!(first.0.unwrap(), min);
        assert_eq!(last.1.unwrap(), max);
    }

    #[test]
    fn random_workload_is_deterministic_per_seed() {
        let table = lineorder();
        let a = random_selectivity_queries(&table, "orderkey", 20, &["orderkey"], 5).unwrap();
        let b = random_selectivity_queries(&table, "orderkey", 20, &["orderkey"], 5).unwrap();
        assert_eq!(
            a.queries.iter().map(|q| q.to_string()).collect::<Vec<_>>(),
            b.queries.iter().map(|q| q.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn join_and_mixed_workloads_compose() {
        let table = lineorder();
        let sp = non_overlapping_range_queries(&table, "orderkey", 10, &["orderkey"]).unwrap();
        let spj = join_workload(&sp, "supplier", "lineorder.suppkey", "supplier.suppkey");
        assert!(spj.queries.iter().all(|q| q.joins.len() == 1));
        let mixed = mixed_workload(&sp, &spj, 1);
        assert_eq!(mixed.len(), 20);
    }

    #[test]
    fn ssb_chain_grows_in_complexity() {
        let chain = ssb_query_chain(10, 20);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].joins.len(), 1);
        assert_eq!(chain[1].joins.len(), 3);
        assert_eq!(chain[2].joins.len(), 4);
        assert!(chain[1].is_aggregate());
    }

    #[test]
    fn exploratory_workloads_have_expected_shapes() {
        let air = airquality_workload(20, 15, 52);
        assert_eq!(air.len(), 52);
        assert!(air.queries.iter().all(|q| q.is_aggregate()));
        let nestle = nestle_workload(8, 37);
        assert_eq!(nestle.len(), 37);
        assert!(!nestle.is_empty());
    }
}
