//! An hourly air-quality dataset modelled on the Kaggle EPA historical
//! air-quality scenario.
//!
//! The paper's second exploratory-analysis experiment (Table 8) runs 52
//! group-by queries ("average CO measurement for a given county grouped by
//! year") over hourly measurements, with errors injected into the FD
//! `(state_code, county_code) → county_name` on the non-frequent pairs.  Two
//! error rates (0.001% / 0.003%) produce ~30% / ~97% of violating groups.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use daisy_common::{DataType, Result, Schema, Value};
use daisy_expr::FunctionalDependency;
use daisy_storage::Table;

/// Configuration of the air-quality generator.
#[derive(Debug, Clone, PartialEq)]
pub struct AirQualityConfig {
    /// Number of hourly measurement rows.
    pub rows: usize,
    /// Number of states.
    pub states: usize,
    /// Counties per state.
    pub counties_per_state: usize,
    /// Fraction of county groups to corrupt (controls the violating-group
    /// percentage, the 30% / 97% variants of Table 8).
    pub dirty_group_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AirQualityConfig {
    fn default() -> Self {
        AirQualityConfig {
            rows: 50_000,
            states: 20,
            counties_per_state: 15,
            dirty_group_fraction: 0.3,
            seed: 31,
        }
    }
}

/// The FD the scenario cleans.
pub fn airquality_fd() -> FunctionalDependency {
    FunctionalDependency::new(&["state_code", "county_code"], "county_name")
}

/// Generates the measurements table
/// (`state_code, county_code, county_name, site, year, month, co`).
pub fn generate_airquality(config: &AirQualityConfig) -> Result<Table> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_pairs(&[
        ("state_code", DataType::Int),
        ("county_code", DataType::Int),
        ("county_name", DataType::Str),
        ("site", DataType::Int),
        ("year", DataType::Int),
        ("month", DataType::Int),
        ("co", DataType::Float),
    ])?;
    let total_counties = config.states * config.counties_per_state;
    // Which (state, county) groups receive a corrupted county_name.
    let dirty_groups: Vec<bool> = (0..total_counties)
        .map(|_| rng.gen_bool(config.dirty_group_fraction))
        .collect();
    let mut rows = Vec::with_capacity(config.rows);
    for _ in 0..config.rows {
        let state = rng.gen_range(0..config.states) as i64;
        let county = rng.gen_range(0..config.counties_per_state) as i64;
        let group = (state as usize) * config.counties_per_state + county as usize;
        let mut name = format!("County_{state}_{county}");
        // Corrupt one-in-ten rows of dirty groups with a neighbouring
        // county's name (the paper edits the non-frequent pairs; one-in-ten
        // keeps the correct name the majority value).
        if dirty_groups[group] && rng.gen_bool(0.1) {
            name = format!(
                "County_{state}_{}",
                (county + 1) % config.counties_per_state as i64
            );
        }
        rows.push(vec![
            Value::Int(state),
            Value::Int(county),
            Value::Str(name),
            Value::Int(rng.gen_range(0..5)),
            Value::Int(rng.gen_range(2000..2018)),
            Value::Int(rng.gen_range(1..13)),
            Value::Float(rng.gen_range(0.05..3.5)),
        ]);
    }
    Table::from_rows("airquality", schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_storage::TableStatistics;

    #[test]
    fn dirty_group_fraction_controls_violations() {
        let low = generate_airquality(&AirQualityConfig {
            rows: 20_000,
            dirty_group_fraction: 0.3,
            ..AirQualityConfig::default()
        })
        .unwrap();
        let high = generate_airquality(&AirQualityConfig {
            rows: 20_000,
            dirty_group_fraction: 0.97,
            ..AirQualityConfig::default()
        })
        .unwrap();
        let fd_low =
            TableStatistics::fd_groups(&low, &["state_code", "county_code"], "county_name")
                .unwrap();
        let fd_high =
            TableStatistics::fd_groups(&high, &["state_code", "county_code"], "county_name")
                .unwrap();
        let frac = |fd: &daisy_storage::FdGroupStatistics| {
            fd.dirty_group_count() as f64 / fd.group_count() as f64
        };
        assert!(frac(&fd_low) > 0.15 && frac(&fd_low) < 0.5);
        assert!(frac(&fd_high) > 0.85);
    }
}
