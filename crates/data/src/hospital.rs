//! A US-hospital-like dataset with ground truth.
//!
//! The paper's accuracy experiments (Tables 5–7) run on the hospital dataset
//! of the HoloClean repository: 19 attributes, ~5% erroneous cells, clean
//! version available, and the three denial constraints
//!
//! * ϕ1: ¬(t1.zip = t2.zip ∧ t1.city ≠ t2.city)
//! * ϕ2: ¬(t1.hospital_name = t2.hospital_name ∧ t1.zip ≠ t2.zip)
//! * ϕ3: ¬(t1.phone = t2.phone ∧ t1.zip ≠ t2.zip)
//!
//! This generator produces a synthetic dataset with the same structure: a
//! clean ground-truth table whose FDs hold by construction, and a dirty copy
//! with a configurable fraction of corrupted city / zip cells.  Corruption is
//! typo-style (the original hospital dataset's errors are character
//! scrambles): a corrupted cell takes a *novel* value so the violation is
//! detectable by the constraints above and the clean value remains the
//! majority of its group — the property the paper's accuracy experiments
//! rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use daisy_common::{DataType, Result, Schema, Value};
use daisy_expr::{ConstraintSet, DenialConstraint};
use daisy_storage::Table;

/// Configuration of the hospital generator.
#[derive(Debug, Clone, PartialEq)]
pub struct HospitalConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of distinct hospitals (each hospital has one zip, city, phone).
    pub hospitals: usize,
    /// Fraction of cells to corrupt (the paper's dataset is ~5% erroneous).
    pub error_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        HospitalConfig {
            rows: 1_000,
            hospitals: 100,
            error_fraction: 0.05,
            seed: 17,
        }
    }
}

/// The hospital schema (a compact version of the 19-attribute original; the
/// attributes involved in ϕ1–ϕ3 are faithful, the remaining measure columns
/// are summarised).
pub fn hospital_schema() -> Result<Schema> {
    Schema::from_pairs(&[
        ("provider_id", DataType::Int),
        ("hospital_name", DataType::Str),
        ("address", DataType::Str),
        ("city", DataType::Str),
        ("state", DataType::Str),
        ("zip", DataType::Int),
        ("county", DataType::Str),
        ("phone", DataType::Str),
        ("hospital_type", DataType::Str),
        ("ownership", DataType::Str),
        ("emergency", DataType::Str),
        ("measure_code", DataType::Str),
        ("measure_name", DataType::Str),
        ("score", DataType::Int),
        ("sample", DataType::Int),
        ("condition", DataType::Str),
        ("state_avg", DataType::Float),
    ])
}

/// Generates `(dirty, truth)` tables plus the rule set ϕ1–ϕ3.
pub fn generate_hospital(config: &HospitalConfig) -> Result<(Table, Table, ConstraintSet)> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = hospital_schema()?;
    // Per-hospital master data: the FDs hold on these assignments.
    let mut rows = Vec::with_capacity(config.rows);
    for i in 0..config.rows {
        let h = rng.gen_range(0..config.hospitals) as i64;
        let zip = 10_000 + h;
        let city = format!("City{h}");
        rows.push(vec![
            Value::Int(i as i64),
            Value::Str(format!("Hospital {h}")),
            Value::Str(format!("{h} Main Street")),
            Value::Str(city),
            Value::Str(format!("ST{}", h % 50)),
            Value::Int(zip),
            Value::Str(format!("County{}", h % 30)),
            Value::Str(format!("555-{h:04}")),
            Value::Str(
                if h % 2 == 0 {
                    "Acute Care"
                } else {
                    "Critical Access"
                }
                .to_string(),
            ),
            Value::Str(format!("Ownership{}", h % 5)),
            Value::Str(if h % 3 == 0 { "Yes" } else { "No" }.to_string()),
            Value::Str(format!("MC{}", i % 60)),
            Value::Str(format!("Measure {}", i % 60)),
            Value::Int(rng.gen_range(0..100)),
            Value::Int(rng.gen_range(10..500)),
            Value::Str(format!("Condition{}", i % 12)),
            Value::Float(rng.gen_range(0.0..100.0)),
        ]);
    }
    let truth = Table::from_rows("hospital_truth", schema.clone(), rows.clone())?;

    // Corrupt a fraction of the city / zip cells so ϕ1–ϕ3 are violated.
    // Each corruption is a typo: the cell takes a fresh value that no other
    // tuple uses, so the corrupted tuple conflicts with its own group (the
    // city typo violates ϕ1 within the zip group; the zip typo violates ϕ2
    // and ϕ3 within the hospital_name / phone groups) while the group
    // majority remains the clean value.
    let corruptible = [3usize, 5]; // city, zip
    let mut edited: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let target = (config.rows as f64 * config.error_fraction).round() as usize;
    while edited.len() < target {
        let row = rng.gen_range(0..rows.len());
        let col = corruptible[rng.gen_range(0..corruptible.len())];
        if edited.contains(&(row, col)) {
            continue;
        }
        let typo = edited.len() as i64;
        rows[row][col] = match col {
            3 => Value::Str(format!("Ctiy-typo-{typo}")),
            _ => Value::Int(90_000 + typo),
        };
        edited.insert((row, col));
    }
    let dirty = Table::from_rows("hospital", schema, rows)?;

    let mut constraints = ConstraintSet::new();
    constraints.add(DenialConstraint::parse(
        "phi1",
        "t1.zip = t2.zip & t1.city != t2.city",
    )?);
    constraints.add(DenialConstraint::parse(
        "phi2",
        "t1.hospital_name = t2.hospital_name & t1.zip != t2.zip",
    )?);
    constraints.add(DenialConstraint::parse(
        "phi3",
        "t1.phone = t2.phone & t1.zip != t2.zip",
    )?);
    Ok((dirty, truth, constraints))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_storage::TableStatistics;

    #[test]
    fn truth_satisfies_the_fds_and_dirty_violates_them() {
        let (dirty, truth, constraints) = generate_hospital(&HospitalConfig {
            rows: 500,
            hospitals: 50,
            error_fraction: 0.05,
            seed: 3,
        })
        .unwrap();
        assert_eq!(dirty.len(), truth.len());
        assert_eq!(constraints.len(), 3);
        let clean_fd = TableStatistics::fd_groups(&truth, &["zip"], "city").unwrap();
        assert_eq!(clean_fd.dirty_group_count(), 0);
        let dirty_fd = TableStatistics::fd_groups(&dirty, &["zip"], "city").unwrap();
        assert!(dirty_fd.dirty_group_count() > 0);
    }

    #[test]
    fn error_fraction_is_respected() {
        let config = HospitalConfig {
            rows: 1_000,
            hospitals: 100,
            error_fraction: 0.05,
            seed: 9,
        };
        let (dirty, truth, _) = generate_hospital(&config).unwrap();
        let mut differing = 0usize;
        for (d, t) in dirty.tuples().iter().zip(truth.tuples()) {
            for col in 0..d.arity() {
                if d.value(col).unwrap() != t.value(col).unwrap() {
                    differing += 1;
                }
            }
        }
        assert_eq!(differing, 50);
    }
}
