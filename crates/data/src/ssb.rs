//! A Star-Schema-Benchmark-like generator.
//!
//! The paper evaluates on the SSB `lineorder` table joined with `supplier`,
//! `part`, `date` and `customer`, varying the number of distinct orderkeys
//! (5K–100K) and suppkeys (100–10K) and injecting FD violations into
//! orderkey → suppkey.  This generator produces the same shape: a fact table
//! whose foreign keys are drawn uniformly from configurable domains, plus
//! the four dimension tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use daisy_common::{DataType, Result, Schema, Value};
use daisy_storage::Table;

/// Configuration of the SSB-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SsbConfig {
    /// Number of lineorder rows.
    pub lineorder_rows: usize,
    /// Number of distinct orderkeys (each orderkey maps to one "true"
    /// suppkey before error injection, so the FD orderkey → suppkey holds on
    /// the clean data).
    pub distinct_orderkeys: usize,
    /// Number of distinct suppkeys.
    pub distinct_suppkeys: usize,
    /// Number of distinct partkeys.
    pub distinct_parts: usize,
    /// Number of distinct customers.
    pub distinct_customers: usize,
    /// Number of supplier rows per suppkey.  Values above one produce
    /// duplicate supplier listings that share the supplier's address, which
    /// is what makes the FD address → suppkey (ψ of Figs. 8/11/12) violable
    /// once errors are injected into the suppkey column.
    pub supplier_rows_per_key: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SsbConfig {
    fn default() -> Self {
        SsbConfig {
            lineorder_rows: 10_000,
            distinct_orderkeys: 1_000,
            distinct_suppkeys: 100,
            distinct_parts: 200,
            distinct_customers: 300,
            supplier_rows_per_key: 3,
            seed: 42,
        }
    }
}

/// Generates the `lineorder` fact table.
///
/// Schema: `orderkey, suppkey, partkey, custkey, datekey, quantity,
/// extended_price, discount, revenue`.  On the clean data the FD
/// orderkey → suppkey holds by construction, extended_price grows with
/// quantity and discount is correlated with extended_price so the
/// inequality DC of Fig. 10 holds until errors are injected.
pub fn generate_lineorder(config: &SsbConfig) -> Result<Table> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_pairs(&[
        ("orderkey", DataType::Int),
        ("suppkey", DataType::Int),
        ("partkey", DataType::Int),
        ("custkey", DataType::Int),
        ("datekey", DataType::Int),
        ("quantity", DataType::Int),
        ("extended_price", DataType::Int),
        ("discount", DataType::Float),
        ("revenue", DataType::Int),
    ])?;
    // Fixed mapping orderkey → suppkey so the FD holds on clean data.
    let supp_of_order: Vec<i64> = (0..config.distinct_orderkeys)
        .map(|_| rng.gen_range(0..config.distinct_suppkeys as i64))
        .collect();
    let mut rows = Vec::with_capacity(config.lineorder_rows);
    for _ in 0..config.lineorder_rows {
        let orderkey = rng.gen_range(0..config.distinct_orderkeys as i64);
        let suppkey = supp_of_order[orderkey as usize];
        let partkey = rng.gen_range(0..config.distinct_parts as i64);
        let custkey = rng.gen_range(0..config.distinct_customers as i64);
        let datekey = 19920101 + rng.gen_range(0..2556i64);
        let quantity = rng.gen_range(1..50i64);
        let extended_price = quantity * rng.gen_range(100..1000i64);
        // Discount grows monotonically with price on clean data so the DC
        // ¬(price< ∧ discount>) holds before injection.
        let discount = (extended_price as f64 / 50_000.0).min(0.9);
        let revenue = (extended_price as f64 * (1.0 - discount)) as i64;
        rows.push(vec![
            Value::Int(orderkey),
            Value::Int(suppkey),
            Value::Int(partkey),
            Value::Int(custkey),
            Value::Int(datekey),
            Value::Int(quantity),
            Value::Int(extended_price),
            Value::Float(discount),
            Value::Int(revenue),
        ]);
    }
    Table::from_rows("lineorder", schema, rows)
}

/// Generates the `supplier` dimension table
/// (`suppkey, name, address, city, nation`).  Every address maps to one
/// suppkey on clean data so the FD address → suppkey holds until errors are
/// injected (the ψ rule of Figs. 8, 11 and 12).  Each suppkey appears in
/// `supplier_rows_per_key` duplicate listings sharing the same address, so
/// that editing a listing's suppkey produces a detectable ψ violation.
pub fn generate_supplier(config: &SsbConfig) -> Result<Table> {
    let schema = Schema::from_pairs(&[
        ("suppkey", DataType::Int),
        ("name", DataType::Str),
        ("address", DataType::Str),
        ("city", DataType::Str),
        ("nation", DataType::Str),
    ])?;
    let copies = config.supplier_rows_per_key.max(1);
    let mut rows = Vec::with_capacity(config.distinct_suppkeys * copies);
    for s in 0..config.distinct_suppkeys as i64 {
        for _ in 0..copies {
            rows.push(vec![
                Value::Int(s),
                Value::Str(format!("Supplier#{s:06}")),
                Value::Str(format!("Address {s}")),
                Value::Str(format!("City{}", s % 250)),
                Value::Str(format!("Nation{}", s % 25)),
            ]);
        }
    }
    Table::from_rows("supplier", schema, rows)
}

/// Generates the `part` dimension table (`partkey, name, brand, category`).
pub fn generate_part(config: &SsbConfig) -> Result<Table> {
    let schema = Schema::from_pairs(&[
        ("partkey", DataType::Int),
        ("name", DataType::Str),
        ("brand", DataType::Str),
        ("category", DataType::Str),
    ])?;
    let rows = (0..config.distinct_parts as i64)
        .map(|p| {
            vec![
                Value::Int(p),
                Value::Str(format!("Part#{p:06}")),
                Value::Str(format!("Brand{}", p % 40)),
                Value::Str(format!("Category{}", p % 25)),
            ]
        })
        .collect();
    Table::from_rows("part", schema, rows)
}

/// Generates the `date` dimension table (`datekey, year, month`).
pub fn generate_date() -> Result<Table> {
    let schema = Schema::from_pairs(&[
        ("datekey", DataType::Int),
        ("year", DataType::Int),
        ("month", DataType::Int),
    ])?;
    let mut rows = Vec::new();
    for offset in 0..2556i64 {
        let datekey = 19920101 + offset;
        let year = 1992 + offset / 365;
        let month = 1 + (offset % 365) / 31;
        rows.push(vec![
            Value::Int(datekey),
            Value::Int(year),
            Value::Int(month),
        ]);
    }
    Table::from_rows("date", schema, rows)
}

/// Generates the `customer` dimension table (`custkey, name, city, nation`).
pub fn generate_customer(config: &SsbConfig) -> Result<Table> {
    let schema = Schema::from_pairs(&[
        ("custkey", DataType::Int),
        ("name", DataType::Str),
        ("city", DataType::Str),
        ("nation", DataType::Str),
    ])?;
    let rows = (0..config.distinct_customers as i64)
        .map(|c| {
            vec![
                Value::Int(c),
                Value::Str(format!("Customer#{c:06}")),
                Value::Str(format!("City{}", c % 250)),
                Value::Str(format!("Nation{}", c % 25)),
            ]
        })
        .collect();
    Table::from_rows("customer", schema, rows)
}

/// Generates a denormalised `lineorder ⋈ supplier` table, the dataset used
/// for the overlapping-rules experiment (Fig. 8): it carries both orderkey →
/// suppkey and address → suppkey.
pub fn generate_lineorder_supplier(config: &SsbConfig) -> Result<Table> {
    let lineorder = generate_lineorder(config)?;
    let supplier = generate_supplier(config)?;
    let schema = Schema::from_pairs(&[
        ("orderkey", DataType::Int),
        ("suppkey", DataType::Int),
        ("extended_price", DataType::Int),
        ("address", DataType::Str),
        ("city", DataType::Str),
    ])?;
    let supp_address: std::collections::HashMap<Value, (Value, Value)> = supplier
        .tuples()
        .iter()
        .map(|t| {
            (
                t.value(0).unwrap(),
                (t.value(2).unwrap(), t.value(3).unwrap()),
            )
        })
        .collect();
    let rows = lineorder
        .tuples()
        .iter()
        .map(|t| {
            let suppkey = t.value(1).unwrap();
            let (address, city) = supp_address[&suppkey].clone();
            vec![
                t.value(0).unwrap(),
                t.value(1).unwrap(),
                t.value(6).unwrap(),
                address,
                city,
            ]
        })
        .collect();
    Table::from_rows("lineorder_supplier", schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_storage::TableStatistics;

    #[test]
    fn clean_lineorder_satisfies_the_fd() {
        let config = SsbConfig {
            lineorder_rows: 2_000,
            distinct_orderkeys: 200,
            distinct_suppkeys: 50,
            ..SsbConfig::default()
        };
        let table = generate_lineorder(&config).unwrap();
        assert_eq!(table.len(), 2_000);
        let fd = TableStatistics::fd_groups(&table, &["orderkey"], "suppkey").unwrap();
        assert_eq!(fd.dirty_group_count(), 0);
        assert!(fd.group_count() <= 200);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = SsbConfig::default();
        let a = generate_lineorder(&config).unwrap();
        let b = generate_lineorder(&config).unwrap();
        assert_eq!(
            a.column_values("suppkey").unwrap(),
            b.column_values("suppkey").unwrap()
        );
    }

    #[test]
    fn dimensions_have_expected_shapes() {
        let config = SsbConfig {
            distinct_suppkeys: 77,
            distinct_parts: 33,
            distinct_customers: 11,
            ..SsbConfig::default()
        };
        assert_eq!(
            generate_supplier(&config).unwrap().len(),
            77 * config.supplier_rows_per_key
        );
        assert_eq!(generate_part(&config).unwrap().len(), 33);
        assert_eq!(generate_customer(&config).unwrap().len(), 11);
        assert!(generate_date().unwrap().len() > 2000);
        // The supplier address → suppkey FD holds on clean data.
        let supplier = generate_supplier(&config).unwrap();
        let fd = TableStatistics::fd_groups(&supplier, &["address"], "suppkey").unwrap();
        assert_eq!(fd.dirty_group_count(), 0);
    }

    #[test]
    fn denormalised_table_carries_both_rules() {
        let config = SsbConfig {
            lineorder_rows: 500,
            ..SsbConfig::default()
        };
        let table = generate_lineorder_supplier(&config).unwrap();
        assert_eq!(table.len(), 500);
        assert!(table.schema().contains("address"));
        let fd1 = TableStatistics::fd_groups(&table, &["orderkey"], "suppkey").unwrap();
        let fd2 = TableStatistics::fd_groups(&table, &["address"], "suppkey").unwrap();
        assert_eq!(fd1.dirty_group_count() + fd2.dirty_group_count(), 0);
    }
}
