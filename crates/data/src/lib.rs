//! # daisy-data
//!
//! Synthetic datasets, error injection and query workloads reproducing the
//! Daisy evaluation setup (§7):
//!
//! * [`ssb`] — a Star-Schema-Benchmark-like generator (lineorder, supplier,
//!   part, date, customer) with configurable distinct orderkeys / suppkeys,
//! * [`errors`] — BART-like error injection: edit a percentage of the rhs
//!   values of each lhs group, uniformly spread across the dataset,
//! * [`hospital`] — a US-hospital-like dataset with ground truth and the
//!   three DCs ϕ1–ϕ3 used for the accuracy experiments,
//! * [`nestle`] — a food-products dataset with the Material → Category FD
//!   and very low Category selectivity,
//! * [`airquality`] — hourly CO measurements keyed by (state, county) with a
//!   (state_code, county_code) → county_name FD,
//! * [`workload`] — query-workload generators (non-overlapping range / point
//!   SP queries of fixed selectivity, SPJ workloads, mixed workloads, the
//!   SSB-style Q1/Q2/Q3 chain, exploratory group-by workloads).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod airquality;
pub mod errors;
pub mod hospital;
pub mod nestle;
pub mod ssb;
pub mod workload;

pub use errors::{inject_fd_errors, inject_inequality_errors, ErrorInjectionReport};
pub use workload::Workload;
