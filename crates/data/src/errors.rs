//! BART-like error injection.
//!
//! The paper injects errors by "randomly editing 10% of the suppliers that
//! correspond to each orderkey", using a uniform distribution so every query
//! is affected, and constructs lower-violation variants by restricting the
//! injection to a percentage of the groups (20%–80%, Fig. 9).  The injected
//! errors are detectable by the constraints under evaluation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use daisy_common::{Result, Value};
use daisy_storage::Table;

/// What an injection pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorInjectionReport {
    /// Number of cells edited.
    pub cells_edited: usize,
    /// Number of lhs groups that now contain a violation.
    pub dirty_groups: usize,
}

/// Injects FD violations into `table` for the dependency `lhs → rhs`.
///
/// * `group_fraction` — fraction of lhs groups to corrupt (1.0 = all groups,
///   the paper's worst case; 0.2–0.8 for Fig. 9),
/// * `edit_fraction` — fraction of each corrupted group's rhs cells to edit
///   (the paper uses 10%, with at least one edit so the group really becomes
///   dirty),
/// * edited cells receive the rhs value of another group, keeping the error
///   detectable by the FD.
pub fn inject_fd_errors(
    table: &mut Table,
    lhs: &str,
    rhs: &str,
    group_fraction: f64,
    edit_fraction: f64,
    seed: u64,
) -> Result<ErrorInjectionReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lhs_idx = table.column_index(lhs)?;
    let rhs_idx = table.column_index(rhs)?;

    // Group tuple positions by lhs value.
    let mut groups: std::collections::HashMap<Value, Vec<usize>> = std::collections::HashMap::new();
    let mut rhs_pool: Vec<Value> = Vec::new();
    for (pos, tuple) in table.tuples().iter().enumerate() {
        groups.entry(tuple.value(lhs_idx)?).or_default().push(pos);
        rhs_pool.push(tuple.value(rhs_idx)?);
    }
    rhs_pool.sort();
    rhs_pool.dedup();

    let mut keys: Vec<Value> = groups.keys().cloned().collect();
    keys.sort();
    keys.shuffle(&mut rng);
    let corrupt_count = ((keys.len() as f64) * group_fraction).round() as usize;
    let mut report = ErrorInjectionReport::default();

    let mut edits: Vec<(usize, Value)> = Vec::new();
    for key in keys.into_iter().take(corrupt_count) {
        let members = &groups[&key];
        let group_edits = ((members.len() as f64 * edit_fraction).ceil() as usize)
            .max(1)
            .min(members.len());
        let mut member_order = members.clone();
        member_order.shuffle(&mut rng);
        let current_rhs = table.tuples()[members[0]].value(rhs_idx)?;
        for &pos in member_order.iter().take(group_edits) {
            // Pick a different rhs value from the global pool.
            let replacement = loop {
                let candidate = rhs_pool[rng.gen_range(0..rhs_pool.len())].clone();
                if candidate != current_rhs || rhs_pool.len() == 1 {
                    break candidate;
                }
            };
            edits.push((pos, replacement));
        }
        report.dirty_groups += 1;
    }

    // Apply the edits directly to the stored tuples.
    let mut tuples = table.tuples().to_vec();
    for (pos, value) in edits {
        tuples[pos].cells[rhs_idx] = daisy_storage::Cell::Determinate(value);
        report.cells_edited += 1;
    }
    table.replace_tuples(tuples);
    Ok(report)
}

/// Injects violations of an inequality DC of the form
/// `¬(t1.a < t2.a ∧ t1.b > t2.b)` by perturbing the `b` attribute of a
/// fraction of tuples so that it no longer follows the ordering of `a`
/// (the Fig. 10 setup: "we inject errors by editing the discount value of
/// 10% of entries" and vary how many violations those dirty values induce).
pub fn inject_inequality_errors(
    table: &mut Table,
    ordered_by: &str,
    perturbed: &str,
    tuple_fraction: f64,
    magnitude: f64,
    seed: u64,
) -> Result<ErrorInjectionReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = table.column_index(ordered_by)?;
    let b_idx = table.column_index(perturbed)?;
    let mut tuples = table.tuples().to_vec();
    let mut report = ErrorInjectionReport::default();
    let n = tuples.len();
    let edits = ((n as f64) * tuple_fraction).round() as usize;
    let mut positions: Vec<usize> = (0..n).collect();
    positions.shuffle(&mut rng);
    for &pos in positions.iter().take(edits) {
        let current = tuples[pos].cells[b_idx]
            .expected_value()
            .as_float()
            .unwrap_or(0.0);
        // Push the value upward by up to `magnitude`, creating outliers that
        // break the correlation with the ordering attribute.
        let bump = rng.gen_range(0.0..=magnitude.max(f64::EPSILON));
        tuples[pos].cells[b_idx] = daisy_storage::Cell::Determinate(Value::Float(current + bump));
        report.cells_edited += 1;
    }
    table.replace_tuples(tuples);
    report.dirty_groups = report.cells_edited;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};
    use daisy_storage::TableStatistics;

    fn clean_table(groups: usize, per_group: usize) -> Table {
        let schema =
            Schema::from_pairs(&[("orderkey", DataType::Int), ("suppkey", DataType::Int)]).unwrap();
        let mut rows = Vec::new();
        for g in 0..groups {
            for _ in 0..per_group {
                rows.push(vec![Value::Int(g as i64), Value::Int(1000 + g as i64)]);
            }
        }
        Table::from_rows("lineorder", schema, rows).unwrap()
    }

    #[test]
    fn full_injection_dirties_every_group() {
        let mut table = clean_table(50, 10);
        let report = inject_fd_errors(&mut table, "orderkey", "suppkey", 1.0, 0.1, 7).unwrap();
        assert_eq!(report.dirty_groups, 50);
        assert!(report.cells_edited >= 50);
        let fd = TableStatistics::fd_groups(&table, &["orderkey"], "suppkey").unwrap();
        assert_eq!(fd.dirty_group_count(), 50);
    }

    #[test]
    fn partial_injection_respects_group_fraction() {
        let mut table = clean_table(100, 5);
        let report = inject_fd_errors(&mut table, "orderkey", "suppkey", 0.4, 0.2, 7).unwrap();
        assert_eq!(report.dirty_groups, 40);
        let fd = TableStatistics::fd_groups(&table, &["orderkey"], "suppkey").unwrap();
        assert_eq!(fd.dirty_group_count(), 40);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let mut a = clean_table(20, 5);
        let mut b = clean_table(20, 5);
        inject_fd_errors(&mut a, "orderkey", "suppkey", 0.5, 0.2, 11).unwrap();
        inject_fd_errors(&mut b, "orderkey", "suppkey", 0.5, 0.2, 11).unwrap();
        let va: Vec<Value> = a.column_values("suppkey").unwrap();
        let vb: Vec<Value> = b.column_values("suppkey").unwrap();
        assert_eq!(va, vb);
    }

    #[test]
    fn inequality_injection_edits_requested_fraction() {
        let schema =
            Schema::from_pairs(&[("price", DataType::Int), ("discount", DataType::Float)]).unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 / 100.0)])
            .collect();
        let mut table = Table::from_rows("lineorder", schema, rows).unwrap();
        let report =
            inject_inequality_errors(&mut table, "price", "discount", 0.1, 0.5, 3).unwrap();
        assert_eq!(report.cells_edited, 10);
    }
}
