//! A food-products dataset modelled on the paper's (proprietary) Nestlé
//! scenario.
//!
//! The exploratory-analysis experiment (Table 8) runs 37 SP queries that
//! look up coffee products through the `category` attribute, with the FD
//! `material → category` violated in ~95% of the entities and a *very* low
//! selectivity of `category` (each category value co-occurs with many dirty
//! materials, which is what makes the offline approach iterate over the
//! dataset many times).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use daisy_common::{DataType, Result, Schema, Value};
use daisy_expr::FunctionalDependency;
use daisy_storage::Table;

/// Configuration of the product generator.
#[derive(Debug, Clone, PartialEq)]
pub struct NestleConfig {
    /// Number of product rows.
    pub rows: usize,
    /// Number of distinct materials (bean types).
    pub materials: usize,
    /// Number of distinct categories (deliberately small: low selectivity).
    pub categories: usize,
    /// Fraction of each material group's category cells to corrupt.
    pub error_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NestleConfig {
    fn default() -> Self {
        NestleConfig {
            rows: 20_000,
            materials: 400,
            categories: 8,
            error_fraction: 0.10,
            seed: 23,
        }
    }
}

/// The FD the scenario cleans.
pub fn nestle_fd() -> FunctionalDependency {
    FunctionalDependency::new(&["material"], "category")
}

/// Generates the products table
/// (`product_id, name, material, category, brand, weight, price`).
pub fn generate_nestle(config: &NestleConfig) -> Result<Table> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_pairs(&[
        ("product_id", DataType::Int),
        ("name", DataType::Str),
        ("material", DataType::Str),
        ("category", DataType::Str),
        ("brand", DataType::Str),
        ("weight", DataType::Int),
        ("price", DataType::Float),
    ])?;
    // Each material deterministically maps to one category (clean FD).
    let category_of: Vec<usize> = (0..config.materials)
        .map(|m| m % config.categories)
        .collect();
    let mut rows = Vec::with_capacity(config.rows);
    for i in 0..config.rows {
        let material = rng.gen_range(0..config.materials);
        let mut category = category_of[material];
        // Corrupt a fraction of category cells with a different category.
        if rng.gen_bool(config.error_fraction) && config.categories > 1 {
            category = (category + 1 + rng.gen_range(0..config.categories - 1)) % config.categories;
        }
        rows.push(vec![
            Value::Int(i as i64),
            Value::Str(format!("Product {i}")),
            Value::Str(format!("Material{material}")),
            Value::Str(format!("Category{category}")),
            Value::Str(format!("Brand{}", i % 30)),
            Value::Int(rng.gen_range(50..2000)),
            Value::Float(rng.gen_range(0.5..50.0)),
        ]);
    }
    Table::from_rows("products", schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_storage::TableStatistics;

    #[test]
    fn most_material_groups_conflict() {
        let table = generate_nestle(&NestleConfig {
            rows: 5_000,
            materials: 100,
            categories: 5,
            error_fraction: 0.10,
            seed: 1,
        })
        .unwrap();
        let fd = TableStatistics::fd_groups(&table, &["material"], "category").unwrap();
        // With 10% corruption and ~50 rows per material, nearly every group
        // contains at least one conflicting category (the paper's "95% of
        // conflicting entities").
        assert!(fd.dirty_group_count() as f64 / fd.group_count() as f64 > 0.9);
        // Category has very low selectivity compared to material.
        let stats = TableStatistics::compute(&table).unwrap();
        assert!(stats.column("category").unwrap().distinct_count() < 10);
        assert!(stats.column("material").unwrap().distinct_count() >= 90);
    }
}
