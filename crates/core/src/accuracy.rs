//! Accuracy estimation for general denial constraints (Algorithm 2).
//!
//! Cleaning only the part of the theta-join matrix that a query touches is
//! cheaper than the full cartesian check, but a dirty value outside the
//! checked region could receive a candidate fix that would have satisfied
//! the query.  Algorithm 2 therefore estimates, from partition-boundary
//! overlaps alone, how many unseen errors affect the ranges the query
//! answer falls into, turns that into an *accuracy* estimate, and compares
//! it against a user threshold to decide between partial and full cleaning.

use serde::{Deserialize, Serialize};

use daisy_common::Value;

use crate::theta::ThetaMatrix;

/// The decision Algorithm 2 reaches for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CleaningDecision {
    /// Accuracy is predicted to be at least the threshold: clean only the
    /// partial matrix relevant to the query.
    Partial,
    /// Accuracy is predicted to fall below the threshold: clean the whole
    /// matrix now.
    Full,
}

/// The accuracy estimate for one query answer under one general DC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyEstimate {
    /// Estimated number of unseen errors affecting the answer's ranges.
    pub estimated_errors: f64,
    /// Estimated result accuracy `|qa| / (|qa| + errors)` — the complement
    /// of the error contamination of the answer.
    pub accuracy: f64,
    /// Fraction of the diagonal/upper matrix already checked.
    pub support: f64,
    /// The partial-vs-full decision given the threshold.
    pub decision: CleaningDecision,
}

/// Runs Algorithm 2 for a query whose answer has `answer_size` tuples and
/// spans `[low, high]` on the partition attribute of `matrix`.
pub fn estimate_accuracy(
    matrix: &ThetaMatrix,
    answer_size: usize,
    low: Option<&Value>,
    high: Option<&Value>,
    threshold: f64,
) -> AccuracyEstimate {
    let per_block = matrix.estimate_errors();
    let relevant = matrix.blocks_overlapping(low, high);
    let estimated_errors: f64 = relevant.iter().map(|&i| per_block[i]).sum();
    let accuracy = if answer_size == 0 && estimated_errors == 0.0 {
        1.0
    } else {
        answer_size as f64 / (answer_size as f64 + estimated_errors)
    };
    let support = matrix.support();
    let decision = if accuracy >= threshold {
        CleaningDecision::Partial
    } else {
        CleaningDecision::Full
    };
    AccuracyEstimate {
        estimated_errors,
        accuracy,
        support,
        decision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};
    use daisy_expr::DenialConstraint;
    use daisy_storage::Table;

    fn table(rows: &[(i64, f64)]) -> Table {
        Table::from_rows(
            "emp",
            Schema::from_pairs(&[("salary", DataType::Int), ("tax", DataType::Float)]).unwrap(),
            rows.iter()
                .map(|(s, t)| vec![Value::Int(*s), Value::Float(*t)])
                .collect(),
        )
        .unwrap()
    }

    fn dc() -> DenialConstraint {
        DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap()
    }

    #[test]
    fn clean_data_predicts_full_accuracy() {
        let rows: Vec<(i64, f64)> = (0..50).map(|i| (i, i as f64)).collect();
        let t = table(&rows);
        let m = ThetaMatrix::build(t.schema(), t.tuples(), &dc(), 5).unwrap();
        let est = estimate_accuracy(&m, 10, Some(&Value::Int(0)), Some(&Value::Int(10)), 0.5);
        assert!(est.accuracy > 0.99);
        assert_eq!(est.decision, CleaningDecision::Partial);
        assert_eq!(est.support, 0.0);
    }

    #[test]
    fn heavily_dirty_data_triggers_full_cleaning() {
        // Taxes anti-correlated with salary → many violations everywhere.
        let rows: Vec<(i64, f64)> = (0..50).map(|i| (i, (50 - i) as f64)).collect();
        let t = table(&rows);
        let m = ThetaMatrix::build(t.schema(), t.tuples(), &dc(), 5).unwrap();
        let est = estimate_accuracy(&m, 5, Some(&Value::Int(0)), Some(&Value::Int(10)), 0.9);
        assert!(est.estimated_errors > 0.0);
        assert!(est.accuracy < 0.9);
        assert_eq!(est.decision, CleaningDecision::Full);
    }

    #[test]
    fn empty_answer_over_clean_ranges_is_fully_accurate() {
        let rows: Vec<(i64, f64)> = (0..10).map(|i| (i, i as f64)).collect();
        let t = table(&rows);
        let m = ThetaMatrix::build(t.schema(), t.tuples(), &dc(), 2).unwrap();
        let est = estimate_accuracy(&m, 0, None, None, 0.5);
        assert_eq!(est.accuracy, 1.0);
    }
}
