//! Bridging the in-memory [`WorldState`] to the durable [`daisy_wal`]
//! layer: serialization into [`PersistedWorld`]s, commit-record
//! construction (with the provenance diff), and restoration of a recovered
//! world on top of a bootstrap engine.
//!
//! Constraints are deliberately **not** persisted: rules are
//! configuration, registered on the bootstrap engine before
//! [`EngineShared::recover`](crate::session::EngineShared::recover) is
//! called.  Recovery therefore combines the bootstrap world's constraints
//! with the log's tables and provenance, and clears every derived
//! structure (indexes, θ-matrices, trackers, snapshots) so it is rebuilt
//! lazily — recovered tables restart at revision zero, and a stale cache
//! claiming currency against them would be silently wrong.

use std::collections::HashSet;
use std::sync::Arc;

use daisy_storage::{Delta, Footprint, ProvenanceStore, Table};
use daisy_wal::{LoggedCommit, PersistedWorld, ProvenanceDiff};

use crate::world::{RuleKey, WorldState};

/// Serializes the full table + provenance state at `version`.
pub(crate) fn persisted_world(version: u64, world: &WorldState) -> PersistedWorld {
    let mut tables: Vec<Table> = world
        .catalog
        .iter()
        .map(|(_, table)| table.clone())
        .collect();
    tables.sort_by(|a, b| a.name().cmp(b.name()));
    let mut provenance: Vec<(String, ProvenanceStore)> = world
        .provenance
        .iter()
        .map(|(name, store)| (name.clone(), store.as_ref().clone()))
        .collect();
    provenance.sort_by(|a, b| a.0.cmp(&b.0));
    PersistedWorld {
        version,
        tables,
        provenance,
    }
}

/// Builds the log record for a commit that moves `old` to `new`.
///
/// The provenance diff leans on the copy-on-write worlds: a table whose
/// store is the *same `Arc`* in both worlds cannot have changed and is
/// skipped without a walk.  Every commit path only ever adds or replaces
/// provenance entries (relative to the world it installs over), so the
/// diff plus the staged deltas reproduce the post-commit world exactly.
pub(crate) fn logged_commit(
    version: u64,
    old: &WorldState,
    new: &WorldState,
    staged: &[(String, Delta)],
    touched: &HashSet<RuleKey>,
    write: &Footprint,
) -> LoggedCommit {
    let empty = ProvenanceStore::new();
    let mut provenance: Vec<(String, ProvenanceDiff)> = Vec::new();
    let mut names: Vec<&String> = new.provenance.keys().collect();
    names.sort();
    for name in names {
        let new_store = &new.provenance[name];
        let old_store = old.provenance.get(name);
        if let Some(old_store) = old_store {
            if Arc::ptr_eq(old_store, new_store) {
                continue;
            }
        }
        let diff =
            ProvenanceDiff::between(old_store.map(|s| s.as_ref()).unwrap_or(&empty), new_store);
        if !diff.is_empty() {
            provenance.push((name.clone(), diff));
        }
    }
    let mut touched_rules: Vec<(String, u64)> = touched.iter().cloned().collect();
    touched_rules.sort();
    LoggedCommit {
        version,
        staged: staged.to_vec(),
        write: write.clone(),
        touched_rules,
        provenance,
    }
}

/// Rebuilds a live world from a recovered checkpoint+replay state, on top
/// of the bootstrap world's constraints.
pub(crate) fn restore_world(bootstrap: &WorldState, persisted: &PersistedWorld) -> WorldState {
    let mut world = bootstrap.clone();
    for table in &persisted.tables {
        world.catalog.remove(table.name());
        world.catalog.add(table.clone());
    }
    world.provenance = persisted
        .provenance
        .iter()
        .map(|(name, store)| (name.clone(), Arc::new(store.clone())))
        .collect();
    // Recovered tables restart at revision zero; every derived structure is
    // keyed to revisions and must be rebuilt lazily rather than trusted.
    world.fd_indexes.clear();
    world.theta_matrices.clear();
    world.trackers.clear();
    world.fully_cleaned.clear();
    world.snapshots.clear();
    world.violation_indexes.clear();
    world
}

/// A read-only reconstruction of the world as of one historical commit,
/// returned by
/// [`EngineShared::world_at`](crate::session::EngineShared::world_at).
#[derive(Debug, Clone)]
pub struct WorldSnapshot {
    inner: PersistedWorld,
}

impl WorldSnapshot {
    pub(crate) fn new(inner: PersistedWorld) -> WorldSnapshot {
        WorldSnapshot { inner }
    }

    /// The commit version this snapshot reconstructs.
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// The table as of this version, if it existed.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.inner.tables.iter().find(|t| t.name() == name)
    }

    /// All table names as of this version, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.inner.tables.iter().map(|t| t.name()).collect()
    }

    /// The provenance store of a table as of this version, if any cell had
    /// been cleaned by then.
    pub fn provenance(&self, table: &str) -> Option<&ProvenanceStore> {
        self.inner
            .provenance
            .iter()
            .find(|(name, _)| name == table)
            .map(|(_, store)| store)
    }
}
