//! The engine's mutable world: tables, constraints and every derived
//! cleaning structure, packaged so that cloning it is cheap.
//!
//! A [`WorldState`] is the complete, self-consistent state a cleaning
//! computation runs against: the catalog of (gradually probabilistic)
//! tables, the registered constraints, and the per-`(table, rule)` derived
//! structures the engine maintains incrementally — FD group indexes, theta
//! matrices with their incremental checked-block bookkeeping, provenance
//! stores, cost trackers and columnar snapshots.
//!
//! Every heavy member sits behind an [`Arc`], so `WorldState::clone` is a
//! handful of map clones plus reference-count bumps — `O(#tables + #rules)`
//! regardless of data size.  Mutation goes through [`Arc::make_mut`]
//! (copy-on-write): the first write a clone makes to a table, snapshot,
//! matrix, index or provenance store detaches a private copy, leaving all
//! other clones untouched.  That is what makes a clone a **consistent
//! snapshot**: concurrent sessions each clone the shared world, clean
//! against their copy, and publish the mutated world back through the
//! serialized commit path of [`EngineShared`](crate::session::EngineShared).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use daisy_expr::ConstraintSet;
use daisy_query::Catalog;
use daisy_storage::{ColumnSnapshot, ProvenanceStore};

use crate::cost::CostTracker;
use crate::fd_index::FdIndex;
use crate::index::MaintainedIndex;
use crate::theta::ThetaMatrix;

/// The key under which per-rule derived structures are cached: the table
/// name plus the raw rule id.
pub(crate) type RuleKey = (String, u64);

/// The complete mutable state of a cleaning engine, cheap to clone.
///
/// See the [module docs](self) for the copy-on-write contract.  The fields
/// are crate-private: the engine and the session/commit layer are the only
/// components that may mutate a world, and they do so exclusively through
/// [`Arc::make_mut`] so sharing is never observable.
#[derive(Debug, Clone, Default)]
pub struct WorldState {
    /// Named base tables (`Arc<Table>` inside the catalog).
    pub(crate) catalog: Catalog,
    /// The registered denial constraints and FDs.
    pub(crate) constraints: ConstraintSet,
    /// FD group indexes per (table, rule), built over original values.
    pub(crate) fd_indexes: HashMap<RuleKey, Arc<FdIndex>>,
    /// Incremental theta matrices per (table, rule); mutated by every
    /// partial check (blocks get marked), hence copy-on-write.
    pub(crate) theta_matrices: HashMap<RuleKey, Arc<ThetaMatrix>>,
    /// Per-table provenance stores (Table 7).
    pub(crate) provenance: HashMap<String, Arc<ProvenanceStore>>,
    /// Per-(table, rule) cost-model trackers; small, cloned by value.
    pub(crate) trackers: HashMap<RuleKey, CostTracker>,
    /// (table, rule) pairs already cleaned in full.
    pub(crate) fully_cleaned: HashSet<RuleKey>,
    /// Maintained columnar snapshots per table.
    pub(crate) snapshots: HashMap<String, Arc<ColumnSnapshot>>,
    /// Maintained violation indexes per (table, rule), absorbed delta by
    /// delta like the snapshots and rebuilt when stale — the streaming
    /// ingest path detects against these instead of rebuilding per batch.
    pub(crate) violation_indexes: HashMap<RuleKey, Arc<MaintainedIndex>>,
}

impl WorldState {
    /// The columnar snapshot of `table`, if one is maintained.
    pub(crate) fn snapshot_ref(&self, table: &str) -> Option<&ColumnSnapshot> {
        self.snapshots.get(table).map(Arc::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, Value};
    use daisy_storage::Table;

    #[test]
    fn cloning_a_world_shares_tables_until_written() {
        let mut world = WorldState::default();
        let table = Table::from_rows(
            "t",
            Schema::from_pairs(&[("x", DataType::Int)]).unwrap(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        world.catalog.add(table);

        let mut session = world.clone();
        assert!(Arc::ptr_eq(
            &world.catalog.shared("t").unwrap(),
            &session.catalog.shared("t").unwrap()
        ));
        session
            .catalog
            .table_mut("t")
            .unwrap()
            .push_values(vec![Value::Int(3)])
            .unwrap();
        // The session's write detached a private copy; the original world
        // still observes the pre-write table.
        assert_eq!(session.catalog.table("t").unwrap().len(), 3);
        assert_eq!(world.catalog.table("t").unwrap().len(), 2);
    }
}
