//! The cleaning-aware logical planner (§5.1).
//!
//! The planner inspects a parsed query and the registered constraints and
//! decides, per table, which rules "affect query correctness" (their
//! attributes overlap the query's attributes) and where the corresponding
//! cleaning operator is placed:
//!
//! * cleaning is pushed **below joins and group-bys** (closer to the data)
//!   so that errors are fixed before they propagate (`push_down_cleaning`),
//! * for group-by queries, cleaning always happens before the aggregation,
//! * rules that do not overlap the query are skipped entirely.
//!
//! The plan produced here is descriptive: the engine interprets it, reusing
//! the physical operators of `daisy-query` and the cleaning operators of
//! this crate.

use daisy_common::{DaisyConfig, DetectionStrategy, Result, RuleId};
use daisy_expr::{ConstraintSet, FunctionalDependency};
use daisy_query::{Catalog, Query};

use crate::cost::planned_detection;
use crate::relaxation::FilterTarget;

/// Where a cleaning step is placed relative to the query operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleaningPlacement {
    /// Directly above the table's scan/filter, before any join (push-down).
    BeforeJoin,
    /// After the joins, on the joined result (only used when push-down is
    /// disabled for ablation).
    AfterJoin,
}

/// One cleaning step the engine must perform for a query.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningStep {
    /// The base table the step cleans.
    pub table: String,
    /// The rule to enforce.
    pub rule: RuleId,
    /// The FD form of the rule, when it is an FD.
    pub fd: Option<FunctionalDependency>,
    /// Which FD side the query's filter restricts (drives relaxation
    /// iterations); meaningless for general DCs.
    pub filter_target: FilterTarget,
    /// Where the step sits in the plan.
    pub placement: CleaningPlacement,
    /// The detection strategy for general-DC steps: the configured knob
    /// refined by the rule's shape (constraints without an index plan, or
    /// equality-free ones under `Auto`, are pinned to pairwise here; a
    /// surviving `Auto` is resolved against key selectivity when the theta
    /// matrix is built).  FD steps always detect via hash grouping, so the
    /// field is informational for them.
    pub detection: DetectionStrategy,
    /// `true` when the engine will run this step's detection over the
    /// table's columnar snapshot (the [`SnapshotMode`](daisy_common::SnapshotMode)
    /// knob resolved against the table size).  The theta build feeds this
    /// into the detection cost model: the columnar index build is cheaper,
    /// which can tip a borderline `Auto` towards the indexed kernel.
    pub snapshot: bool,
}

/// The cleaning-aware plan for one query.
#[derive(Debug, Clone, Default)]
pub struct CleaningPlan {
    /// The cleaning steps, in the order the engine should perform them
    /// (driving table first, then joined tables in join order).
    pub steps: Vec<CleaningStep>,
}

impl CleaningPlan {
    /// Builds the plan for a query given the registered constraints.
    pub fn build(
        query: &Query,
        constraints: &ConstraintSet,
        catalog: &Catalog,
        config: &DaisyConfig,
    ) -> Result<CleaningPlan> {
        let query_attrs = query.referenced_attributes();
        let query_attr_refs: Vec<&str> = query_attrs.iter().map(String::as_str).collect();
        let placement = if config.push_down_cleaning {
            CleaningPlacement::BeforeJoin
        } else {
            CleaningPlacement::AfterJoin
        };
        let mut steps = Vec::new();
        for table_name in query.tables() {
            let table = catalog.table(table_name)?;
            for rule in constraints.rules() {
                // The rule must be expressible over this table's schema.
                let applies_to_table = rule.attributes().iter().all(|a| table.schema().contains(a));
                if !applies_to_table {
                    continue;
                }
                // And it must overlap the query's attributes ((X ∪ Y) ∩
                // (P ∪ W) ≠ ∅, §4.1).  Joined tables are considered touched
                // through their join keys, so a rule on a joined table whose
                // attributes include the join key also applies.
                let overlaps_query = query_attr_refs.iter().any(|a| rule.references(a));
                if !overlaps_query {
                    continue;
                }
                let fd = rule.as_fd();
                let filter_target = match &fd {
                    Some(fd) => classify_filter(query, fd),
                    None => FilterTarget::Other,
                };
                steps.push(CleaningStep {
                    table: table_name.to_string(),
                    rule: rule.id,
                    fd,
                    filter_target,
                    placement,
                    detection: planned_detection(rule, config.detection_strategy),
                    snapshot: config.snapshot_mode.enables(table.len()),
                });
            }
        }
        Ok(CleaningPlan { steps })
    }

    /// The steps that clean a specific table.
    pub fn steps_for(&self, table: &str) -> Vec<&CleaningStep> {
        self.steps.iter().filter(|s| s.table == table).collect()
    }

    /// `true` when no rule overlaps the query.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Classifies which side of an FD the query's filter restricts (Lemmas 1–2).
fn classify_filter(query: &Query, fd: &FunctionalDependency) -> FilterTarget {
    let filter_columns = query.filter.columns();
    let mentions = |attr: &str| {
        filter_columns.iter().any(|c| {
            c == attr || c.ends_with(&format!(".{attr}")) || attr.ends_with(&format!(".{c}"))
        })
    };
    if mentions(&fd.rhs) {
        FilterTarget::Rhs
    } else if fd.lhs.iter().any(|l| mentions(l)) {
        FilterTarget::Lhs
    } else {
        FilterTarget::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};
    use daisy_expr::DenialConstraint;
    use daisy_query::parse_query;
    use daisy_storage::Table;

    fn setup() -> (Catalog, ConstraintSet) {
        let mut catalog = Catalog::new();
        catalog.add(Table::new(
            "lineorder",
            Schema::from_pairs(&[
                ("orderkey", DataType::Int),
                ("suppkey", DataType::Int),
                ("revenue", DataType::Int),
            ])
            .unwrap(),
        ));
        catalog.add(Table::new(
            "supplier",
            Schema::from_pairs(&[("suppkey", DataType::Int), ("address", DataType::Str)]).unwrap(),
        ));
        let mut constraints = ConstraintSet::new();
        constraints.add_fd(&FunctionalDependency::new(&["orderkey"], "suppkey"), "phi");
        constraints.add_fd(&FunctionalDependency::new(&["address"], "suppkey"), "psi");
        (catalog, constraints)
    }

    #[test]
    fn overlapping_fd_yields_step_with_filter_side() {
        let (catalog, constraints) = setup();
        let config = DaisyConfig::default();
        // Filter on the rhs (suppkey) of phi.
        let q = parse_query("SELECT orderkey FROM lineorder WHERE suppkey = 5").unwrap();
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].table, "lineorder");
        assert_eq!(plan.steps[0].filter_target, FilterTarget::Rhs);
        assert_eq!(plan.steps[0].placement, CleaningPlacement::BeforeJoin);

        // Filter on the lhs (orderkey) of phi.
        let q = parse_query("SELECT suppkey FROM lineorder WHERE orderkey < 100").unwrap();
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert_eq!(plan.steps[0].filter_target, FilterTarget::Lhs);
    }

    #[test]
    fn non_overlapping_queries_need_no_cleaning() {
        let (catalog, constraints) = setup();
        let config = DaisyConfig::default();
        let q = parse_query("SELECT revenue FROM lineorder WHERE revenue > 10").unwrap();
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn join_query_cleans_both_tables_with_their_rules() {
        let (catalog, constraints) = setup();
        let config = DaisyConfig::default();
        let q = parse_query(
            "SELECT lineorder.orderkey, supplier.address FROM lineorder \
             JOIN supplier ON lineorder.suppkey = supplier.suppkey \
             WHERE orderkey < 100",
        )
        .unwrap();
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert_eq!(plan.steps_for("lineorder").len(), 1);
        assert_eq!(plan.steps_for("supplier").len(), 1);
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn general_dcs_get_other_filter_target() {
        let (catalog, mut constraints) = setup();
        constraints.add(
            DenialConstraint::parse("dc", "t1.revenue < t2.revenue & t1.suppkey > t2.suppkey")
                .unwrap(),
        );
        let config = DaisyConfig::default().with_cost_model(false);
        let q = parse_query("SELECT * FROM lineorder WHERE revenue > 5").unwrap();
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        let dc_step = plan
            .steps
            .iter()
            .find(|s| s.fd.is_none())
            .expect("general DC step");
        assert_eq!(dc_step.filter_target, FilterTarget::Other);
    }

    #[test]
    fn steps_carry_shape_refined_detection() {
        let (catalog, mut constraints) = setup();
        // Equality-free inequality DC: pinned to pairwise even when the
        // config asks for indexed-by-default behaviour via Auto.
        constraints.add(
            DenialConstraint::parse("dc", "t1.revenue < t2.revenue & t1.suppkey > t2.suppkey")
                .unwrap(),
        );
        let config = DaisyConfig::default().with_detection_strategy(DetectionStrategy::Auto);
        let q = parse_query("SELECT suppkey FROM lineorder WHERE revenue > 5").unwrap();
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        let dc_step = plan.steps.iter().find(|s| s.fd.is_none()).unwrap();
        assert_eq!(dc_step.detection, DetectionStrategy::Pairwise);
        // FD-shaped rules keep their equality key, so Auto survives.
        let fd_step = plan.steps.iter().find(|s| s.fd.is_some()).unwrap();
        assert_eq!(fd_step.detection, DetectionStrategy::Auto);

        // Forcing a strategy flows through to every step with a plan.
        let config = DaisyConfig::default().with_detection_strategy(DetectionStrategy::Indexed);
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert!(plan
            .steps
            .iter()
            .all(|s| s.detection == DetectionStrategy::Indexed));
    }

    #[test]
    fn steps_record_the_snapshot_decision() {
        use daisy_common::SnapshotMode;
        let (catalog, constraints) = setup();
        let q = parse_query("SELECT suppkey FROM lineorder WHERE orderkey < 100").unwrap();
        // Tiny catalog tables stay on the row path under Auto (pinned
        // explicitly: the ambient DAISY_SNAPSHOT env may force a mode)…
        let config = DaisyConfig::default().with_snapshot_mode(SnapshotMode::Auto);
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert!(plan.steps.iter().all(|s| !s.snapshot));
        // …but forcing the knob flips every step.
        let config = DaisyConfig::default().with_snapshot_mode(SnapshotMode::On);
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert!(plan.steps.iter().all(|s| s.snapshot));
        let config = DaisyConfig::default().with_snapshot_mode(SnapshotMode::Off);
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert!(plan.steps.iter().all(|s| !s.snapshot));
    }

    #[test]
    fn push_down_can_be_disabled() {
        let (catalog, constraints) = setup();
        let config = DaisyConfig {
            push_down_cleaning: false,
            ..DaisyConfig::default()
        };
        let q = parse_query("SELECT suppkey FROM lineorder WHERE orderkey < 100").unwrap();
        let plan = CleaningPlan::build(&q, &constraints, &catalog, &config).unwrap();
        assert_eq!(plan.steps[0].placement, CleaningPlacement::AfterJoin);
    }
}
