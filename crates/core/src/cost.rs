//! The cost model of §5.2: traditional (offline) cleaning cost, incremental
//! cleaning cost, and the decision between them.
//!
//! The engine keeps a [`CostTracker`] per (table, rule).  After each query
//! it records the observed quantities (result size, extra tuples, errors,
//! candidate counts) and evaluates Inequality (1): if the projected cost of
//! continuing incrementally exceeds the cost of cleaning the remaining dirty
//! part of the dataset now, the engine switches strategy — the behaviour of
//! Fig. 7 and Fig. 12.
//!
//! The module also hosts the **detection** cost model: the selectivity-driven
//! choice between pairwise (theta-join) and indexed (hash-equality +
//! sort-sweep) candidate enumeration for general DCs (see
//! [`DetectionEstimate`] and [`crate::index`]).

use daisy_common::DetectionStrategy;
use daisy_expr::DenialConstraint;
use daisy_storage::KeyStatistics;
use serde::{Deserialize, Serialize};

/// The concrete detection kernel a [`crate::theta::ThetaMatrix`] runs with,
/// after the [`DetectionStrategy`] knob and the cost model have been
/// resolved against a specific constraint and dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// Enumerate every tuple pair of surviving block pairs.
    Pairwise,
    /// Enumerate candidates through the [`crate::index::ViolationIndex`].
    Indexed,
}

/// Inputs below which the indexed path cannot recoup its build cost: for a
/// handful of tuples the pairwise scan is effectively free.
const SMALL_INPUT_ROWS: usize = 128;

/// Selectivity-driven inputs of the pairwise-vs-indexed decision.
///
/// The estimates are in the same abstract "tuple visit" units as the rest of
/// the cost model: pairwise detection visits every pair once, indexed
/// detection pays a build (hash + sort) pass plus one visit per candidate
/// pair that survives the equality partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionEstimate {
    /// Dataset size `n`.
    pub rows: usize,
    /// Equality-key statistics over the dataset (`distinct` drives the
    /// expected partition size `n / distinct`).
    pub key: KeyStatistics,
    /// `true` when detection would read through a columnar snapshot, which
    /// roughly halves the per-visit constant of the index build (no `Value`
    /// clones, no per-read schema lookups).
    pub columnar: bool,
}

/// The build-cost discount of the columnar read path: sorting and hashing
/// `Copy` column codes costs about half a row visit.
const COLUMNAR_BUILD_FACTOR: f64 = 0.5;

impl DetectionEstimate {
    /// Builds the estimate from the dataset's equality-key statistics,
    /// assuming the row-store read path.
    pub fn new(rows: usize, key: KeyStatistics) -> Self {
        DetectionEstimate {
            rows,
            key,
            columnar: false,
        }
    }

    /// Marks the estimate as reading through a columnar snapshot.
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Cost of pairwise enumeration: the upper-diagonal pair count.
    pub fn pairwise_cost(&self) -> f64 {
        let n = self.rows as f64;
        n * n / 2.0
    }

    /// Cost of indexed enumeration: one hash + sort pass over the dataset
    /// plus the candidate pairs inside the equality partitions.  The
    /// candidate term combines the mean partition size (`Σ |g|² ≈ n · n/d`
    /// for `d` distinct keys of even size) with the worst single partition
    /// (`max_group²`), so a skewed key — one giant group hiding behind many
    /// singletons — is charged its true near-quadratic cost.  The columnar
    /// read path halves the build pass (sorting and hashing `Copy` codes),
    /// shifting the break-even towards the index for snapshot-backed
    /// tables.
    pub fn indexed_cost(&self) -> f64 {
        let n = self.rows as f64;
        let mut build = n * (n.max(2.0)).log2();
        if self.columnar {
            build *= COLUMNAR_BUILD_FACTOR;
        }
        let mean_group = self.key.mean_group().max(1.0);
        let max_group = self.key.max_group as f64;
        build + (n * mean_group).max(max_group * max_group)
    }

    /// The recommended kernel for this dataset under `Auto`: indexed when
    /// the projected candidate enumeration is cheaper than the pairwise
    /// scan, pairwise for tiny inputs where setup cost dominates.
    pub fn recommend(&self) -> DetectionMode {
        if self.rows < SMALL_INPUT_ROWS {
            return DetectionMode::Pairwise;
        }
        if self.indexed_cost() < self.pairwise_cost() {
            DetectionMode::Indexed
        } else {
            DetectionMode::Pairwise
        }
    }

    /// Cost of detecting a batch of `delta_rows` against a **maintained**
    /// index: per delta row, an `O(log group)` membership update plus one
    /// visit per candidate inside its equality partition (`mean_group`,
    /// vetoed by the worst partition like [`DetectionEstimate::indexed_cost`]).
    /// The table-sized build term of the rebuild path is entirely absent —
    /// that is the point of maintaining the index.
    pub fn incremental_cost(&self, delta_rows: usize) -> f64 {
        let d = delta_rows as f64;
        let mean_group = self.key.mean_group().max(1.0);
        let max_group = self.key.max_group as f64;
        let maintenance = d * mean_group.max(2.0).log2();
        maintenance + (d * mean_group).max(d.min(1.0) * max_group)
    }

    /// `true` when detecting a `delta_rows`-row batch through the
    /// maintained index is projected to beat rebuilding the index and
    /// restricting detection to the batch — the `Auto` resolution of the
    /// [`IncrementalMode`](daisy_common::IncrementalMode) knob.  Both
    /// paths enumerate the same `Δ × (T ∪ Δ)` candidates, so the decision
    /// reduces to the maintenance term against the per-batch rebuild pass:
    /// maintenance wins for any batch meaningfully smaller than the table
    /// and only loses for near-table-sized batches over skew-free keys.
    pub fn prefers_incremental(&self, delta_rows: usize) -> bool {
        let n = self.rows as f64;
        let mut rebuild = n * (n.max(2.0)).log2();
        if self.columnar {
            rebuild *= COLUMNAR_BUILD_FACTOR;
        }
        let d = delta_rows as f64;
        let mean_group = self.key.mean_group().max(1.0);
        d * mean_group.max(2.0).log2() < rebuild
    }
}

/// Refines the configured [`DetectionStrategy`] knob against a constraint's
/// *shape* (data-independent): constraints without an index plan can only be
/// checked pairwise, and equality-free constraints gain nothing from the
/// index under `Auto`.  The returned strategy is what the planner records on
/// a [`crate::planner::CleaningStep`]; `Auto` survives only when the final,
/// data-dependent decision belongs to [`DetectionEstimate::recommend`].
pub fn planned_detection(
    constraint: &DenialConstraint,
    knob: DetectionStrategy,
) -> DetectionStrategy {
    match constraint.index_plan() {
        None => DetectionStrategy::Pairwise,
        Some(plan) => match knob {
            DetectionStrategy::Pairwise => DetectionStrategy::Pairwise,
            DetectionStrategy::Indexed => DetectionStrategy::Indexed,
            DetectionStrategy::Auto if plan.has_equality_key() => DetectionStrategy::Auto,
            DetectionStrategy::Auto => DetectionStrategy::Pairwise,
        },
    }
}

/// Cost-model constants describing one (table, rule) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParameters {
    /// Dataset size `n`.
    pub n: usize,
    /// Estimated number of erroneous entities `ε` (tuples in dirty groups).
    pub epsilon: usize,
    /// Estimated number of candidate values per erroneous cell `p`.
    pub p: f64,
    /// `true` for functional dependencies (group-by detection, `O(n)`),
    /// `false` for general DCs (theta-join detection, `O(n²/p)`).
    pub is_fd: bool,
}

impl CostParameters {
    /// The traditional (offline) cleaning cost of §5.2.1:
    /// detection + repair + update, in abstract "tuple visit" units.
    pub fn offline_cost(&self) -> f64 {
        let n = self.n as f64;
        let detection = if self.is_fd { n } else { n * n / 2.0 };
        let repairing = self.epsilon as f64 * n;
        let update = n + self.epsilon as f64 * self.p;
        detection + repairing + update
    }
}

/// Observed per-query quantities, accumulated across a workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostTracker {
    /// The static parameters.
    pub params: CostParameters,
    /// Σ qᵢ — total result tuples returned so far.
    pub total_result_tuples: usize,
    /// Σ eᵢ — total relaxation extras fetched so far.
    pub total_extra_tuples: usize,
    /// Σ εᵢ — total erroneous cells repaired so far.
    pub total_errors_repaired: usize,
    /// Σ candidate values written so far (the update-cost driver).
    pub total_candidates_written: usize,
    /// Accumulated incremental cost (abstract units) actually paid.
    pub accumulated_incremental_cost: f64,
    /// Number of queries executed.
    pub queries: usize,
}

impl Default for CostParameters {
    fn default() -> Self {
        CostParameters {
            n: 0,
            epsilon: 0,
            p: 0.0,
            is_fd: true,
        }
    }
}

impl CostTracker {
    /// Creates a tracker for a table/rule with the given parameters.
    pub fn new(params: CostParameters) -> Self {
        CostTracker {
            params,
            ..CostTracker::default()
        }
    }

    /// The incremental cost of one query per §5.2.2, in the same abstract
    /// units as [`CostParameters::offline_cost`]:
    ///
    /// * relaxation scans the unknown part of the dataset (`u`),
    /// * error detection covers the enhanced result (`qᵢ + eᵢ` for FDs,
    ///   `n·qᵢ/p` for DCs, approximated by the blocks actually compared),
    /// * repairing touches `εᵢ · (qᵢ + eᵢ)`,
    /// * the in-place update pays for the probabilistic values written.
    #[allow(clippy::too_many_arguments)]
    pub fn query_cost(
        &self,
        result_size: usize,
        extra_tuples: usize,
        scanned_unvisited: usize,
        errors: usize,
        candidates_written: usize,
        detection_pairs: usize,
    ) -> f64 {
        let enhanced = (result_size + extra_tuples) as f64;
        let detection = if self.params.is_fd {
            enhanced
        } else {
            detection_pairs as f64
        };
        scanned_unvisited as f64
            + detection
            + errors as f64 * enhanced
            + candidates_written as f64
            + result_size as f64
    }

    /// Records the observed quantities of one query.
    #[allow(clippy::too_many_arguments)]
    pub fn record_query(
        &mut self,
        result_size: usize,
        extra_tuples: usize,
        scanned_unvisited: usize,
        errors: usize,
        candidates_written: usize,
        detection_pairs: usize,
    ) {
        let cost = self.query_cost(
            result_size,
            extra_tuples,
            scanned_unvisited,
            errors,
            candidates_written,
            detection_pairs,
        );
        self.total_result_tuples += result_size;
        self.total_extra_tuples += extra_tuples;
        self.total_errors_repaired += errors;
        self.total_candidates_written += candidates_written;
        self.accumulated_incremental_cost += cost;
        self.queries += 1;
    }

    /// Fraction of the estimated dirty entities already repaired.
    pub fn repaired_fraction(&self) -> f64 {
        if self.params.epsilon == 0 {
            return 1.0;
        }
        (self.total_errors_repaired as f64 / self.params.epsilon as f64).min(1.0)
    }

    /// Estimated cost of cleaning the *remaining* dirty part of the dataset
    /// in one offline pass (what switching to full cleaning would cost now).
    pub fn remaining_full_cost(&self) -> f64 {
        let remaining_errors =
            (self.params.epsilon as f64 * (1.0 - self.repaired_fraction())).max(0.0);
        let n = self.params.n as f64;
        let detection = if self.params.is_fd { n } else { n * n / 2.0 };
        // Remaining repairs are computed with relaxation-style grouping, so
        // the per-error scan is over the dirty groups rather than the whole
        // dataset — a single extra pass plus the update.
        detection + remaining_errors * self.params.p + n
    }

    /// Projected cost of continuing incrementally until the workload has
    /// touched the whole dataset, extrapolated from the average per-query
    /// cost observed so far and the fraction of dirty entities still
    /// unrepaired.
    pub fn projected_incremental_cost(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        let avg = self.accumulated_incremental_cost / self.queries as f64;
        let remaining_fraction = 1.0 - self.repaired_fraction();
        if remaining_fraction <= 0.0 {
            return 0.0;
        }
        // Expected number of future queries needed to cover the remaining
        // dirty entities, assuming each future query repairs errors at the
        // observed average rate.
        let avg_errors_per_query =
            (self.total_errors_repaired as f64 / self.queries as f64).max(1.0);
        let remaining_errors = self.params.epsilon as f64 * remaining_fraction;
        let projected_queries = (remaining_errors / avg_errors_per_query).ceil();
        avg * projected_queries
    }

    /// Evaluates the strategy decision of §5.2.3: `true` when the engine
    /// should switch to cleaning the remaining dirty part of the dataset in
    /// one pass because continuing incrementally is projected to cost more.
    pub fn should_switch_to_full(&self) -> bool {
        if self.queries == 0 || self.params.epsilon == 0 {
            return false;
        }
        self.projected_incremental_cost() > self.remaining_full_cost()
    }

    /// Degenerate check of §5.2.3: with a single query accessing the whole
    /// dataset, the incremental cost equals the offline cost (no relaxation
    /// extras, one full pass).
    pub fn single_full_scan_cost(&self) -> f64 {
        let n = self.params.n as f64;
        let detection = if self.params.is_fd { n } else { n * n / 2.0 };
        n + detection + self.params.epsilon as f64 * n + self.params.epsilon as f64 * self.params.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParameters {
        CostParameters {
            n: 100_000,
            epsilon: 10_000,
            p: 3.0,
            is_fd: true,
        }
    }

    #[test]
    fn offline_cost_scales_with_errors_and_size() {
        let small = CostParameters {
            epsilon: 100,
            ..params()
        };
        assert!(params().offline_cost() > small.offline_cost());
        let dc = CostParameters {
            is_fd: false,
            ..params()
        };
        assert!(dc.offline_cost() > params().offline_cost());
    }

    #[test]
    fn incremental_stays_cheaper_for_selective_workloads() {
        // 50 queries with 2% selectivity, few candidates per error: the
        // accumulated incremental cost must stay below offline cleaning —
        // the situation of Fig. 5/6 where Daisy wins.
        let mut tracker = CostTracker::new(params());
        for _ in 0..50 {
            tracker.record_query(2_000, 200, 2_000, 200, 600, 0);
        }
        assert!(tracker.accumulated_incremental_cost < tracker.params.offline_cost());
        assert!(!tracker.should_switch_to_full());
    }

    #[test]
    fn wide_fanout_workload_triggers_the_switch() {
        // Each query repairs few errors but writes very many candidate
        // values (low suppkey selectivity: each dirty value fans out to many
        // candidates) — the Fig. 7 situation where switching pays off.
        let mut tracker = CostTracker::new(CostParameters {
            n: 100_000,
            epsilon: 80_000,
            p: 40.0,
            is_fd: true,
        });
        for _ in 0..10 {
            tracker.record_query(1_000, 5_000, 60_000, 300, 120_000, 0);
        }
        assert!(tracker.should_switch_to_full());
    }

    #[test]
    fn repaired_fraction_saturates_at_one() {
        let mut tracker = CostTracker::new(CostParameters {
            n: 100,
            epsilon: 10,
            p: 2.0,
            is_fd: true,
        });
        tracker.record_query(50, 5, 50, 20, 40, 0);
        assert_eq!(tracker.repaired_fraction(), 1.0);
        assert!(!tracker.should_switch_to_full());
        assert_eq!(tracker.projected_incremental_cost(), 0.0);
    }

    #[test]
    fn single_full_scan_matches_offline_shape() {
        let tracker = CostTracker::new(params());
        let full = tracker.single_full_scan_cost();
        let offline = tracker.params.offline_cost();
        // Same order of magnitude: both are dominated by ε·n.
        assert!(full / offline < 1.5 && offline / full < 1.5);
    }

    #[test]
    fn detection_estimate_prefers_indexed_for_selective_keys() {
        let selective = DetectionEstimate::new(
            10_000,
            daisy_storage::KeyStatistics {
                rows: 10_000,
                distinct: 100,
                max_group: 150,
            },
        );
        assert_eq!(selective.recommend(), DetectionMode::Indexed);
        assert!(selective.indexed_cost() < selective.pairwise_cost());

        // One giant partition degenerates to the pairwise cost and loses.
        let degenerate = DetectionEstimate::new(
            10_000,
            daisy_storage::KeyStatistics {
                rows: 10_000,
                distinct: 1,
                max_group: 10_000,
            },
        );
        assert_eq!(degenerate.recommend(), DetectionMode::Pairwise);

        // Tiny inputs never pay the index setup.
        let tiny = DetectionEstimate::new(
            20,
            daisy_storage::KeyStatistics {
                rows: 20,
                distinct: 20,
                max_group: 1,
            },
        );
        assert_eq!(tiny.recommend(), DetectionMode::Pairwise);

        // Skew blindness: many singleton keys around one giant group keep
        // the mean low, but the giant group alone is near-quadratic — the
        // max_group term must veto the index.
        let skewed = DetectionEstimate::new(
            10_000,
            daisy_storage::KeyStatistics {
                rows: 10_000,
                distinct: 100,
                max_group: 9_901,
            },
        );
        assert_eq!(skewed.recommend(), DetectionMode::Pairwise);
    }

    #[test]
    fn incremental_detection_beats_rebuilds_for_small_batches() {
        let estimate = DetectionEstimate::new(
            100_000,
            daisy_storage::KeyStatistics {
                rows: 100_000,
                distinct: 1_000,
                max_group: 150,
            },
        );
        // A 1% batch is far cheaper through the maintained index than the
        // 100k-row rebuild the baseline pays per batch.
        assert!(estimate.incremental_cost(1_000) < estimate.indexed_cost());
        assert!(estimate.prefers_incremental(1_000));
        // Cost grows with the batch; an empty batch is free.
        assert!(estimate.incremental_cost(2_000) > estimate.incremental_cost(1_000));
        assert_eq!(estimate.incremental_cost(0), 0.0);
        assert!(estimate.prefers_incremental(0));
        // A batch much larger than the table loses to one rebuild.
        assert!(!estimate.prefers_incremental(10_000_000));
        // The columnar discount shifts the break-even towards rebuilding.
        let columnar = estimate.clone().with_columnar(true);
        assert!(columnar.prefers_incremental(1_000));
    }

    #[test]
    fn columnar_estimates_discount_the_build_pass() {
        let key = daisy_storage::KeyStatistics {
            rows: 10_000,
            distinct: 100,
            max_group: 150,
        };
        let row = DetectionEstimate::new(10_000, key.clone());
        let columnar = DetectionEstimate::new(10_000, key).with_columnar(true);
        // Candidate enumeration is unchanged; only the build term shrinks.
        assert!(columnar.indexed_cost() < row.indexed_cost());
        assert_eq!(columnar.pairwise_cost(), row.pairwise_cost());
        // A borderline input where the build term tips the scale: one
        // near-quadratic skewed group puts the candidate term just below
        // the pairwise cost (50M), so the full row build (≈133k) loses but
        // the discounted columnar build (≈66k) wins.
        let borderline_key = daisy_storage::KeyStatistics {
            rows: 10_000,
            distinct: 100,
            max_group: 7_065,
        };
        let row = DetectionEstimate::new(10_000, borderline_key.clone());
        let columnar = DetectionEstimate::new(10_000, borderline_key).with_columnar(true);
        assert_eq!(row.recommend(), DetectionMode::Pairwise);
        assert_eq!(columnar.recommend(), DetectionMode::Indexed);
    }

    #[test]
    fn planned_detection_refines_by_constraint_shape() {
        use daisy_common::DetectionStrategy;
        use daisy_expr::DenialConstraint;

        let with_eq =
            DenialConstraint::parse("a", "t1.x = t2.x & t1.y < t2.y & t1.z > t2.z").unwrap();
        let no_eq = DenialConstraint::parse("b", "t1.y < t2.y & t1.z > t2.z").unwrap();
        let single = DenialConstraint::parse("c", "t1.y > 5").unwrap();

        // Auto keeps its options open only when an equality key exists.
        assert_eq!(
            planned_detection(&with_eq, DetectionStrategy::Auto),
            DetectionStrategy::Auto
        );
        assert_eq!(
            planned_detection(&no_eq, DetectionStrategy::Auto),
            DetectionStrategy::Pairwise
        );
        // Forcing indexed is honoured whenever a plan exists at all.
        assert_eq!(
            planned_detection(&no_eq, DetectionStrategy::Indexed),
            DetectionStrategy::Indexed
        );
        // Constraints without a plan are always pairwise.
        assert_eq!(
            planned_detection(&single, DetectionStrategy::Indexed),
            DetectionStrategy::Pairwise
        );
        assert_eq!(
            planned_detection(&with_eq, DetectionStrategy::Pairwise),
            DetectionStrategy::Pairwise
        );
    }

    #[test]
    fn clean_dataset_never_switches() {
        let mut tracker = CostTracker::new(CostParameters {
            n: 1000,
            epsilon: 0,
            p: 0.0,
            is_fd: true,
        });
        tracker.record_query(100, 0, 900, 0, 0, 0);
        assert!(!tracker.should_switch_to_full());
        assert_eq!(tracker.repaired_fraction(), 1.0);
    }
}
