//! The cost model of §5.2: traditional (offline) cleaning cost, incremental
//! cleaning cost, and the decision between them.
//!
//! The engine keeps a [`CostTracker`] per (table, rule).  After each query
//! it records the observed quantities (result size, extra tuples, errors,
//! candidate counts) and evaluates Inequality (1): if the projected cost of
//! continuing incrementally exceeds the cost of cleaning the remaining dirty
//! part of the dataset now, the engine switches strategy — the behaviour of
//! Fig. 7 and Fig. 12.

use serde::{Deserialize, Serialize};

/// Cost-model constants describing one (table, rule) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParameters {
    /// Dataset size `n`.
    pub n: usize,
    /// Estimated number of erroneous entities `ε` (tuples in dirty groups).
    pub epsilon: usize,
    /// Estimated number of candidate values per erroneous cell `p`.
    pub p: f64,
    /// `true` for functional dependencies (group-by detection, `O(n)`),
    /// `false` for general DCs (theta-join detection, `O(n²/p)`).
    pub is_fd: bool,
}

impl CostParameters {
    /// The traditional (offline) cleaning cost of §5.2.1:
    /// detection + repair + update, in abstract "tuple visit" units.
    pub fn offline_cost(&self) -> f64 {
        let n = self.n as f64;
        let detection = if self.is_fd { n } else { n * n / 2.0 };
        let repairing = self.epsilon as f64 * n;
        let update = n + self.epsilon as f64 * self.p;
        detection + repairing + update
    }
}

/// Observed per-query quantities, accumulated across a workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostTracker {
    /// The static parameters.
    pub params: CostParameters,
    /// Σ qᵢ — total result tuples returned so far.
    pub total_result_tuples: usize,
    /// Σ eᵢ — total relaxation extras fetched so far.
    pub total_extra_tuples: usize,
    /// Σ εᵢ — total erroneous cells repaired so far.
    pub total_errors_repaired: usize,
    /// Σ candidate values written so far (the update-cost driver).
    pub total_candidates_written: usize,
    /// Accumulated incremental cost (abstract units) actually paid.
    pub accumulated_incremental_cost: f64,
    /// Number of queries executed.
    pub queries: usize,
}

impl Default for CostParameters {
    fn default() -> Self {
        CostParameters {
            n: 0,
            epsilon: 0,
            p: 0.0,
            is_fd: true,
        }
    }
}

impl CostTracker {
    /// Creates a tracker for a table/rule with the given parameters.
    pub fn new(params: CostParameters) -> Self {
        CostTracker {
            params,
            ..CostTracker::default()
        }
    }

    /// The incremental cost of one query per §5.2.2, in the same abstract
    /// units as [`CostParameters::offline_cost`]:
    ///
    /// * relaxation scans the unknown part of the dataset (`u`),
    /// * error detection covers the enhanced result (`qᵢ + eᵢ` for FDs,
    ///   `n·qᵢ/p` for DCs, approximated by the blocks actually compared),
    /// * repairing touches `εᵢ · (qᵢ + eᵢ)`,
    /// * the in-place update pays for the probabilistic values written.
    #[allow(clippy::too_many_arguments)]
    pub fn query_cost(
        &self,
        result_size: usize,
        extra_tuples: usize,
        scanned_unvisited: usize,
        errors: usize,
        candidates_written: usize,
        detection_pairs: usize,
    ) -> f64 {
        let enhanced = (result_size + extra_tuples) as f64;
        let detection = if self.params.is_fd {
            enhanced
        } else {
            detection_pairs as f64
        };
        scanned_unvisited as f64
            + detection
            + errors as f64 * enhanced
            + candidates_written as f64
            + result_size as f64
    }

    /// Records the observed quantities of one query.
    #[allow(clippy::too_many_arguments)]
    pub fn record_query(
        &mut self,
        result_size: usize,
        extra_tuples: usize,
        scanned_unvisited: usize,
        errors: usize,
        candidates_written: usize,
        detection_pairs: usize,
    ) {
        let cost = self.query_cost(
            result_size,
            extra_tuples,
            scanned_unvisited,
            errors,
            candidates_written,
            detection_pairs,
        );
        self.total_result_tuples += result_size;
        self.total_extra_tuples += extra_tuples;
        self.total_errors_repaired += errors;
        self.total_candidates_written += candidates_written;
        self.accumulated_incremental_cost += cost;
        self.queries += 1;
    }

    /// Fraction of the estimated dirty entities already repaired.
    pub fn repaired_fraction(&self) -> f64 {
        if self.params.epsilon == 0 {
            return 1.0;
        }
        (self.total_errors_repaired as f64 / self.params.epsilon as f64).min(1.0)
    }

    /// Estimated cost of cleaning the *remaining* dirty part of the dataset
    /// in one offline pass (what switching to full cleaning would cost now).
    pub fn remaining_full_cost(&self) -> f64 {
        let remaining_errors =
            (self.params.epsilon as f64 * (1.0 - self.repaired_fraction())).max(0.0);
        let n = self.params.n as f64;
        let detection = if self.params.is_fd { n } else { n * n / 2.0 };
        // Remaining repairs are computed with relaxation-style grouping, so
        // the per-error scan is over the dirty groups rather than the whole
        // dataset — a single extra pass plus the update.
        detection + remaining_errors * self.params.p + n
    }

    /// Projected cost of continuing incrementally until the workload has
    /// touched the whole dataset, extrapolated from the average per-query
    /// cost observed so far and the fraction of dirty entities still
    /// unrepaired.
    pub fn projected_incremental_cost(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        let avg = self.accumulated_incremental_cost / self.queries as f64;
        let remaining_fraction = 1.0 - self.repaired_fraction();
        if remaining_fraction <= 0.0 {
            return 0.0;
        }
        // Expected number of future queries needed to cover the remaining
        // dirty entities, assuming each future query repairs errors at the
        // observed average rate.
        let avg_errors_per_query =
            (self.total_errors_repaired as f64 / self.queries as f64).max(1.0);
        let remaining_errors = self.params.epsilon as f64 * remaining_fraction;
        let projected_queries = (remaining_errors / avg_errors_per_query).ceil();
        avg * projected_queries
    }

    /// Evaluates the strategy decision of §5.2.3: `true` when the engine
    /// should switch to cleaning the remaining dirty part of the dataset in
    /// one pass because continuing incrementally is projected to cost more.
    pub fn should_switch_to_full(&self) -> bool {
        if self.queries == 0 || self.params.epsilon == 0 {
            return false;
        }
        self.projected_incremental_cost() > self.remaining_full_cost()
    }

    /// Degenerate check of §5.2.3: with a single query accessing the whole
    /// dataset, the incremental cost equals the offline cost (no relaxation
    /// extras, one full pass).
    pub fn single_full_scan_cost(&self) -> f64 {
        let n = self.params.n as f64;
        let detection = if self.params.is_fd { n } else { n * n / 2.0 };
        n + detection + self.params.epsilon as f64 * n + self.params.epsilon as f64 * self.params.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParameters {
        CostParameters {
            n: 100_000,
            epsilon: 10_000,
            p: 3.0,
            is_fd: true,
        }
    }

    #[test]
    fn offline_cost_scales_with_errors_and_size() {
        let small = CostParameters {
            epsilon: 100,
            ..params()
        };
        assert!(params().offline_cost() > small.offline_cost());
        let dc = CostParameters {
            is_fd: false,
            ..params()
        };
        assert!(dc.offline_cost() > params().offline_cost());
    }

    #[test]
    fn incremental_stays_cheaper_for_selective_workloads() {
        // 50 queries with 2% selectivity, few candidates per error: the
        // accumulated incremental cost must stay below offline cleaning —
        // the situation of Fig. 5/6 where Daisy wins.
        let mut tracker = CostTracker::new(params());
        for _ in 0..50 {
            tracker.record_query(2_000, 200, 2_000, 200, 600, 0);
        }
        assert!(tracker.accumulated_incremental_cost < tracker.params.offline_cost());
        assert!(!tracker.should_switch_to_full());
    }

    #[test]
    fn wide_fanout_workload_triggers_the_switch() {
        // Each query repairs few errors but writes very many candidate
        // values (low suppkey selectivity: each dirty value fans out to many
        // candidates) — the Fig. 7 situation where switching pays off.
        let mut tracker = CostTracker::new(CostParameters {
            n: 100_000,
            epsilon: 80_000,
            p: 40.0,
            is_fd: true,
        });
        for _ in 0..10 {
            tracker.record_query(1_000, 5_000, 60_000, 300, 120_000, 0);
        }
        assert!(tracker.should_switch_to_full());
    }

    #[test]
    fn repaired_fraction_saturates_at_one() {
        let mut tracker = CostTracker::new(CostParameters {
            n: 100,
            epsilon: 10,
            p: 2.0,
            is_fd: true,
        });
        tracker.record_query(50, 5, 50, 20, 40, 0);
        assert_eq!(tracker.repaired_fraction(), 1.0);
        assert!(!tracker.should_switch_to_full());
        assert_eq!(tracker.projected_incremental_cost(), 0.0);
    }

    #[test]
    fn single_full_scan_matches_offline_shape() {
        let tracker = CostTracker::new(params());
        let full = tracker.single_full_scan_cost();
        let offline = tracker.params.offline_cost();
        // Same order of magnitude: both are dominated by ε·n.
        assert!(full / offline < 1.5 && offline / full < 1.5);
    }

    #[test]
    fn clean_dataset_never_switches() {
        let mut tracker = CostTracker::new(CostParameters {
            n: 1000,
            epsilon: 0,
            p: 0.0,
            is_fd: true,
        });
        tracker.record_query(100, 0, 900, 0, 0, 0);
        assert!(!tracker.should_switch_to_full());
        assert_eq!(tracker.repaired_fraction(), 1.0);
    }
}
