//! Merging candidate fixes across multiple rules (§4.3).
//!
//! When several constraints share attributes, a dirty cell may receive
//! candidate fixes from each of them.  The paper merges them by taking the
//! union of the candidate values and adjusting the probabilities to reflect
//! the union of the evidence sets (`P(X | Y ∪ Z)`); Lemma 4 shows the merge
//! is commutative, which this module's tests verify directly.
//!
//! In the storage layer, `Cell::merge_candidates` already implements the
//! per-cell union; what this module adds is merging at the *delta* level —
//! combining the deltas produced by independently cleaning each rule into a
//! single delta per cell — and recomputing probabilities from the combined
//! per-rule evidence kept in the provenance store (used when a new rule
//! arrives later, Table 7).

use std::collections::HashMap;

use daisy_common::{ColumnId, TupleId};
use daisy_storage::{Candidate, Cell, CellUpdate, Delta, ProvenanceStore};

/// Merges per-rule deltas into one delta with a single update per cell.
///
/// Candidates proposed by more than one rule have their weights summed
/// before normalisation — the frequency interpretation of conditioning on
/// the union of the evidence sets.
pub fn merge_deltas(deltas: &[Delta]) -> Delta {
    let mut per_cell: HashMap<(TupleId, ColumnId), Vec<Candidate>> = HashMap::new();
    let mut order: Vec<(TupleId, ColumnId)> = Vec::new();
    for delta in deltas {
        for update in delta.updates() {
            let key = (update.tuple, update.column);
            let entry = per_cell.entry(key).or_insert_with(|| {
                order.push(key);
                Vec::new()
            });
            match &update.cell {
                Cell::Probabilistic(cands) => {
                    for cand in cands {
                        if let Some(existing) = entry.iter_mut().find(|c| c.value == cand.value) {
                            existing.probability += cand.probability;
                        } else {
                            entry.push(cand.clone());
                        }
                    }
                }
                Cell::Determinate(v) => {
                    let cand = Candidate::exact(v.clone(), 1.0);
                    if let Some(existing) = entry.iter_mut().find(|c| c.value == cand.value) {
                        existing.probability += 1.0;
                    } else {
                        entry.push(cand);
                    }
                }
            }
        }
    }
    let mut merged = Delta::new();
    for key in order {
        let candidates = per_cell.remove(&key).expect("key recorded in order");
        merged.push(CellUpdate {
            tuple: key.0,
            column: key.1,
            cell: Cell::probabilistic(candidates),
        });
    }
    merged
}

/// Rebuilds a cell's merged candidate set from all rule evidence recorded in
/// the provenance store (used when a new rule is added incrementally: the
/// new rule's evidence is appended and the cell is recomputed without
/// re-running the earlier rules).
pub fn rebuild_cell_from_provenance(
    provenance: &ProvenanceStore,
    tuple: TupleId,
    column: ColumnId,
) -> Option<Cell> {
    let prov = provenance.cell(tuple, column)?;
    if prov.evidence.is_empty() {
        return None;
    }
    let mut merged: Vec<Candidate> = Vec::new();
    for evidence in &prov.evidence {
        for cand in &evidence.candidates {
            if let Some(existing) = merged.iter_mut().find(|c| c.value == cand.value) {
                existing.probability += cand.probability;
            } else {
                merged.push(cand.clone());
            }
        }
    }
    Some(Cell::probabilistic(merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{RuleId, Value};
    use daisy_storage::RuleEvidence;

    fn delta_with(tuple: u64, column: u64, values: &[(&str, f64)]) -> Delta {
        let mut d = Delta::new();
        d.push_update(
            TupleId::new(tuple),
            ColumnId::new(column),
            Cell::probabilistic(
                values
                    .iter()
                    .map(|(v, p)| Candidate::exact(Value::from(*v), *p))
                    .collect(),
            ),
        );
        d
    }

    #[test]
    fn merge_is_commutative_lemma_4() {
        // Rule 1 proposes {CA 0.5, NY 0.5}; rule 2 proposes {CA 1.0}.
        let d1 = delta_with(1, 0, &[("CA", 0.5), ("NY", 0.5)]);
        let d2 = delta_with(1, 0, &[("CA", 1.0)]);
        let ab = merge_deltas(&[d1.clone(), d2.clone()]);
        let ba = merge_deltas(&[d2, d1]);
        let cell_ab = &ab.updates()[0].cell;
        let cell_ba = &ba.updates()[0].cell;
        // Same candidate set and same probabilities regardless of order.
        for cand in cell_ab.candidates() {
            let other = cell_ba
                .candidates()
                .iter()
                .find(|c| c.value == cand.value)
                .expect("candidate present in both orders");
            assert!((cand.probability - other.probability).abs() < 1e-12);
        }
        assert_eq!(cell_ab.candidate_count(), cell_ba.candidate_count());
    }

    #[test]
    fn merge_unions_distinct_cells_without_interference() {
        let d1 = delta_with(1, 0, &[("A", 1.0)]);
        let d2 = delta_with(2, 1, &[("B", 1.0)]);
        let merged = merge_deltas(&[d1, d2]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.touched_tuples().len(), 2);
    }

    #[test]
    fn shared_candidates_gain_weight() {
        let d1 = delta_with(1, 0, &[("CA", 0.5), ("NY", 0.5)]);
        let d2 = delta_with(1, 0, &[("CA", 0.5), ("TX", 0.5)]);
        let merged = merge_deltas(&[d1, d2]);
        let cell = &merged.updates()[0].cell;
        assert_eq!(cell.candidate_count(), 3);
        let ca = cell
            .candidates()
            .iter()
            .find(|c| c.value.could_equal(&Value::from("CA")))
            .unwrap();
        let ny = cell
            .candidates()
            .iter()
            .find(|c| c.value.could_equal(&Value::from("NY")))
            .unwrap();
        assert!(ca.probability > ny.probability);
    }

    #[test]
    fn rebuild_from_provenance_merges_rule_evidence() {
        let mut prov = ProvenanceStore::new();
        let (t, c) = (TupleId::new(5), ColumnId::new(1));
        prov.record_original(t, c, Value::from("SF"));
        prov.record_evidence(
            t,
            c,
            RuleEvidence {
                rule: RuleId::new(0),
                conflicting: vec![TupleId::new(1)],
                candidates: vec![
                    Candidate::exact(Value::from("LA"), 2.0),
                    Candidate::exact(Value::from("SF"), 1.0),
                ],
            },
        );
        prov.record_evidence(
            t,
            c,
            RuleEvidence {
                rule: RuleId::new(1),
                conflicting: vec![TupleId::new(2)],
                candidates: vec![Candidate::exact(Value::from("LA"), 1.0)],
            },
        );
        let cell = rebuild_cell_from_provenance(&prov, t, c).unwrap();
        assert_eq!(cell.candidate_count(), 2);
        let la = cell
            .candidates()
            .iter()
            .find(|cd| cd.value.could_equal(&Value::from("LA")))
            .unwrap();
        assert!((la.probability - 0.75).abs() < 1e-12);
        assert!(rebuild_cell_from_provenance(&prov, TupleId::new(9), c).is_none());
    }
}
