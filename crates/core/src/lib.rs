//! # daisy-core
//!
//! The primary contribution of the Daisy paper (Giannakopoulou et al.,
//! SIGMOD 2020): cleaning denial-constraint violations *through relaxation*,
//! interleaved with query execution.
//!
//! * [`fd_index::FdIndex`] — pre-computed lhs/rhs group indexes for a
//!   functional dependency (the statistics Daisy pre-computes, §6),
//! * [`relaxation`] — Algorithm 1: query-result relaxation for FDs, with the
//!   iteration / result-size estimates of Lemmas 1–3,
//! * [`clean_select`] — the `cleanσ` operator for FDs (§4.1),
//! * [`index`] — the violation-index subsystem: hash-equality partitioning
//!   plus sort-based inequality sweeps for near-linear general-DC detection,
//! * [`theta`] — the partitioned cartesian-product matrix and incremental
//!   partial theta-join used to detect general-DC violations (§4.2), with a
//!   per-rule choice between pairwise and indexed candidate enumeration,
//! * [`accuracy`] — Algorithm 2: error estimation, accuracy, and support,
//! * [`clean_dc`] — the `cleanσ` operator for general DCs with holistic,
//!   SAT-assisted candidate-range fixes (§4.2),
//! * [`clean_join`] — the `clean⋈` operator (§4.4),
//! * [`multirule`] — probability merging across overlapping rules (§4.3),
//! * [`repair`] — materialising probabilistic repairs into a deterministic
//!   relation (the `DaisyP` selection of Table 5 plus human-in-the-loop
//!   accepts),
//! * [`cost`] — the cost model and the incremental-vs-full decision (§5.2),
//! * [`planner`] — the cleaning-aware logical planner (§5.1),
//! * [`engine`] — [`engine::DaisyEngine`], the query-driven cleaning session
//!   that gradually turns a dirty dataset probabilistic (§6),
//! * [`world`] — [`world::WorldState`], the engine's cheaply cloneable
//!   (copy-on-write) bundle of tables and derived cleaning structures,
//! * [`session`] — the concurrent multi-session layer:
//!   [`session::EngineShared`] (the versioned canonical world) and
//!   [`session::CleaningSession`] (per-request copy-on-write handles with a
//!   serialized, optimistic commit path),
//! * [`durability`] — the bridge to the `daisy-wal` write-ahead log:
//!   commit records, checkpoint serialization, recovery, and the
//!   [`durability::WorldSnapshot`] time-travel view.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accuracy;
pub mod clean_dc;
pub mod clean_join;
pub mod clean_select;
pub mod cost;
pub mod durability;
pub mod engine;
pub mod fd_index;
pub mod index;
pub mod multirule;
pub mod planner;
pub mod relaxation;
pub mod repair;
pub mod report;
pub mod session;
pub mod theta;
pub mod world;

pub use cost::{DetectionEstimate, DetectionMode};
pub use durability::WorldSnapshot;
pub use engine::{DaisyEngine, QueryOutcome};
pub use fd_index::FdIndex;
pub use index::{MaintainedIndex, ViolationIndex};
pub use planner::{CleaningPlan, CleaningStep};
pub use repair::{
    accept_candidate, materialize_repairs, restore_originals, AppliedRepair, MaterializeOutcome,
    RepairPolicy,
};
pub use report::{CleaningReport, CleaningStrategy, SessionReport};
pub use session::{CleaningSession, CommitCause, CommitReceipt, EngineShared};
pub use world::WorldState;
