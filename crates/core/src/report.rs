//! Per-query and per-session cleaning reports.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Which cleaning strategy was used for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CleaningStrategy {
    /// Only the query result (after relaxation) was cleaned.
    Incremental,
    /// The engine cleaned the remaining dirty part of the dataset during
    /// this query (cost-model switch, §5.2.3, or accuracy-threshold switch,
    /// Algorithm 2).
    FullRemaining,
    /// No rule overlapped the query; no cleaning work was done.
    NotNeeded,
}

/// What one query cost and produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleaningReport {
    /// The query, rendered as text.
    pub query: String,
    /// Which strategy was applied.
    pub strategy: CleaningStrategy,
    /// Number of result tuples returned to the user.
    pub result_tuples: usize,
    /// Correlated tuples fetched by relaxation.
    pub extra_tuples: usize,
    /// Relaxation iterations performed.
    pub relaxation_iterations: usize,
    /// Cells that received candidate fixes during this query.
    pub errors_repaired: usize,
    /// Cell updates applied back to base tables.
    pub cells_updated: usize,
    /// Estimated accuracy (1.0 for FDs, Algorithm 2's estimate for DCs).
    pub estimated_accuracy: f64,
    /// Wall-clock time spent answering and cleaning.
    pub elapsed: Duration,
}

impl CleaningReport {
    /// An empty report for a query that required no cleaning.
    pub fn not_needed(query: String, result_tuples: usize, elapsed: Duration) -> Self {
        CleaningReport {
            query,
            strategy: CleaningStrategy::NotNeeded,
            result_tuples,
            extra_tuples: 0,
            relaxation_iterations: 0,
            errors_repaired: 0,
            cells_updated: 0,
            estimated_accuracy: 1.0,
            elapsed,
        }
    }
}

/// Aggregate statistics over a whole query session.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionReport {
    /// Per-query reports, in execution order.
    pub queries: Vec<CleaningReport>,
}

impl SessionReport {
    /// Total wall-clock time across all queries.
    pub fn total_elapsed(&self) -> Duration {
        self.queries.iter().map(|q| q.elapsed).sum()
    }

    /// Cumulative elapsed time after each query (the series plotted in the
    /// paper's cumulative-time figures, Figs. 7, 8, 11, 12).
    pub fn cumulative_elapsed(&self) -> Vec<Duration> {
        let mut acc = Duration::ZERO;
        self.queries
            .iter()
            .map(|q| {
                acc += q.elapsed;
                acc
            })
            .collect()
    }

    /// Total cells repaired across the session.
    pub fn total_errors_repaired(&self) -> usize {
        self.queries.iter().map(|q| q.errors_repaired).sum()
    }

    /// The index of the first query at which the engine switched to full
    /// cleaning, if it ever did.
    pub fn switch_point(&self) -> Option<usize> {
        self.queries
            .iter()
            .position(|q| q.strategy == CleaningStrategy::FullRemaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(strategy: CleaningStrategy, millis: u64, errors: usize) -> CleaningReport {
        CleaningReport {
            query: "q".into(),
            strategy,
            result_tuples: 10,
            extra_tuples: 2,
            relaxation_iterations: 1,
            errors_repaired: errors,
            cells_updated: errors,
            estimated_accuracy: 1.0,
            elapsed: Duration::from_millis(millis),
        }
    }

    #[test]
    fn session_aggregates() {
        let mut session = SessionReport::default();
        session
            .queries
            .push(report(CleaningStrategy::Incremental, 10, 3));
        session
            .queries
            .push(report(CleaningStrategy::Incremental, 20, 2));
        session
            .queries
            .push(report(CleaningStrategy::FullRemaining, 50, 10));
        assert_eq!(session.total_elapsed(), Duration::from_millis(80));
        assert_eq!(
            session.cumulative_elapsed(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(30),
                Duration::from_millis(80)
            ]
        );
        assert_eq!(session.total_errors_repaired(), 15);
        assert_eq!(session.switch_point(), Some(2));
    }

    #[test]
    fn session_without_switch() {
        let mut session = SessionReport::default();
        session
            .queries
            .push(report(CleaningStrategy::NotNeeded, 5, 0));
        assert_eq!(session.switch_point(), None);
        assert_eq!(session.total_errors_repaired(), 0);
    }
}
