//! The `cleanσ` operator for general denial constraints (§4.2).
//!
//! Detection uses the incremental partial theta-join of [`crate::theta`];
//! repair follows the holistic-cleaning style the paper adopts: every
//! violated atom yields candidate *ranges* that would invert it, the
//! original value is kept as an alternative candidate, and probabilities are
//! frequency based (one share per possible fix).  For constraints with more
//! than two atoms a SAT encoding decides which subset of atoms must invert
//! their condition (the minimal repair), using the DPLL solver of
//! `daisy-expr`.

use std::collections::HashMap;

use daisy_common::{ColumnId, Result, Schema, TupleId, Value};
use daisy_exec::ExecContext;
use daisy_expr::{ComparisonOp, DenialConstraint, Literal, Operand, SatSolver, Violation};
use daisy_storage::{Candidate, CandidateValue, Cell, Delta, ProvenanceStore, RuleEvidence, Tuple};

use crate::theta::ThetaCheckStats;

/// The outcome of repairing a set of general-DC violations.
#[derive(Debug, Clone, Default)]
pub struct DcCleanOutcome {
    /// The isolated cell updates (candidate ranges) to apply to the table.
    pub delta: Delta,
    /// Number of cells that received candidate fixes.
    pub errors_detected: usize,
    /// The violations that were repaired.
    pub violations: Vec<Violation>,
    /// Theta-join statistics accumulated during detection (filled by the
    /// caller; carried here for reporting convenience).
    pub check_stats: ThetaCheckStats,
}

/// A candidate-range fix for one cell, produced while examining one
/// violation.  Fixes are computed per violation (in parallel) and merged in
/// violation order, so the per-cell candidate lists are identical to a
/// sequential pass.
struct RangeFix {
    /// The targeted `(tuple, column)` cell.
    key: (TupleId, usize),
    /// The cell's current value (becomes the kept original candidate).
    original: Value,
    /// The range candidate inverting one atom of the constraint.
    candidate: Candidate,
    /// The other tuples of the violation this fix stems from.
    conflicting: Vec<TupleId>,
}

/// Computes candidate-range fixes for a list of detected violations and
/// packages them as a delta over the base table.
///
/// The per-violation fix construction (atom inversion, range computation) is
/// partitioned over `ctx`'s workers; the resulting fixes are merged and the
/// delta is materialised serially in canonical (tuple id, column) order, so
/// the outcome is identical for every worker count.
///
/// `tuples_by_id` must be able to resolve every tuple id mentioned by the
/// violations (typically the base table's tuples); the engine builds it in
/// parallel with [`crate::index::id_index`].
pub fn repair_dc_violations(
    ctx: &ExecContext,
    schema: &Schema,
    constraint: &DenialConstraint,
    violations: &[Violation],
    tuples_by_id: &HashMap<TupleId, &Tuple>,
    provenance: &mut ProvenanceStore,
) -> Result<DcCleanOutcome> {
    let mut outcome = DcCleanOutcome {
        violations: violations.to_vec(),
        ..DcCleanOutcome::default()
    };
    // Decide which atoms may invert: encode "not all atoms stay true" and
    // ask for a minimal set of inverted atoms.  For the common two-atom
    // constraints this is trivially "invert one of the two", but the
    // encoding also covers wider constraints uniformly.  The encoding only
    // depends on the constraint, so it is solved once, outside the
    // per-violation fan-out.
    let m = constraint.predicates.len();
    let mut solver = SatSolver::new(m);
    solver.add_clause((0..m).map(Literal::neg).collect());
    let assignment = solver
        .solve_minimal_false()
        .unwrap_or_else(|| vec![false; m]);
    // Every atom is a possible fix target; the minimal SAT assignment tells
    // us how many must invert simultaneously — one for the plain deny-all
    // clause, more if the encoding ever gains extra clauses (e.g. immutable
    // attributes).  Probabilities give that many shares spread over the `m`
    // candidate atoms, which for the deny-all clause is the one-share-per-fix
    // scheme of Example 5.
    let min_inversions = assignment.iter().filter(|kept| !**kept).count().max(1);
    let share = min_inversions as f64 / m as f64;

    // Fan out: each worker computes the range fixes of a contiguous slice of
    // violations; per-violation fix lists come back in violation order.
    let fixes_per_violation: Vec<Vec<RangeFix>> =
        daisy_exec::par_flat_map_chunks(ctx, violations, |chunk| {
            chunk
                .iter()
                .map(|violation| {
                    let bound: Vec<&Tuple> = violation
                        .tuples
                        .iter()
                        .filter_map(|id| tuples_by_id.get(id).copied())
                        .collect();
                    if bound.len() != constraint.tuple_count {
                        return Ok(Vec::new()); // tuple no longer present; skip
                    }
                    let mut fixes = Vec::new();
                    for pred in &constraint.predicates {
                        // Fix by changing the *left* operand's tuple
                        // attribute so the atom inverts, and symmetrically
                        // the right operand's.
                        fixes.extend(range_fix(
                            schema,
                            &pred.left,
                            pred.op,
                            &pred.right,
                            &bound,
                            share,
                            violation,
                        )?);
                        fixes.extend(range_fix(
                            schema,
                            &pred.right,
                            pred.op.flip(),
                            &pred.left,
                            &bound,
                            share,
                            violation,
                        )?);
                    }
                    Ok(fixes)
                })
                .collect::<Result<Vec<Vec<RangeFix>>>>()
        })?;

    // Collect candidate fixes per (tuple, column) so that a cell involved in
    // many violations receives the union of its candidates in one update.
    // Merging in violation order reproduces the sequential candidate order.
    let mut pending: HashMap<(TupleId, usize), Vec<Candidate>> = HashMap::new();
    let mut originals: HashMap<(TupleId, usize), Value> = HashMap::new();
    let mut conflicts: HashMap<(TupleId, usize), Vec<TupleId>> = HashMap::new();
    for fix in fixes_per_violation.into_iter().flatten() {
        originals.entry(fix.key).or_insert(fix.original);
        conflicts
            .entry(fix.key)
            .or_default()
            .extend(fix.conflicting);
        pending.entry(fix.key).or_default().push(fix.candidate);
    }

    // Materialise one probabilistic cell per touched (tuple, column): the
    // original value keeps the remaining probability mass.
    let mut keys: Vec<(TupleId, usize)> = pending.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (tuple_id, column) = key;
        let mut candidates = pending.remove(&key).expect("key listed");
        let original = originals.get(&key).cloned().unwrap_or(Value::Null);
        // The original value stays a candidate ("each attribute value will
        // either maintain its original value, or will obtain a value
        // satisfying the range").  It receives the unassigned probability
        // mass, but never less than an average range candidate so it is not
        // drowned out when a cell participates in many violations; the cell
        // constructor re-normalises.
        let range_mass: f64 = candidates.iter().map(|c| c.probability).sum();
        let avg_range = range_mass / candidates.len().max(1) as f64;
        let keep_mass = (1.0 - range_mass).max(avg_range);
        candidates.push(Candidate::exact(original.clone(), keep_mass));
        let column_id = ColumnId::new(column as u64);
        provenance.record_original(tuple_id, column_id, original);
        provenance.record_evidence(
            tuple_id,
            column_id,
            RuleEvidence {
                rule: constraint.id,
                conflicting: conflicts.get(&key).cloned().unwrap_or_default(),
                candidates: candidates.clone(),
            },
        );
        outcome
            .delta
            .push_update(tuple_id, column_id, Cell::probabilistic(candidates));
        outcome.errors_detected += 1;
    }
    Ok(outcome)
}

/// Computes the range candidate that inverts `target op other` by changing
/// the `target` operand's attribute, if one exists.
///
/// Pure with respect to the violation set: the returned fix depends only on
/// the constraint and the bound tuples, which is what lets
/// [`repair_dc_violations`] evaluate violations in parallel.
fn range_fix(
    schema: &Schema,
    target: &Operand,
    op: ComparisonOp,
    other: &Operand,
    bound: &[&Tuple],
    share: f64,
    violation: &Violation,
) -> Result<Option<RangeFix>> {
    let (
        Operand::Attr {
            tuple: t_idx,
            column,
        },
        Operand::Attr {
            tuple: o_idx,
            column: o_col,
        },
    ) = (target, other)
    else {
        return Ok(None); // constant operands cannot be repaired
    };
    let Some(target_tuple) = bound.get(*t_idx) else {
        return Ok(None);
    };
    let Some(other_tuple) = bound.get(*o_idx) else {
        return Ok(None);
    };
    let col_idx = schema.index_of(column)?;
    let other_idx = schema.index_of(o_col)?;
    let current = target_tuple.value(col_idx)?;
    let other_value = other_tuple.value(other_idx)?;
    // The new value must satisfy `new negate(op) other_value`.
    let fix = match op.negate() {
        ComparisonOp::Lt | ComparisonOp::Le => CandidateValue::LessThan(other_value),
        ComparisonOp::Gt | ComparisonOp::Ge => CandidateValue::GreaterThan(other_value),
        ComparisonOp::Eq => CandidateValue::Exact(other_value),
        ComparisonOp::Neq => return Ok(None), // "anything else" is not a useful candidate
    };
    // Skip fixes that are no-ops (the current value already satisfies them).
    if fix.could_equal(&current) {
        return Ok(None);
    }
    Ok(Some(RangeFix {
        key: (target_tuple.id, col_idx),
        original: current,
        candidate: Candidate::range(fix, share),
        conflicting: violation
            .tuples
            .iter()
            .copied()
            .filter(|id| *id != target_tuple.id)
            .collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, TupleId};
    use daisy_storage::Table;

    fn table() -> Table {
        // Example 5 of the paper.
        Table::from_rows(
            "emp",
            Schema::from_pairs(&[
                ("salary", DataType::Int),
                ("tax", DataType::Float),
                ("age", DataType::Int),
            ])
            .unwrap(),
            vec![
                vec![Value::Int(1000), Value::Float(0.1), Value::Int(31)],
                vec![Value::Int(3000), Value::Float(0.2), Value::Int(32)],
                vec![Value::Int(2000), Value::Float(0.3), Value::Int(43)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn example_5_produces_range_candidates() {
        let t = table();
        let dc = DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap();
        // Violation binding: t1 = tuple 2 (2000, 0.3), t2 = tuple 1 (3000, 0.2).
        let violations = vec![Violation::pair(dc.id, TupleId::new(2), TupleId::new(1))];
        let by_id: HashMap<TupleId, &Tuple> = t.tuples().iter().map(|tu| (tu.id, tu)).collect();
        let mut prov = ProvenanceStore::new();
        let out = repair_dc_violations(
            &ExecContext::new(4),
            t.schema(),
            &dc,
            &violations,
            &by_id,
            &mut prov,
        )
        .unwrap();
        assert!(out.errors_detected >= 2);
        assert_eq!(out.violations.len(), 1);

        // Find the salary fix for the (3000, 0.2) tuple: a "<2000" range
        // candidate alongside the original 3000.
        let salary_update = out
            .delta
            .updates()
            .iter()
            .find(|u| u.tuple == TupleId::new(1) && u.column == ColumnId::new(0))
            .expect("salary fix for tuple 1");
        let cands = salary_update.cell.candidates();
        assert!(cands.iter().any(|c| matches!(
            &c.value,
            CandidateValue::LessThan(v) if *v == Value::Int(2000)
        )));
        assert!(cands.iter().any(|c| c.value.could_equal(&Value::Int(3000))));

        // And the tax fix for the same tuple: ">0.3" alongside 0.2.
        let tax_update = out
            .delta
            .updates()
            .iter()
            .find(|u| u.tuple == TupleId::new(1) && u.column == ColumnId::new(1))
            .expect("tax fix for tuple 1");
        assert!(tax_update.cell.candidates().iter().any(|c| matches!(
            &c.value,
            CandidateValue::GreaterThan(v) if *v == Value::Float(0.3)
        )));

        // Provenance recorded the conflicting tuple.
        let prov_cell = prov.cell(TupleId::new(1), ColumnId::new(0)).unwrap();
        assert!(prov_cell.all_conflicting().contains(&TupleId::new(2)));
    }

    #[test]
    fn applying_the_delta_makes_cells_probabilistic() {
        let mut t = table();
        let dc = DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap();
        let violations = vec![Violation::pair(dc.id, TupleId::new(2), TupleId::new(1))];
        let by_id: HashMap<TupleId, &Tuple> = t.tuples().iter().map(|tu| (tu.id, tu)).collect();
        let mut prov = ProvenanceStore::new();
        let out = repair_dc_violations(
            &ExecContext::new(4),
            t.schema(),
            &dc,
            &violations,
            &by_id,
            &mut prov,
        )
        .unwrap();
        // The borrow of `t` through `by_id` ends before the mutation.
        let delta = out.delta.clone();
        drop(by_id);
        t.apply_delta(&delta).unwrap();
        assert!(t.tuple(TupleId::new(1)).unwrap().is_probabilistic());
        assert!(t.tuple(TupleId::new(2)).unwrap().is_probabilistic());
        assert!(!t.tuple(TupleId::new(0)).unwrap().is_probabilistic());
    }

    #[test]
    fn missing_tuples_are_skipped_gracefully() {
        let t = table();
        let dc = DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap();
        let violations = vec![Violation::pair(dc.id, TupleId::new(77), TupleId::new(99))];
        let by_id: HashMap<TupleId, &Tuple> = t.tuples().iter().map(|tu| (tu.id, tu)).collect();
        let mut prov = ProvenanceStore::new();
        let out = repair_dc_violations(
            &ExecContext::new(4),
            t.schema(),
            &dc,
            &violations,
            &by_id,
            &mut prov,
        )
        .unwrap();
        assert!(out.delta.is_empty());
    }

    #[test]
    fn three_atom_constraint_covers_all_attributes() {
        let t = table();
        let dc = DenialConstraint::parse(
            "phi2",
            "t1.salary < t2.salary & t1.age < t2.age & t1.tax > t2.tax",
        )
        .unwrap();
        // (2000, 0.3, 43) vs (3000, 0.2, 32): salary< holds, age< is false
        // (43 < 32 is false) so this is NOT a violation; use tuple 0 vs 2:
        // (1000,0.1,31) vs (2000,0.3,43): tax> is false.  Construct a real
        // violation instead: t1=(1000,0.3,31)?  Simpler: bind tuples 2 and 1
        // in the order that satisfies the first two atoms and check the
        // repair machinery still produces fixes for whichever violation we
        // hand it (the detector is responsible for validity).
        let violations = vec![Violation::new(
            dc.id,
            vec![TupleId::new(0), TupleId::new(2)],
        )];
        let by_id: HashMap<TupleId, &Tuple> = t.tuples().iter().map(|tu| (tu.id, tu)).collect();
        let mut prov = ProvenanceStore::new();
        let out = repair_dc_violations(
            &ExecContext::new(4),
            t.schema(),
            &dc,
            &violations,
            &by_id,
            &mut prov,
        )
        .unwrap();
        // Fixes touch salary, age and tax cells across the two tuples.
        let touched_columns: std::collections::HashSet<u64> =
            out.delta.updates().iter().map(|u| u.column.raw()).collect();
        assert!(touched_columns.len() >= 2);
    }
}
