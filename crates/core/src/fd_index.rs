//! Pre-computed group indexes for a functional dependency.
//!
//! Daisy "collects statistics by pre-computing the size of the erroneous
//! groups" (§6); candidate-fix probabilities are frequency based
//! (`P(rhs | lhs)`, `P(lhs | rhs)`, §4.1).  The [`FdIndex`] captures exactly
//! that information for one FD over one table:
//!
//! * for each lhs value: the rhs values it co-occurs with and their counts,
//! * for each rhs value: the lhs values it co-occurs with and their counts,
//! * which lhs groups are *dirty* (more than one distinct rhs).
//!
//! The index is computed once per (table, rule) and reused by every query;
//! this is the pruning that makes Daisy faster as violations grow (Fig. 9):
//! a tuple whose lhs is not in a dirty group can be skipped without any
//! pairwise checks.

use std::collections::HashMap;

use daisy_common::{ColumnId, Result, Value};
use daisy_expr::FunctionalDependency;
use daisy_storage::{ProvenanceStore, Table};

/// Frequency index of an FD `lhs → rhs` over a table.
#[derive(Debug, Clone, Default)]
pub struct FdIndex {
    /// Column indexes of the lhs attributes.
    pub lhs_columns: Vec<usize>,
    /// Column index of the rhs attribute.
    pub rhs_column: usize,
    /// lhs value → (rhs value → count).
    pub rhs_given_lhs: HashMap<Value, HashMap<Value, usize>>,
    /// rhs value → (lhs value → count).
    pub lhs_given_rhs: HashMap<Value, HashMap<Value, usize>>,
}

impl FdIndex {
    /// Builds the index over the expected (most probable) values of a table.
    pub fn build(table: &Table, fd: &FunctionalDependency) -> Result<FdIndex> {
        FdIndex::build_with_provenance(table, fd, &ProvenanceStore::default())
    }

    /// Builds the index over the *original* values of a table: cells that an
    /// earlier rule already turned probabilistic are grouped under the value
    /// recorded in the provenance store (§4.3: "when many rules exist, we
    /// execute them over the original data then merge").  Cells without a
    /// recorded original fall back to their expected value.
    pub fn build_with_provenance(
        table: &Table,
        fd: &FunctionalDependency,
        provenance: &ProvenanceStore,
    ) -> Result<FdIndex> {
        let lhs_columns: Vec<usize> = fd
            .lhs
            .iter()
            .map(|c| table.column_index(c))
            .collect::<Result<_>>()?;
        let rhs_column = table.column_index(&fd.rhs)?;
        let mut index = FdIndex {
            lhs_columns,
            rhs_column,
            rhs_given_lhs: HashMap::new(),
            lhs_given_rhs: HashMap::new(),
        };
        let original = |tuple: &daisy_storage::Tuple, column: usize| -> Result<Value> {
            let cell = tuple.cell(column)?;
            if cell.is_probabilistic() {
                if let Some(v) = provenance.original_value(tuple.id, ColumnId::new(column as u64)) {
                    return Ok(v.clone());
                }
            }
            tuple.value(column)
        };
        for tuple in table.tuples() {
            let lhs = if index.lhs_columns.len() == 1 {
                original(tuple, index.lhs_columns[0])?
            } else {
                // Composite keys use the same encoding as
                // `daisy_storage::statistics::composite_key`.
                let mut key = String::new();
                for (i, &c) in index.lhs_columns.iter().enumerate() {
                    if i > 0 {
                        key.push('\u{1f}');
                    }
                    key.push_str(&original(tuple, c)?.to_string());
                }
                Value::Str(key)
            };
            let rhs = original(tuple, index.rhs_column)?;
            *index
                .rhs_given_lhs
                .entry(lhs.clone())
                .or_default()
                .entry(rhs.clone())
                .or_insert(0) += 1;
            *index
                .lhs_given_rhs
                .entry(rhs)
                .or_default()
                .entry(lhs)
                .or_insert(0) += 1;
        }
        Ok(index)
    }

    /// The (possibly composite) lhs key of a tuple.
    pub fn lhs_key(&self, tuple: &daisy_storage::Tuple) -> Result<Value> {
        daisy_storage::statistics::composite_key(tuple, &self.lhs_columns)
    }

    /// The rhs value of a tuple.
    pub fn rhs_value(&self, tuple: &daisy_storage::Tuple) -> Result<Value> {
        tuple.value(self.rhs_column)
    }

    /// `true` if the lhs group has conflicting rhs values.
    pub fn lhs_is_dirty(&self, lhs: &Value) -> bool {
        self.rhs_given_lhs
            .get(lhs)
            .map(|m| m.len() > 1)
            .unwrap_or(false)
    }

    /// `true` if the rhs value co-occurs with more than one lhs value.
    pub fn rhs_is_ambiguous(&self, rhs: &Value) -> bool {
        self.lhs_given_rhs
            .get(rhs)
            .map(|m| m.len() > 1)
            .unwrap_or(false)
    }

    /// The rhs candidate distribution `P(rhs | lhs)` as `(value, count)`
    /// pairs (deterministically ordered by value).
    pub fn rhs_candidates(&self, lhs: &Value) -> Vec<(Value, usize)> {
        sorted_counts(self.rhs_given_lhs.get(lhs))
    }

    /// The lhs candidate distribution `P(lhs | rhs)` as `(value, count)`
    /// pairs (deterministically ordered by value).
    pub fn lhs_candidates(&self, rhs: &Value) -> Vec<(Value, usize)> {
        sorted_counts(self.lhs_given_rhs.get(rhs))
    }

    /// Number of dirty lhs groups.
    pub fn dirty_group_count(&self) -> usize {
        self.rhs_given_lhs.values().filter(|m| m.len() > 1).count()
    }

    /// Number of tuples that belong to dirty lhs groups (the `ε` estimate of
    /// the cost model).
    pub fn dirty_tuple_count(&self) -> usize {
        self.rhs_given_lhs
            .values()
            .filter(|m| m.len() > 1)
            .map(|m| m.values().sum::<usize>())
            .sum()
    }

    /// Mean number of candidate rhs values per dirty group (the `p` estimate
    /// of the cost model's update term).
    pub fn mean_candidates(&self) -> f64 {
        let dirty: Vec<usize> = self
            .rhs_given_lhs
            .values()
            .filter(|m| m.len() > 1)
            .map(HashMap::len)
            .collect();
        if dirty.is_empty() {
            return 0.0;
        }
        dirty.iter().sum::<usize>() as f64 / dirty.len() as f64
    }

    /// Mean number of lhs values a rhs value co-occurs with; a large value
    /// means lhs repairs fan out widely, inflating the update cost (the
    /// situation of Fig. 7 where full cleaning wins).
    pub fn mean_lhs_fanout(&self) -> f64 {
        if self.lhs_given_rhs.is_empty() {
            return 0.0;
        }
        self.lhs_given_rhs.values().map(HashMap::len).sum::<usize>() as f64
            / self.lhs_given_rhs.len() as f64
    }

    /// Applies an incremental update to the index after a tuple's
    /// (lhs, rhs) pair changes its expected values (used when repairs are
    /// applied back to the table so that later queries see fresh statistics).
    pub fn retarget(&mut self, old_lhs: &Value, old_rhs: &Value, new_lhs: &Value, new_rhs: &Value) {
        if old_lhs == new_lhs && old_rhs == new_rhs {
            return;
        }
        decrement(&mut self.rhs_given_lhs, old_lhs, old_rhs);
        decrement(&mut self.lhs_given_rhs, old_rhs, old_lhs);
        *self
            .rhs_given_lhs
            .entry(new_lhs.clone())
            .or_default()
            .entry(new_rhs.clone())
            .or_insert(0) += 1;
        *self
            .lhs_given_rhs
            .entry(new_rhs.clone())
            .or_default()
            .entry(new_lhs.clone())
            .or_insert(0) += 1;
    }
}

fn sorted_counts(map: Option<&HashMap<Value, usize>>) -> Vec<(Value, usize)> {
    let mut out: Vec<(Value, usize)> = map
        .map(|m| m.iter().map(|(v, c)| (v.clone(), *c)).collect())
        .unwrap_or_default();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn decrement(map: &mut HashMap<Value, HashMap<Value, usize>>, key: &Value, value: &Value) {
    if let Some(inner) = map.get_mut(key) {
        if let Some(count) = inner.get_mut(value) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inner.remove(value);
            }
        }
        if inner.is_empty() {
            map.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};

    fn cities() -> Table {
        Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap()
    }

    fn fd() -> FunctionalDependency {
        FunctionalDependency::new(&["zip"], "city")
    }

    #[test]
    fn index_matches_paper_example() {
        // Table 2a of the paper.
        let index = FdIndex::build(&cities(), &fd()).unwrap();
        assert!(index.lhs_is_dirty(&Value::Int(9001)));
        assert!(index.lhs_is_dirty(&Value::Int(10001)));
        assert!(!index.lhs_is_dirty(&Value::Int(10002)));
        assert!(index.rhs_is_ambiguous(&Value::from("San Francisco")));
        assert!(!index.rhs_is_ambiguous(&Value::from("Los Angeles")));

        // P(City | Zip = 9001) = {LA: 2, SF: 1} → 67% / 33%.
        let rhs = index.rhs_candidates(&Value::Int(9001));
        assert_eq!(rhs.len(), 2);
        let la = rhs
            .iter()
            .find(|(v, _)| *v == Value::from("Los Angeles"))
            .unwrap();
        assert_eq!(la.1, 2);

        // P(Zip | City = San Francisco) = {9001: 1, 10001: 1} → 50% / 50%.
        let lhs = index.lhs_candidates(&Value::from("San Francisco"));
        assert_eq!(lhs.len(), 2);
        assert!(lhs.iter().all(|(_, c)| *c == 1));

        assert_eq!(index.dirty_group_count(), 2);
        assert_eq!(index.dirty_tuple_count(), 5);
        assert!((index.mean_candidates() - 2.0).abs() < 1e-12);
        assert!(index.mean_lhs_fanout() > 1.0);
    }

    #[test]
    fn retarget_moves_counts() {
        let mut index = FdIndex::build(&cities(), &fd()).unwrap();
        // Repair tuple (9001, San Francisco) → (9001, Los Angeles).
        index.retarget(
            &Value::Int(9001),
            &Value::from("San Francisco"),
            &Value::Int(9001),
            &Value::from("Los Angeles"),
        );
        assert!(!index.lhs_is_dirty(&Value::Int(9001)));
        assert!(!index.rhs_is_ambiguous(&Value::from("San Francisco")));
        assert_eq!(index.dirty_group_count(), 1);
        // No-op retarget keeps counts unchanged.
        let before = index.dirty_tuple_count();
        index.retarget(
            &Value::Int(10001),
            &Value::from("New York"),
            &Value::Int(10001),
            &Value::from("New York"),
        );
        assert_eq!(index.dirty_tuple_count(), before);
    }

    #[test]
    fn empty_group_lookups_are_clean() {
        let index = FdIndex::build(&cities(), &fd()).unwrap();
        assert!(!index.lhs_is_dirty(&Value::Int(99999)));
        assert!(index.rhs_candidates(&Value::Int(99999)).is_empty());
        assert!(index.lhs_candidates(&Value::from("Nowhere")).is_empty());
    }
}
