//! Concurrent multi-session cleaning: a shared, versioned engine core plus
//! cheap copy-on-write session handles.
//!
//! [`DaisyEngine`] owns its tables exclusively — one session, one mutable
//! world.  This module splits that ownership for multi-tenant serving:
//!
//! * [`EngineShared`] is the canonical core: the current [`WorldState`]
//!   (tables, snapshots, violation-index caches, provenance — all behind
//!   `Arc`) tagged with a monotonically increasing **commit version**.
//! * [`CleaningSession`] is a per-request handle: opening one clones the
//!   shared world (reference-count bumps only — a *consistent snapshot*),
//!   executes queries against it with repairs staged as copy-on-write
//!   overlays (the engine's existing [`Delta`] machinery, recorded per
//!   session), and publishes everything back through
//!   [`CleaningSession::commit`].
//!
//! # The commit protocol
//!
//! Commits are **serialized and optimistic**.  A session remembers the
//! version it branched from; `commit` takes the shared lock and
//!
//! 1. **validates** — if the shared version still equals the session's base
//!    version, nothing committed in between: the session's world *is* the
//!    serial successor state, and installing it is a pointer swap (the
//!    table revisions and columnar snapshots inside were already advanced
//!    through the engine's `apply_delta_patching`/`absorb_delta` write
//!    path);
//! 2. otherwise consults the **commit log** — a bounded ring of recent
//!    `(version, write Footprint, touched rules, staged deltas)` records —
//!    when [footprint validation](daisy_common::config::CommitValidation)
//!    is on: if no intervening commit advanced a `(table, rule)` cleaning
//!    state this session touched, wrote a cell this session wrote
//!    (write–write), or wrote a cell this session read, the session's
//!    staged deltas are **rebased onto the current world in
//!    `O(|delta|)`** — deltas re-applied, provenance grafted cell-by-cell,
//!    derived rule state swapped in — with no re-execution at all;
//! 3. if intervening writes *did* land on cells this session read, a
//!    **semi-naive re-validation** restricted to exactly those conflicting
//!    cells runs first: when every such cell still holds the value the
//!    session observed (byte-identical, candidate sets included), the
//!    session's execution is provably unaffected and the `O(|delta|)`
//!    install above still applies;
//! 4. **rebases fully** only when the cheap checks fail (or under
//!    version-only validation) — the session re-clones the now-current
//!    shared world and replays its request log against it (still holding
//!    the lock, so the replay cannot be invalidated), then installs.
//!
//! Because every commit lands in a state byte-identical to what a serial
//! execution would have produced, **any interleaving of sessions whose
//! commits happen in a fixed order produces byte-identical tables, reports
//! and provenance to replaying the same requests serially in that order**
//! — at any validation mode and any worker count; the property the
//! scheduler in `daisy-service` relies on and
//! `tests/integration_service.rs` / `tests/integration_footprint.rs`
//! enforce.  [`CommitReceipt::cause`] reports which path each commit took.
//!
//! ```
//! use daisy_core::DaisyEngine;
//! use daisy_common::{DaisyConfig, DataType, Schema, Value};
//! use daisy_expr::FunctionalDependency;
//! use daisy_storage::Table;
//!
//! let schema = Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
//! let table = Table::from_rows("cities", schema, vec![
//!     vec![Value::Int(9001), Value::from("Los Angeles")],
//!     vec![Value::Int(9001), Value::from("San Francisco")],
//!     vec![Value::Int(10001), Value::from("New York")],
//! ]).unwrap();
//!
//! let mut engine = DaisyEngine::new(DaisyConfig::default().with_worker_threads(2)).unwrap();
//! engine.register_table(table);
//! engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");
//!
//! // Freeze the engine into a shared core and clean through a session.
//! let shared = engine.into_shared();
//! let mut session = shared.session();
//! let outcome = session
//!     .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
//!     .unwrap();
//! assert!(outcome.report.errors_repaired > 0);
//!
//! // Until the session commits, the shared table is untouched…
//! assert_eq!(shared.table("cities").unwrap().probabilistic_tuple_count(), 0);
//! let receipt = session.commit().unwrap();
//! // …after it, the staged repairs are the canonical state.
//! assert!(!receipt.rebased);
//! assert!(receipt.cells_committed > 0);
//! assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
//! ```

use std::collections::{HashSet, VecDeque};
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use daisy_common::{ColumnId, DaisyConfig, DaisyError, Result, TupleId, Value};
use daisy_query::Query;
use daisy_storage::{Delta, DeltaOverlay, Footprint, ProvenanceStore, Table};
use daisy_wal::{LoggedCommit, RealVfs, Vfs, WalStats, WalStore};

use crate::durability::{logged_commit, persisted_world, restore_world, WorldSnapshot};
use crate::engine::{DaisyEngine, QueryOutcome};
use crate::report::SessionReport;
use crate::world::{RuleKey, WorldState};

/// The canonical, versioned world that concurrent sessions clean against.
///
/// Constructed with [`DaisyEngine::into_shared`] after tables and
/// constraints are registered.  All mutation happens through the serialized
/// commit path of [`CleaningSession::commit`].
#[derive(Debug)]
pub struct EngineShared {
    config: DaisyConfig,
    state: Mutex<SharedState>,
    /// Lock-free mirror of [`SharedState::version`], published with
    /// `Release` after each commit bumps the canonical counter under the
    /// lock — so the hot [`EngineShared::version`] read (every
    /// [`CleaningSession::verify_current`] poll) never contends with a
    /// commit in flight.
    version: AtomicU64,
}

#[derive(Debug)]
struct SharedState {
    /// Number of commits applied so far; sessions validate against it.
    version: u64,
    world: WorldState,
    /// Ring of the most recent commits (bounded by `capacity`), newest
    /// last — what footprint validation intersects against.
    log: VecDeque<CommitRecord>,
    /// Ring bound ([`DaisyConfig::commit_log_capacity`] /
    /// `DAISY_COMMIT_LOG`).  A session that branched more than this many
    /// commits ago cannot be validated cell-by-cell and falls back to a
    /// full rebase.
    capacity: usize,
    /// The durable store, when the core was opened with
    /// [`EngineShared::recover`].  Lives under the commit mutex so the
    /// write-ahead append is serialized with the install it precedes.
    persistence: Option<WalStore>,
}

/// What one published commit looked like, for later sessions to validate
/// against without replaying anything.
#[derive(Debug)]
struct CommitRecord {
    /// The exact cells the commit wrote ([`Footprint::from_deltas`]).
    write: Footprint,
    /// The `(table, rule)` cleaning states the commit advanced.
    touched_rules: HashSet<RuleKey>,
    /// The staged deltas, kept for cell-level conflict enumeration and the
    /// semi-naive recheck.
    staged: Vec<(String, Delta)>,
}

impl SharedState {
    /// The records of every commit after `base`, oldest first; `None` when
    /// the ring no longer reaches back that far.
    fn records_since(&self, base: u64) -> Option<Vec<&CommitRecord>> {
        let needed = usize::try_from(self.version.saturating_sub(base)).ok()?;
        if needed > self.log.len() {
            return None;
        }
        Some(self.log.iter().skip(self.log.len() - needed).collect())
    }

    fn push_record(&mut self, record: CommitRecord) {
        while self.log.len() >= self.capacity {
            self.log.pop_front();
        }
        self.log.push_back(record);
    }
}

impl EngineShared {
    /// Wraps an engine's world into a shared core (see
    /// [`DaisyEngine::into_shared`]).
    pub(crate) fn from_engine(engine: DaisyEngine) -> Arc<EngineShared> {
        let config = engine.config().clone();
        let world = engine.world().clone();
        let capacity = config.commit_log_capacity;
        Arc::new(EngineShared {
            config,
            state: Mutex::new(SharedState {
                version: 0,
                world,
                log: VecDeque::new(),
                capacity,
                persistence: None,
            }),
            version: AtomicU64::new(0),
        })
    }

    /// Opens (or recovers) a durable core in `dir`.
    ///
    /// `engine` is the *bootstrap*: tables and constraints registered as at
    /// first deployment.  Constraints are configuration and are never
    /// persisted; tables and provenance are.  On a fresh directory the
    /// bootstrap world is checkpointed as version 0 and becomes the
    /// canonical state.  On an existing directory the newest valid
    /// checkpoint is loaded, the commit-log suffix is replayed on top, a
    /// torn (unsynced) tail is self-truncated, and any damage to
    /// acknowledged state surfaces as [`DaisyError::CorruptLog`].  Every
    /// derived structure (indexes, θ-matrices, trackers, snapshots) is
    /// dropped and rebuilt lazily against the recovered tables.
    ///
    /// Subsequent commits append to the write-ahead log *before*
    /// installing (per [`DaisyConfig::durability`]) and periodically write
    /// full-world checkpoints (every
    /// [`DaisyConfig::checkpoint_interval`] commits).
    pub fn recover(engine: DaisyEngine, dir: &Path) -> Result<Arc<EngineShared>> {
        EngineShared::recover_with_vfs(engine, dir, Arc::new(RealVfs))
    }

    /// [`EngineShared::recover`] with an explicit filesystem — the hook the
    /// crash-injection harness uses to kill the store at every write, sync
    /// and rename boundary.
    pub fn recover_with_vfs(
        engine: DaisyEngine,
        dir: &Path,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Arc<EngineShared>> {
        let config = engine.config().clone();
        let bootstrap = engine.world().clone();
        let seed = persisted_world(0, &bootstrap);
        let (store, recovered) = WalStore::open(
            vfs,
            dir,
            config.durability,
            config.checkpoint_interval,
            &seed,
        )?;
        let world = if recovered.fresh {
            bootstrap
        } else {
            restore_world(&bootstrap, &recovered.world)
        };
        let version = recovered.world.version;
        let capacity = config.commit_log_capacity;
        Ok(Arc::new(EngineShared {
            config,
            state: Mutex::new(SharedState {
                version,
                world,
                log: VecDeque::new(),
                capacity,
                persistence: Some(store),
            }),
            version: AtomicU64::new(version),
        }))
    }

    /// The durability counters (records, fsyncs, checkpoints) of the
    /// attached store, or `None` for an in-memory core.
    pub fn persistence_stats(&self) -> Option<WalStats> {
        self.lock().persistence.as_ref().map(|p| p.stats())
    }

    /// Reconstructs the world as of commit `version` from the durable
    /// store: the newest checkpoint at or below it plus a replay of the
    /// logged delta suffix.
    ///
    /// # Errors
    ///
    /// [`DaisyError::Execution`] for an in-memory core or a version
    /// outside the logged range; [`DaisyError::CorruptLog`] if the store
    /// is damaged.
    pub fn world_at(&self, version: u64) -> Result<WorldSnapshot> {
        let state = self.lock();
        let store = state.persistence.as_ref().ok_or_else(|| {
            DaisyError::Execution("world_at requires a durable core (EngineShared::recover)".into())
        })?;
        Ok(WorldSnapshot::new(store.world_at(version)?))
    }

    /// The logged commits that take `world_at(range.start)` to
    /// `world_at(range.end)` — versions `range.start + 1 ..= range.end`,
    /// each carrying its staged deltas, write footprint, touched rules and
    /// provenance diff.
    pub fn deltas_between(&self, range: Range<u64>) -> Result<Vec<LoggedCommit>> {
        let state = self.lock();
        let store = state.persistence.as_ref().ok_or_else(|| {
            DaisyError::Execution(
                "deltas_between requires a durable core (EngineShared::recover)".into(),
            )
        })?;
        store.deltas_between(range)
    }

    /// The configuration every session inherits.
    pub fn config(&self) -> &DaisyConfig {
        &self.config
    }

    /// The current commit version (starts at 0, +1 per commit).
    ///
    /// Served from an atomic mirror of the locked counter: a one-integer
    /// staleness probe does not queue behind the serialized commit path.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Opens a new session over a consistent snapshot of the current world.
    ///
    /// This is cheap — `O(#tables + #cached rules)` reference-count bumps,
    /// independent of data size — which is what makes a per-request session
    /// handle viable.
    pub fn session(self: &Arc<Self>) -> CleaningSession {
        self.session_named("anonymous")
    }

    /// Opens a session like [`EngineShared::session`], labelled with a
    /// request identifier — the name a
    /// [`DaisyError::StaleSession`] diagnostic carries if the session goes
    /// stale.
    pub fn session_named(self: &Arc<Self>, label: &str) -> CleaningSession {
        let (version, world) = {
            let state = self.lock();
            (state.version, state.world.clone())
        };
        let mut engine = DaisyEngine::from_world(self.config.clone(), world)
            .expect("shared config was validated at construction");
        engine.set_record_deltas(true);
        engine.set_record_footprints(self.config.commit_validation.uses_footprints());
        CleaningSession {
            shared: Arc::clone(self),
            engine,
            base_version: version,
            label: label.to_string(),
            log: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// A shared handle to the current committed state of a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.lock().world.catalog.shared(name)
    }

    /// The committed provenance store of a table, if any cell was cleaned.
    pub fn provenance(&self, table: &str) -> Option<Arc<ProvenanceStore>> {
        self.lock().world.provenance.get(table).cloned()
    }

    /// The committed table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.lock()
            .world
            .catalog
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedState> {
        self.state.lock().expect("engine shared state poisoned")
    }
}

/// Which validation path a commit took (see the
/// [module docs](self#the-commit-protocol)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommitCause {
    /// No commit intervened since the session branched: pointer-swap
    /// install.
    Clean,
    /// Commits intervened, but their footprints were disjoint from
    /// everything this session read, wrote or cleaned: the staged deltas
    /// were rebased onto the current world in `O(|delta|)`.
    FootprintClean,
    /// Intervening writes landed on cells this session read, but the
    /// semi-naive recheck found every such cell value-stable: same
    /// `O(|delta|)` install as [`CommitCause::FootprintClean`].
    DeltaRecheck,
    /// Validation failed (or version-only validation saw any intervening
    /// commit): the session's request log was replayed against the
    /// current world — the serial fallback.
    FullRebase,
}

impl CommitCause {
    /// Short machine-readable name, used by benchmark and service
    /// counters.
    pub fn as_str(self) -> &'static str {
        match self {
            CommitCause::Clean => "clean",
            CommitCause::FootprintClean => "footprint-clean",
            CommitCause::DeltaRecheck => "delta-recheck",
            CommitCause::FullRebase => "full-rebase",
        }
    }

    /// `true` only for the full replay path.
    pub fn is_rebase(self) -> bool {
        matches!(self, CommitCause::FullRebase)
    }
}

impl std::fmt::Display for CommitCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one commit published.
#[derive(Debug, Clone)]
pub struct CommitReceipt {
    /// The shared version after this commit.
    pub version: u64,
    /// `true` when the commit found the shared world advanced and had to
    /// replay its request log against the newer state (the serial
    /// fallback); `false` means the optimistic execution was installed
    /// as-is or rebased in `O(|delta|)` without re-execution.
    pub rebased: bool,
    /// Which validation path the commit took.
    pub cause: CommitCause,
    /// The final outcome of every request in this commit, in execution
    /// order.  When `rebased`, these supersede the speculative outcomes
    /// returned by [`CleaningSession::execute`].
    pub outcomes: Vec<QueryOutcome>,
    /// The staged deltas that were published, `(table, delta)` in
    /// application order.
    pub staged: Vec<(String, Delta)>,
    /// Total cells across the staged deltas.
    pub cells_committed: usize,
}

/// One replayable request of a session: a parsed query or a streaming
/// ingest batch.  The rebase path replays these in order against the
/// current world — a replayed ingest mints fresh tuple ids there, which is
/// exactly what a serial execution would have done.
#[derive(Debug, Clone)]
enum SessionOp {
    Query(Query),
    Ingest {
        table: String,
        rows: Vec<Vec<Value>>,
    },
}

/// A per-request cleaning handle over a consistent snapshot of the shared
/// world.  See the [module docs](self) for the lifecycle and an example.
#[derive(Debug)]
pub struct CleaningSession {
    shared: Arc<EngineShared>,
    engine: DaisyEngine,
    base_version: u64,
    /// The request identifier stale-session diagnostics carry.
    label: String,
    /// Requests executed since the last commit, for rebase replay.
    log: Vec<SessionOp>,
    /// Speculative outcomes matching `log`.
    outcomes: Vec<QueryOutcome>,
}

impl CleaningSession {
    /// Parses and executes a SQL query against the session's private world,
    /// staging any repairs.  The outcome is *speculative* until
    /// [`commit`](CleaningSession::commit) validates it against the shared
    /// world.
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutcome> {
        let query = daisy_query::parse_query(sql)?;
        self.execute(&query)
    }

    /// Executes a parsed query against the session's private world, staging
    /// any repairs.
    ///
    /// Each query is transactional within the session: if execution fails
    /// partway (e.g. the projection references an unknown column after the
    /// driving table was already cleaned), the private world and the staged
    /// overlay are rolled back to their pre-query state — a failed query
    /// can never leak repairs into a later commit.
    pub fn execute(&mut self, query: &Query) -> Result<QueryOutcome> {
        let checkpoint = self.engine.world().clone();
        let staged_len = self.engine.delta_log().len();
        let (reads, touched) = self.engine.footprint_checkpoint();
        match self.engine.execute(query) {
            Ok(outcome) => {
                self.log.push(SessionOp::Query(query.clone()));
                self.outcomes.push(outcome.clone());
                Ok(outcome)
            }
            Err(err) => {
                self.engine.rollback_to(checkpoint, staged_len);
                self.engine.restore_footprints(reads, touched);
                Err(err)
            }
        }
    }

    /// Streams a batch of new rows into `table` through the session's
    /// private world: the rows are staged as an append [`Delta`] and only
    /// the `Δ × (T ∪ Δ)` candidate pairs are detected and repaired against
    /// the world's maintained violation indexes (see
    /// [`DaisyEngine::ingest_rows`]).  Transactional and speculative like
    /// [`execute`](CleaningSession::execute): a failed batch rolls back
    /// completely, a successful one is validated (and replayed with fresh
    /// tuple ids if necessary) at [`commit`](CleaningSession::commit).
    pub fn ingest_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<QueryOutcome> {
        let checkpoint = self.engine.world().clone();
        let staged_len = self.engine.delta_log().len();
        let (reads, touched) = self.engine.footprint_checkpoint();
        match self.engine.ingest_rows(table, rows.clone()) {
            Ok(outcome) => {
                self.log.push(SessionOp::Ingest {
                    table: table.to_string(),
                    rows,
                });
                self.outcomes.push(outcome.clone());
                Ok(outcome)
            }
            Err(err) => {
                self.engine.rollback_to(checkpoint, staged_len);
                self.engine.restore_footprints(reads, touched);
                Err(err)
            }
        }
    }

    /// `Ok(())` while the session's branch point is still the current
    /// shared version; a typed [`DaisyError::StaleSession`] — naming this
    /// session and how many commits it fell behind — once another commit
    /// advanced the shared world.  Callers use it to retry-or-fail
    /// deliberately instead of parsing diagnostics.
    pub fn verify_current(&self) -> Result<()> {
        let shared_version = self.shared.version();
        if shared_version == self.base_version {
            Ok(())
        } else {
            Err(DaisyError::StaleSession {
                session: self.label.clone(),
                base_version: self.base_version,
                shared_version,
            })
        }
    }

    /// The label this session was opened with (see
    /// [`EngineShared::session_named`]).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The shared version this session's current world branched from.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// The session's private view of a table (staged repairs included).
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.engine.table(name)
    }

    /// The session's private provenance store for a table.
    pub fn provenance(&self, table: &str) -> Option<&ProvenanceStore> {
        self.engine.provenance(table)
    }

    /// The per-query cleaning reports accumulated since the last commit.
    pub fn report(&self) -> &SessionReport {
        self.engine.session()
    }

    /// The cells this session's queries consulted since the last commit —
    /// the read half of footprint-based commit validation.  Empty unless
    /// the configured [`CommitValidation`](daisy_common::CommitValidation)
    /// records footprints.
    pub fn read_footprint(&self) -> &Footprint {
        self.engine.reads()
    }

    /// The repairs staged since the last commit, `(table, delta)` in
    /// application order — the session's copy-on-write overlay.
    pub fn staged(&self) -> &[(String, Delta)] {
        self.engine.delta_log()
    }

    /// `true` when the session has staged repairs that a commit would
    /// publish.
    pub fn has_staged_changes(&self) -> bool {
        !self.engine.delta_log().is_empty()
    }

    /// The session's staged repairs for one table as a sparse
    /// [`DeltaOverlay`] over the **shared** base table it branched from —
    /// "what would this commit change?" without cloning either world.
    ///
    /// Reading a base tuple through the overlay
    /// ([`DeltaOverlay::patched_tuple`]) yields exactly the session's
    /// private state of that tuple, and overlay-aware predicate evaluation
    /// (`CodedPredicate::eval_overlay` in `daisy-expr`) reads the shared
    /// columnar snapshot with these patches on top.
    ///
    /// Fails if the shared table has been advanced past this session's
    /// branch point by another commit (the overlay would mix worlds); a
    /// fresh session or a commit resolves that.
    pub fn staged_overlay(&self, table: &str) -> Result<DeltaOverlay> {
        let base = self.shared.table(table)?;
        self.verify_current()?;
        let deltas = self
            .engine
            .delta_log()
            .iter()
            .filter(|(name, _)| name == table)
            .map(|(_, delta)| delta);
        DeltaOverlay::build(&base, deltas)
    }

    /// Publishes the session's world back into the shared core.
    ///
    /// Validates optimistically and rebases on conflict (see the
    /// [module docs](self)); either way, on success the shared world equals
    /// the state a serial execution of all committed requests would have
    /// produced, and this session continues from the freshly committed
    /// version with an empty log.
    ///
    /// # Errors
    ///
    /// Replay errors propagate and nothing is installed; the shared world
    /// is left exactly as the previous commit published it.  The session
    /// itself should be discarded after a commit error.
    pub fn commit(&mut self) -> Result<CommitReceipt> {
        let shared = Arc::clone(&self.shared);
        let mut state = shared.lock();
        let cause = if state.version == self.base_version {
            CommitCause::Clean
        } else if shared.config.commit_validation.uses_footprints() {
            self.classify_conflict(&state)
        } else {
            CommitCause::FullRebase
        };
        if cause == CommitCause::FullRebase {
            // Re-execute the log against the now-current world while holding
            // the lock — the serial fallback that makes interleavings
            // order-equivalent.
            self.engine.reset_world(state.world.clone());
            self.outcomes.clear();
            for op in &self.log {
                let outcome = match op {
                    SessionOp::Query(query) => self.engine.execute(query)?,
                    SessionOp::Ingest { table, rows } => {
                        self.engine.ingest_rows(table, rows.clone())?
                    }
                };
                self.outcomes.push(outcome);
            }
        }
        let staged = self.engine.take_delta_log();
        let touched = self.engine.take_touched_rules();
        let write = Footprint::from_deltas(&staged);
        let cells_committed = staged.iter().map(|(_, d)| d.len()).sum();
        let new_world = match cause {
            CommitCause::Clean | CommitCause::FullRebase => self.engine.world().clone(),
            CommitCause::FootprintClean | CommitCause::DeltaRecheck => {
                // The cheap path: rebase the staged overlay onto the current
                // world in O(|delta|) — no re-execution.
                merge_world(&state.world, self.engine.world(), &staged, &touched)?
            }
        };
        if state.persistence.is_some() {
            // Write-ahead: the record must be durably logged (per the sync
            // policy) before anything installs.  On failure nothing is
            // installed and the error propagates — the commit was never
            // acknowledged, and reopening the store self-truncates any
            // partial frame.
            let record = logged_commit(
                state.version + 1,
                &state.world,
                &new_world,
                &staged,
                &touched,
                &write,
            );
            let store = state.persistence.as_mut().expect("checked above");
            store.append_commit(&record)?;
        }
        match cause {
            CommitCause::Clean | CommitCause::FullRebase => {
                state.world = new_world;
            }
            CommitCause::FootprintClean | CommitCause::DeltaRecheck => {
                state.world = new_world.clone();
                self.engine.install_world(new_world);
            }
        }
        state.version += 1;
        shared.version.store(state.version, Ordering::Release);
        self.base_version = state.version;
        state.push_record(CommitRecord {
            write,
            touched_rules: touched,
            staged: staged.clone(),
        });
        if state
            .persistence
            .as_ref()
            .is_some_and(|p| p.checkpoint_due())
        {
            // Post-acknowledgement and best-effort: a failed checkpoint
            // costs recovery time (longer replay), never correctness — the
            // log already holds the commit.
            let snapshot = persisted_world(state.version, &state.world);
            if let Some(store) = state.persistence.as_mut() {
                let _ = store.checkpoint_now(&snapshot);
            }
        }
        let receipt = CommitReceipt {
            version: state.version,
            rebased: cause.is_rebase(),
            cause,
            outcomes: std::mem::take(&mut self.outcomes),
            staged,
            cells_committed,
        };
        drop(state);
        self.log.clear();
        self.engine.clear_session_report();
        self.engine.clear_footprints();
        Ok(receipt)
    }

    /// Decides, under footprint validation, which commit path a conflicted
    /// session can take (the shared version is known to have advanced).
    fn classify_conflict(&self, state: &SharedState) -> CommitCause {
        // The ring must reach back to the session's branch point.
        let Some(records) = state.records_since(self.base_version) else {
            return CommitCause::FullRebase;
        };
        // Any `(table, rule)` cleaning state both an intervening commit and
        // this session advanced makes the session's derived structures
        // (group indexes, θ-matrices, cost trackers, fully-cleaned marks)
        // unmergeable: full replay.
        let touched = self.engine.touched_rules();
        if records
            .iter()
            .any(|r| r.touched_rules.iter().any(|k| touched.contains(k)))
        {
            return CommitCause::FullRebase;
        }
        // Coarse footprint intersection first: a record whose write
        // footprint is disjoint from everything this session read or wrote
        // is dismissed in O(ranges) without looking at a single update.
        // `Footprint::from_deltas` covers both the updated cells and every
        // appended row, so `writes` (and each record's `write`) already
        // carries append extents.  Notably, two sessions that branched from
        // the same world and both appended to one table necessarily claimed
        // the same tuple ids — their write footprints collide and the later
        // commit replays, minting fresh ids.
        let writes = Footprint::from_deltas(self.engine.delta_log());
        let reads = self.engine.reads();
        let mut dependencies = reads.clone();
        dependencies.union(&writes);
        let mut conflicts: Vec<(&str, TupleId, ColumnId)> = Vec::new();
        for record in &records {
            // Intervening appends are invisible to the cell-level update
            // sweep below and can never be proven value-stable (the session
            // never saw the row at all), so any overlap with what this
            // session read, wrote or appended forces a replay.
            for (table, delta) in &record.staged {
                if delta.appends().is_empty() {
                    continue;
                }
                let mut appended = Footprint::new();
                appended.record_rows(table, delta.appends().iter().map(|a| a.id));
                if appended.intersects(&dependencies) {
                    return CommitCause::FullRebase;
                }
            }
            if !record.write.intersects(&dependencies) {
                continue;
            }
            // Cell-level sweep, only for records that coarsely overlap.
            for (table, delta) in &record.staged {
                for update in delta.updates() {
                    if writes.covers_cell(table, update.tuple, update.column) {
                        // Write–write: install order would matter.
                        return CommitCause::FullRebase;
                    }
                    if reads.covers_cell(table, update.tuple, update.column) {
                        conflicts.push((table.as_str(), update.tuple, update.column));
                    }
                }
            }
        }
        if conflicts.is_empty() {
            return CommitCause::FootprintClean;
        }
        // Semi-naive recheck, restricted to the conflicting cells: if every
        // cell this session read still holds the exact value it observed
        // (candidate sets included), the execution is provably unaffected.
        if conflicts.iter().all(|(table, tuple, column)| {
            cell_equal(self.engine.world(), &state.world, table, *tuple, *column)
        }) {
            CommitCause::DeltaRecheck
        } else {
            CommitCause::FullRebase
        }
    }
}

/// `true` when both worlds hold byte-identical cells at the given
/// coordinate (missing table or tuple on either side counts as unstable).
fn cell_equal(
    a: &WorldState,
    b: &WorldState,
    table: &str,
    tuple: TupleId,
    column: ColumnId,
) -> bool {
    let (Ok(ta), Ok(tb)) = (a.catalog.table(table), b.catalog.table(table)) else {
        return false;
    };
    let idx = column.raw() as usize;
    match (ta.tuple(tuple), tb.tuple(tuple)) {
        (Some(ra), Some(rb)) => ra.cell(idx) == rb.cell(idx),
        _ => false,
    }
}

/// Rebases a validated session's effects onto the current shared world in
/// `O(|delta| + |touched rules|)`:
///
/// * staged deltas re-apply through the same table/snapshot/index write
///   protocol the engine uses (`apply_delta` + `absorb_delta`, for the
///   columnar snapshot and every maintained violation index alike),
/// * provenance entries graft cell-by-cell (the session's additions are
///   confined to its staged cells),
/// * derived cleaning state (`FdIndex`, `ThetaMatrix`, cost trackers,
///   fully-cleaned marks) swaps in wholesale for the rules only this
///   session touched,
/// * session-built columnar snapshots carry over when their revision still
///   matches the merged table.
///
/// Footprint validation already proved the inputs of all of the above are
/// identical to what a serial replay would have consumed, so the merged
/// world is byte-identical to the serial successor state.
fn merge_world(
    current: &WorldState,
    session: &WorldState,
    staged: &[(String, Delta)],
    touched: &HashSet<RuleKey>,
) -> Result<WorldState> {
    let mut merged = current.clone();
    for key in touched {
        if let Some(index) = session.fd_indexes.get(key) {
            merged.fd_indexes.insert(key.clone(), Arc::clone(index));
        }
        if let Some(matrix) = session.theta_matrices.get(key) {
            merged
                .theta_matrices
                .insert(key.clone(), Arc::clone(matrix));
        }
        if let Some(tracker) = session.trackers.get(key) {
            merged.trackers.insert(key.clone(), tracker.clone());
        }
        if session.fully_cleaned.contains(key) {
            merged.fully_cleaned.insert(key.clone());
        }
    }
    for (name, delta) in staged {
        let table = merged.catalog.table_mut(name)?;
        table.apply_delta(delta)?;
        if let Some(snap) = merged.snapshots.get_mut(name) {
            Arc::make_mut(snap).absorb_delta(table, delta)?;
        }
        for (key, index) in merged.violation_indexes.iter_mut() {
            if key.0 == *name {
                Arc::make_mut(index).absorb_delta(table, delta)?;
            }
        }
        if let Some(session_prov) = session.provenance.get(name) {
            let entry = merged.provenance.entry(name.clone()).or_default();
            Arc::make_mut(entry).merge_cells_from(
                session_prov,
                delta.updates().iter().map(|u| (u.tuple, u.column)),
            );
        }
    }
    for (name, snap) in &session.snapshots {
        if !merged.snapshots.contains_key(name) && snap.is_current(merged.catalog.table(name)?) {
            merged.snapshots.insert(name.clone(), Arc::clone(snap));
        }
    }
    // Maintained violation indexes carry over like snapshots: an index the
    // session built rides along when its revision matches the merged table
    // (stale ones are dropped on the floor — the next ingest rebuilds).
    for (key, index) in &session.violation_indexes {
        if !merged.violation_indexes.contains_key(key)
            && index.is_current(merged.catalog.table(&key.0)?)
        {
            merged
                .violation_indexes
                .insert(key.clone(), Arc::clone(index));
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{CommitValidation, DataType, IncrementalMode, Schema, Value};
    use daisy_expr::FunctionalDependency;
    use daisy_storage::Cell;

    fn shared_cities() -> Arc<EngineShared> {
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let table = Table::from_rows(
            "cities",
            schema,
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap();
        let mut engine = DaisyEngine::new(
            DaisyConfig::default()
                .with_worker_threads(2)
                .with_cost_model(false),
        )
        .unwrap();
        engine.register_table(table);
        engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");
        engine.into_shared()
    }

    #[test]
    fn session_stages_then_commit_publishes() {
        let shared = shared_cities();
        let mut session = shared.session();
        let outcome = session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert!(outcome.report.errors_repaired > 0);
        assert!(session.has_staged_changes());
        // Isolation: the shared world is untouched pre-commit.
        assert_eq!(
            shared.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        assert_eq!(shared.version(), 0);
        assert!(shared.provenance("cities").is_none_or(|p| p.is_empty()));

        let receipt = session.commit().unwrap();
        assert!(!receipt.rebased);
        assert_eq!(receipt.version, 1);
        assert!(receipt.cells_committed > 0);
        assert_eq!(receipt.outcomes.len(), 1);
        assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
        assert!(!shared.provenance("cities").unwrap().is_empty());
        assert!(!session.has_staged_changes());
    }

    #[test]
    fn conflicting_commit_rebases_to_serial_state() {
        let shared = shared_cities();

        // Two sessions branch from version 0 and race on the same rows.
        let mut first = shared.session();
        let mut second = shared.session();
        let sql = "SELECT zip FROM cities WHERE city = 'Los Angeles'";
        first.execute_sql(sql).unwrap();
        second.execute_sql(sql).unwrap();

        let first_receipt = first.commit().unwrap();
        assert!(!first_receipt.rebased);
        assert_eq!(first_receipt.cause, CommitCause::Clean);
        let second_receipt = second.commit().unwrap();
        assert!(second_receipt.rebased, "stale session must rebase");
        // Both sessions advanced the same (table, rule) cleaning state, so
        // even footprint validation must take the full-replay path.
        assert_eq!(second_receipt.cause, CommitCause::FullRebase);
        assert_eq!(shared.version(), 2);

        // The rebased world must equal a serial replay of both requests.
        let serial = {
            let shared = shared_cities();
            let mut session = shared.session();
            session.execute_sql(sql).unwrap();
            session.commit().unwrap();
            session.execute_sql(sql).unwrap();
            session.commit().unwrap();
            shared
        };
        assert_eq!(
            shared.table("cities").unwrap().tuples(),
            serial.table("cities").unwrap().tuples()
        );
        assert_eq!(
            shared.provenance("cities").unwrap().dump(),
            serial.provenance("cities").unwrap().dump()
        );
    }

    #[test]
    fn sessions_snapshot_cheaply_and_read_consistently() {
        let shared = shared_cities();
        let reader = shared.session();
        // A writer commits new probabilistic state…
        let mut writer = shared.session();
        writer
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        writer.commit().unwrap();
        // …but the reader's snapshot still observes its branch point.
        assert_eq!(
            reader.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
        assert_eq!(reader.base_version(), 0);
    }

    #[test]
    fn staged_overlay_over_shared_base_equals_private_world() {
        let shared = shared_cities();
        let mut session = shared.session();
        session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert!(session.has_staged_changes());
        let overlay = session.staged_overlay("cities").unwrap();
        assert!(!overlay.is_empty());
        // Invariant: shared base + overlay == the session's private table.
        let base = shared.table("cities").unwrap();
        for tuple in base.tuples() {
            assert_eq!(
                &overlay.patched_tuple(tuple),
                session.table("cities").unwrap().tuple(tuple.id).unwrap()
            );
        }
        // After another session commits, the overlay's base is gone.
        let mut other = shared.session();
        other.execute_sql("SELECT city FROM cities").unwrap();
        other.commit().unwrap();
        assert!(session.staged_overlay("cities").is_err());
    }

    #[test]
    fn failed_query_rolls_back_partial_repairs() {
        // The projection fails on an unknown column, but only *after* the
        // driving table was filtered and cleaned — the session must roll
        // everything back so no repairs leak into a later commit.
        let shared = shared_cities();
        let mut session = shared.session();
        let err = session.execute_sql("SELECT bogus FROM cities WHERE city = 'Los Angeles'");
        assert!(err.is_err());
        assert!(!session.has_staged_changes());
        assert_eq!(
            session.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        assert!(session.report().queries.is_empty());
        // A commit after the failure publishes nothing.
        let receipt = session.commit().unwrap();
        assert_eq!(receipt.cells_committed, 0);
        assert!(receipt.outcomes.is_empty());
        assert_eq!(
            shared.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        // The session remains fully usable afterwards.
        let outcome = session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert!(outcome.report.errors_repaired > 0);
        session.commit().unwrap();
        assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
    }

    #[test]
    fn session_report_resets_after_every_commit() {
        let shared = shared_cities();
        let mut session = shared.session();
        session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert_eq!(session.report().queries.len(), 1);
        session.commit().unwrap();
        // Clean (non-rebased) commits reset the report too.
        assert!(session.report().queries.is_empty());
        session
            .execute_sql("SELECT city FROM cities WHERE zip = 9001")
            .unwrap();
        assert_eq!(session.report().queries.len(), 1);
    }

    #[test]
    fn empty_commit_still_advances_the_version() {
        let shared = shared_cities();
        let mut session = shared.session();
        let receipt = session.commit().unwrap();
        assert_eq!(receipt.version, 1);
        assert_eq!(receipt.cells_committed, 0);
        assert!(receipt.staged.is_empty());
    }

    /// Two tables with the same dirty shape, cleaned by different sessions:
    /// disjoint rule keys and disjoint footprints.
    fn shared_two_regions() -> Arc<EngineShared> {
        let rows = || {
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ]
        };
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let mut engine = DaisyEngine::new(
            DaisyConfig::default()
                .with_worker_threads(2)
                .with_cost_model(false)
                // Pinned: these tests assert footprint-specific causes and
                // maintained-index carry-over, and must not flip when
                // DAISY_COMMIT_VALIDATION=version or DAISY_INCREMENTAL=off
                // is forced (e.g. by the CI knob matrix).
                .with_commit_validation(CommitValidation::Footprint)
                .with_incremental_detection(IncrementalMode::On),
        )
        .unwrap();
        engine.register_table(Table::from_rows("east", schema.clone(), rows()).unwrap());
        engine.register_table(Table::from_rows("west", schema, rows()).unwrap());
        engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");
        engine.into_shared()
    }

    /// A constraint-free table: sessions over it are pure readers/writers
    /// with no `(table, rule)` cleaning state in play.
    fn shared_plain() -> Arc<EngineShared> {
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let table = Table::from_rows(
            "plain",
            schema,
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap();
        let mut engine = DaisyEngine::new(
            DaisyConfig::default()
                .with_worker_threads(2)
                .with_cost_model(false)
                // Pinned for the same reason as `shared_two_regions`.
                .with_commit_validation(CommitValidation::Footprint),
        )
        .unwrap();
        engine.register_table(table);
        engine.into_shared()
    }

    #[test]
    fn disjoint_table_commits_install_without_replay() {
        let east_sql = "SELECT zip FROM east WHERE city = 'Los Angeles'";
        let west_sql = "SELECT zip FROM west WHERE city = 'Los Angeles'";

        let shared = shared_two_regions();
        let mut a = shared.session();
        let mut b = shared.session();
        a.execute_sql(east_sql).unwrap();
        b.execute_sql(west_sql).unwrap();
        assert_eq!(a.commit().unwrap().cause, CommitCause::Clean);
        let receipt = b.commit().unwrap();
        // The interleaved cleaning of a *different* table never replays.
        assert_eq!(receipt.cause, CommitCause::FootprintClean);
        assert!(!receipt.rebased);
        assert!(receipt.cells_committed > 0);
        assert_eq!(shared.version(), 2);

        // The merged world is byte-identical to the serial replay.
        let serial = {
            let shared = shared_two_regions();
            let mut s = shared.session();
            s.execute_sql(east_sql).unwrap();
            s.commit().unwrap();
            s.execute_sql(west_sql).unwrap();
            s.commit().unwrap();
            shared
        };
        for table in ["east", "west"] {
            assert_eq!(
                shared.table(table).unwrap().tuples(),
                serial.table(table).unwrap().tuples(),
                "table `{table}` diverged from serial replay"
            );
            assert_eq!(
                shared.provenance(table).unwrap().dump(),
                serial.provenance(table).unwrap().dump(),
                "provenance of `{table}` diverged from serial replay"
            );
        }

        // The session stays fully usable on the merged world.
        let again = b.execute_sql(west_sql).unwrap();
        assert_eq!(again.report.errors_repaired, 0, "west is already cleaned");
        assert_eq!(b.commit().unwrap().cause, CommitCause::Clean);
    }

    #[test]
    fn stable_intervening_write_passes_the_delta_recheck() {
        let shared = shared_plain();
        let mut reader = shared.session();
        // The reader consults `zip` (filter column) and the matching row.
        reader
            .execute_sql("SELECT city FROM plain WHERE zip = 9001")
            .unwrap();

        // An intervener rewrites the very cell the reader filtered on —
        // with the value it already held.
        let mut writer = shared.session();
        let mut delta = Delta::new();
        delta.push_update(
            daisy_common::TupleId::new(0),
            ColumnId::new(0),
            Cell::Determinate(Value::Int(9001)),
        );
        writer.engine.apply_delta_patching("plain", &delta).unwrap();
        assert_eq!(writer.commit().unwrap().cause, CommitCause::Clean);

        // Footprints overlap, but the cell is value-stable: the recheck —
        // restricted to that one cell — admits the commit without replay.
        let receipt = reader.commit().unwrap();
        assert_eq!(receipt.cause, CommitCause::DeltaRecheck);
        assert!(!receipt.rebased);
    }

    #[test]
    fn unstable_intervening_write_forces_full_rebase() {
        let shared = shared_plain();
        let mut reader = shared.session();
        reader
            .execute_sql("SELECT city FROM plain WHERE zip = 9001")
            .unwrap();

        let mut writer = shared.session();
        let mut delta = Delta::new();
        delta.push_update(
            daisy_common::TupleId::new(0),
            ColumnId::new(0),
            Cell::Determinate(Value::Int(7777)),
        );
        writer.engine.apply_delta_patching("plain", &delta).unwrap();
        writer.commit().unwrap();

        // The reader's filter saw zip = 9001; the cell now reads 7777 —
        // its answer is invalid and must be recomputed.
        let receipt = reader.commit().unwrap();
        assert_eq!(receipt.cause, CommitCause::FullRebase);
        assert!(receipt.rebased);
        // The replayed outcome reflects the new value: no row matches.
        assert_eq!(receipt.outcomes[0].result.len(), 0);
    }

    #[test]
    fn write_write_conflicts_force_full_rebase() {
        let shared = shared_plain();
        let mut a = shared.session();
        let mut b = shared.session();
        let stage = |s: &mut CleaningSession, city: &str| {
            let mut delta = Delta::new();
            delta.push_update(
                daisy_common::TupleId::new(0),
                ColumnId::new(1),
                Cell::Determinate(Value::from(city)),
            );
            s.engine.apply_delta_patching("plain", &delta).unwrap();
        };
        stage(&mut a, "Pasadena");
        stage(&mut b, "Glendale");
        assert_eq!(a.commit().unwrap().cause, CommitCause::Clean);
        // Same cell written on both sides: install order matters, so the
        // second commit must take the serial path (whose replay of the
        // empty request log drops the manually staged delta).
        let receipt = b.commit().unwrap();
        assert_eq!(receipt.cause, CommitCause::FullRebase);
        assert_eq!(
            shared
                .table("plain")
                .unwrap()
                .tuple(daisy_common::TupleId::new(0))
                .unwrap()
                .cell(1)
                .unwrap(),
            &Cell::Determinate(Value::from("Pasadena"))
        );
    }

    #[test]
    fn commit_log_overflow_falls_back_to_full_rebase() {
        // The ring bound comes from the config now; a tiny capacity makes
        // the overflow cheap to provoke.
        let capacity = 4;
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let table = Table::from_rows(
            "plain",
            schema,
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap();
        let mut engine = DaisyEngine::new(
            DaisyConfig::default()
                .with_worker_threads(2)
                .with_cost_model(false)
                .with_commit_validation(CommitValidation::Footprint)
                .with_commit_log_capacity(capacity),
        )
        .unwrap();
        engine.register_table(table);
        let shared = engine.into_shared();

        let mut ancient = shared.session();
        ancient.execute_sql("SELECT city FROM plain").unwrap();
        // Push the ring past capacity: the ancient session's branch point
        // is no longer covered by the retained records.
        for _ in 0..(capacity + 2) {
            shared.session().commit().unwrap();
        }
        let receipt = ancient.commit().unwrap();
        assert_eq!(receipt.cause, CommitCause::FullRebase);

        // A session still inside the retained window keeps the cheap path.
        let mut recent = shared.session();
        recent.execute_sql("SELECT city FROM plain").unwrap();
        shared.session().commit().unwrap();
        assert_eq!(recent.commit().unwrap().cause, CommitCause::FootprintClean);
    }

    #[test]
    fn session_ingest_stages_commits_and_replays_with_fresh_ids() {
        let shared = shared_cities();
        let mut a = shared.session();
        let mut b = shared.session();
        let batch_a = vec![vec![Value::Int(9001), Value::from("Pasadena")]];
        let batch_b = vec![vec![Value::Int(10001), Value::from("Albany")]];
        let outcome = a.ingest_rows("cities", batch_a.clone()).unwrap();
        assert!(outcome.report.errors_repaired > 0);
        b.ingest_rows("cities", batch_b.clone()).unwrap();
        // Staged only: the shared table has not grown yet.
        assert_eq!(shared.table("cities").unwrap().len(), 5);

        assert_eq!(a.commit().unwrap().cause, CommitCause::Clean);
        // Both sessions branched from the same next tuple id, so their
        // appends collide — the second commit must replay (minting a fresh
        // id for its row) rather than merge.
        let receipt = b.commit().unwrap();
        assert_eq!(receipt.cause, CommitCause::FullRebase);
        assert_eq!(shared.table("cities").unwrap().len(), 7);

        // The committed world equals the serial execution of both ingests.
        let serial = {
            let shared = shared_cities();
            let mut s = shared.session();
            s.ingest_rows("cities", batch_a).unwrap();
            s.commit().unwrap();
            s.ingest_rows("cities", batch_b).unwrap();
            s.commit().unwrap();
            shared
        };
        assert_eq!(
            shared.table("cities").unwrap().tuples(),
            serial.table("cities").unwrap().tuples()
        );
        assert_eq!(
            shared.provenance("cities").unwrap().dump(),
            serial.provenance("cities").unwrap().dump()
        );
    }

    #[test]
    fn disjoint_ingests_merge_without_replay_and_carry_their_indexes() {
        let shared = shared_two_regions();
        let mut a = shared.session();
        let mut b = shared.session();
        a.ingest_rows(
            "east",
            vec![vec![Value::Int(9001), Value::from("Pasadena")]],
        )
        .unwrap();
        b.ingest_rows("west", vec![vec![Value::Int(10001), Value::from("Albany")]])
            .unwrap();
        assert_eq!(a.commit().unwrap().cause, CommitCause::Clean);
        // Different tables: appends and footprints are disjoint, so the
        // second ingest installs in O(|delta|) without replay.
        let receipt = b.commit().unwrap();
        assert_eq!(receipt.cause, CommitCause::FootprintClean);
        assert_eq!(shared.table("east").unwrap().len(), 6);
        assert_eq!(shared.table("west").unwrap().len(), 6);
        // The merged world kept b's maintained index for west, current.
        let state = shared.lock();
        let west = state.world.catalog.table("west").unwrap();
        let index = state
            .world
            .violation_indexes
            .iter()
            .find(|((table, _), _)| table == "west")
            .map(|(_, index)| index)
            .expect("west's maintained index carried through the merge");
        assert!(index.is_current(west));
    }

    #[test]
    fn failed_ingest_rolls_back_completely() {
        let shared = shared_cities();
        let mut session = shared.session();
        // Wrong arity: the append delta fails to apply.
        let err = session.ingest_rows("cities", vec![vec![Value::Int(1)]]);
        assert!(err.is_err());
        assert!(!session.has_staged_changes());
        assert_eq!(session.table("cities").unwrap().len(), 5);
        let receipt = session.commit().unwrap();
        assert_eq!(receipt.cells_committed, 0);
    }

    #[test]
    fn intervening_append_forces_a_reader_to_replay() {
        let shared = shared_plain();
        let mut reader = shared.session();
        // The reader scans the whole table: its answer depends on the
        // table's extent, not just existing cell values.
        reader.execute_sql("SELECT city FROM plain").unwrap();

        let mut writer = shared.session();
        writer
            .ingest_rows("plain", vec![vec![Value::Int(123), Value::from("Fresno")]])
            .unwrap();
        assert_eq!(writer.commit().unwrap().cause, CommitCause::Clean);

        // No cell the reader saw changed — but a row appeared.  The
        // update-level recheck cannot prove the read stable, so the commit
        // must take the serial path.
        let receipt = reader.commit().unwrap();
        assert_eq!(receipt.cause, CommitCause::FullRebase);
    }

    #[test]
    fn stale_sessions_surface_typed_errors() {
        let shared = shared_cities();
        let mut fresh = shared.session_named("req-42");
        assert!(fresh.verify_current().is_ok());
        assert_eq!(fresh.label(), "req-42");
        fresh
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();

        let mut other = shared.session();
        other.execute_sql("SELECT city FROM cities").unwrap();
        other.commit().unwrap();

        let err = fresh.verify_current().unwrap_err();
        assert_eq!(err.category(), "stale-session");
        assert_eq!(err.elapsed_commits(), Some(1));
        match &err {
            DaisyError::StaleSession {
                session,
                base_version,
                shared_version,
            } => {
                assert_eq!(session, "req-42");
                assert_eq!(*base_version, 0);
                assert_eq!(*shared_version, 1);
            }
            other => panic!("expected StaleSession, got {other:?}"),
        }
        // The overlay path surfaces the same typed error.
        assert_eq!(
            fresh.staged_overlay("cities").unwrap_err().category(),
            "stale-session"
        );
    }
}
