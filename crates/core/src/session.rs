//! Concurrent multi-session cleaning: a shared, versioned engine core plus
//! cheap copy-on-write session handles.
//!
//! [`DaisyEngine`] owns its tables exclusively — one session, one mutable
//! world.  This module splits that ownership for multi-tenant serving:
//!
//! * [`EngineShared`] is the canonical core: the current [`WorldState`]
//!   (tables, snapshots, violation-index caches, provenance — all behind
//!   `Arc`) tagged with a monotonically increasing **commit version**.
//! * [`CleaningSession`] is a per-request handle: opening one clones the
//!   shared world (reference-count bumps only — a *consistent snapshot*),
//!   executes queries against it with repairs staged as copy-on-write
//!   overlays (the engine's existing [`Delta`] machinery, recorded per
//!   session), and publishes everything back through
//!   [`CleaningSession::commit`].
//!
//! # The commit protocol
//!
//! Commits are **serialized and optimistic**.  A session remembers the
//! version it branched from; `commit` takes the shared lock and
//!
//! 1. **validates** — if the shared version still equals the session's base
//!    version, nothing committed in between: the session's world *is* the
//!    serial successor state, and installing it is a pointer swap (the
//!    table revisions and columnar snapshots inside were already advanced
//!    through the engine's `apply_delta_patching`/`absorb_delta` write
//!    path);
//! 2. **rebases** otherwise — the session re-clones the now-current shared
//!    world and replays its request log against it (still holding the
//!    lock, so the replay cannot be invalidated), then installs.
//!
//! Because every commit lands against the exact world a serial execution
//! would have seen, **any interleaving of sessions whose commits happen in
//! a fixed order produces byte-identical tables, reports and provenance to
//! replaying the same requests serially in that order** — the property the
//! scheduler in `daisy-service` relies on and
//! `tests/integration_service.rs` enforces.
//!
//! ```
//! use daisy_core::DaisyEngine;
//! use daisy_common::{DaisyConfig, DataType, Schema, Value};
//! use daisy_expr::FunctionalDependency;
//! use daisy_storage::Table;
//!
//! let schema = Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
//! let table = Table::from_rows("cities", schema, vec![
//!     vec![Value::Int(9001), Value::from("Los Angeles")],
//!     vec![Value::Int(9001), Value::from("San Francisco")],
//!     vec![Value::Int(10001), Value::from("New York")],
//! ]).unwrap();
//!
//! let mut engine = DaisyEngine::new(DaisyConfig::default().with_worker_threads(2)).unwrap();
//! engine.register_table(table);
//! engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");
//!
//! // Freeze the engine into a shared core and clean through a session.
//! let shared = engine.into_shared();
//! let mut session = shared.session();
//! let outcome = session
//!     .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
//!     .unwrap();
//! assert!(outcome.report.errors_repaired > 0);
//!
//! // Until the session commits, the shared table is untouched…
//! assert_eq!(shared.table("cities").unwrap().probabilistic_tuple_count(), 0);
//! let receipt = session.commit().unwrap();
//! // …after it, the staged repairs are the canonical state.
//! assert!(!receipt.rebased);
//! assert!(receipt.cells_committed > 0);
//! assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
//! ```

use std::sync::{Arc, Mutex};

use daisy_common::{DaisyConfig, Result};
use daisy_query::Query;
use daisy_storage::{Delta, DeltaOverlay, ProvenanceStore, Table};

use crate::engine::{DaisyEngine, QueryOutcome};
use crate::report::SessionReport;
use crate::world::WorldState;

/// The canonical, versioned world that concurrent sessions clean against.
///
/// Constructed with [`DaisyEngine::into_shared`] after tables and
/// constraints are registered.  All mutation happens through the serialized
/// commit path of [`CleaningSession::commit`].
#[derive(Debug)]
pub struct EngineShared {
    config: DaisyConfig,
    state: Mutex<SharedState>,
}

#[derive(Debug)]
struct SharedState {
    /// Number of commits applied so far; sessions validate against it.
    version: u64,
    world: WorldState,
}

impl EngineShared {
    /// Wraps an engine's world into a shared core (see
    /// [`DaisyEngine::into_shared`]).
    pub(crate) fn from_engine(engine: DaisyEngine) -> Arc<EngineShared> {
        let config = engine.config().clone();
        let world = engine.world().clone();
        Arc::new(EngineShared {
            config,
            state: Mutex::new(SharedState { version: 0, world }),
        })
    }

    /// The configuration every session inherits.
    pub fn config(&self) -> &DaisyConfig {
        &self.config
    }

    /// The current commit version (starts at 0, +1 per commit).
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// Opens a new session over a consistent snapshot of the current world.
    ///
    /// This is cheap — `O(#tables + #cached rules)` reference-count bumps,
    /// independent of data size — which is what makes a per-request session
    /// handle viable.
    pub fn session(self: &Arc<Self>) -> CleaningSession {
        let (version, world) = {
            let state = self.lock();
            (state.version, state.world.clone())
        };
        let mut engine = DaisyEngine::from_world(self.config.clone(), world)
            .expect("shared config was validated at construction");
        engine.set_record_deltas(true);
        CleaningSession {
            shared: Arc::clone(self),
            engine,
            base_version: version,
            log: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// A shared handle to the current committed state of a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.lock().world.catalog.shared(name)
    }

    /// The committed provenance store of a table, if any cell was cleaned.
    pub fn provenance(&self, table: &str) -> Option<Arc<ProvenanceStore>> {
        self.lock().world.provenance.get(table).cloned()
    }

    /// The committed table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.lock()
            .world
            .catalog
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedState> {
        self.state.lock().expect("engine shared state poisoned")
    }
}

/// What one commit published.
#[derive(Debug, Clone)]
pub struct CommitReceipt {
    /// The shared version after this commit.
    pub version: u64,
    /// `true` when the commit found the shared world advanced and had to
    /// replay its request log against the newer state (the serial
    /// fallback); `false` means the optimistic execution was installed
    /// as-is — the "snapshot reuse" fast path.
    pub rebased: bool,
    /// The final outcome of every request in this commit, in execution
    /// order.  When `rebased`, these supersede the speculative outcomes
    /// returned by [`CleaningSession::execute`].
    pub outcomes: Vec<QueryOutcome>,
    /// The staged deltas that were published, `(table, delta)` in
    /// application order.
    pub staged: Vec<(String, Delta)>,
    /// Total cells across the staged deltas.
    pub cells_committed: usize,
}

/// A per-request cleaning handle over a consistent snapshot of the shared
/// world.  See the [module docs](self) for the lifecycle and an example.
#[derive(Debug)]
pub struct CleaningSession {
    shared: Arc<EngineShared>,
    engine: DaisyEngine,
    base_version: u64,
    /// Requests executed since the last commit, for rebase replay.
    log: Vec<Query>,
    /// Speculative outcomes matching `log`.
    outcomes: Vec<QueryOutcome>,
}

impl CleaningSession {
    /// Parses and executes a SQL query against the session's private world,
    /// staging any repairs.  The outcome is *speculative* until
    /// [`commit`](CleaningSession::commit) validates it against the shared
    /// world.
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutcome> {
        let query = daisy_query::parse_query(sql)?;
        self.execute(&query)
    }

    /// Executes a parsed query against the session's private world, staging
    /// any repairs.
    ///
    /// Each query is transactional within the session: if execution fails
    /// partway (e.g. the projection references an unknown column after the
    /// driving table was already cleaned), the private world and the staged
    /// overlay are rolled back to their pre-query state — a failed query
    /// can never leak repairs into a later commit.
    pub fn execute(&mut self, query: &Query) -> Result<QueryOutcome> {
        let checkpoint = self.engine.world().clone();
        let staged_len = self.engine.delta_log().len();
        match self.engine.execute(query) {
            Ok(outcome) => {
                self.log.push(query.clone());
                self.outcomes.push(outcome.clone());
                Ok(outcome)
            }
            Err(err) => {
                self.engine.rollback_to(checkpoint, staged_len);
                Err(err)
            }
        }
    }

    /// The shared version this session's current world branched from.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// The session's private view of a table (staged repairs included).
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.engine.table(name)
    }

    /// The session's private provenance store for a table.
    pub fn provenance(&self, table: &str) -> Option<&ProvenanceStore> {
        self.engine.provenance(table)
    }

    /// The per-query cleaning reports accumulated since the last commit.
    pub fn report(&self) -> &SessionReport {
        self.engine.session()
    }

    /// The repairs staged since the last commit, `(table, delta)` in
    /// application order — the session's copy-on-write overlay.
    pub fn staged(&self) -> &[(String, Delta)] {
        self.engine.delta_log()
    }

    /// `true` when the session has staged repairs that a commit would
    /// publish.
    pub fn has_staged_changes(&self) -> bool {
        !self.engine.delta_log().is_empty()
    }

    /// The session's staged repairs for one table as a sparse
    /// [`DeltaOverlay`] over the **shared** base table it branched from —
    /// "what would this commit change?" without cloning either world.
    ///
    /// Reading a base tuple through the overlay
    /// ([`DeltaOverlay::patched_tuple`]) yields exactly the session's
    /// private state of that tuple, and overlay-aware predicate evaluation
    /// (`CodedPredicate::eval_overlay` in `daisy-expr`) reads the shared
    /// columnar snapshot with these patches on top.
    ///
    /// Fails if the shared table has been advanced past this session's
    /// branch point by another commit (the overlay would mix worlds); a
    /// fresh session or a commit resolves that.
    pub fn staged_overlay(&self, table: &str) -> Result<DeltaOverlay> {
        let base = self.shared.table(table)?;
        if self.base_version != self.shared.version() {
            return Err(daisy_common::DaisyError::Execution(format!(
                "session branched at version {} but the shared world is at {}; \
                 the staged overlay is only meaningful against its own base",
                self.base_version,
                self.shared.version()
            )));
        }
        let deltas = self
            .engine
            .delta_log()
            .iter()
            .filter(|(name, _)| name == table)
            .map(|(_, delta)| delta);
        DeltaOverlay::build(&base, deltas)
    }

    /// Publishes the session's world back into the shared core.
    ///
    /// Validates optimistically and rebases on conflict (see the
    /// [module docs](self)); either way, on success the shared world equals
    /// the state a serial execution of all committed requests would have
    /// produced, and this session continues from the freshly committed
    /// version with an empty log.
    ///
    /// # Errors
    ///
    /// Replay errors propagate and nothing is installed; the shared world
    /// is left exactly as the previous commit published it.  The session
    /// itself should be discarded after a commit error.
    pub fn commit(&mut self) -> Result<CommitReceipt> {
        let shared = Arc::clone(&self.shared);
        let mut state = shared.lock();
        let mut rebased = false;
        if state.version != self.base_version {
            // Conflict: somebody committed since this session branched.
            // Re-execute the log against the now-current world while holding
            // the lock — the serial fallback that makes interleavings
            // order-equivalent.
            rebased = true;
            self.engine.reset_world(state.world.clone());
            self.outcomes.clear();
            for query in &self.log {
                let outcome = self.engine.execute(query)?;
                self.outcomes.push(outcome);
            }
        }
        let staged = self.engine.take_delta_log();
        let cells_committed = staged.iter().map(|(_, d)| d.len()).sum();
        state.world = self.engine.world().clone();
        state.version += 1;
        self.base_version = state.version;
        let receipt = CommitReceipt {
            version: state.version,
            rebased,
            outcomes: std::mem::take(&mut self.outcomes),
            staged,
            cells_committed,
        };
        drop(state);
        self.log.clear();
        self.engine.clear_session_report();
        Ok(receipt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, Value};
    use daisy_expr::FunctionalDependency;

    fn shared_cities() -> Arc<EngineShared> {
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let table = Table::from_rows(
            "cities",
            schema,
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap();
        let mut engine = DaisyEngine::new(
            DaisyConfig::default()
                .with_worker_threads(2)
                .with_cost_model(false),
        )
        .unwrap();
        engine.register_table(table);
        engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");
        engine.into_shared()
    }

    #[test]
    fn session_stages_then_commit_publishes() {
        let shared = shared_cities();
        let mut session = shared.session();
        let outcome = session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert!(outcome.report.errors_repaired > 0);
        assert!(session.has_staged_changes());
        // Isolation: the shared world is untouched pre-commit.
        assert_eq!(
            shared.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        assert_eq!(shared.version(), 0);
        assert!(shared.provenance("cities").is_none_or(|p| p.is_empty()));

        let receipt = session.commit().unwrap();
        assert!(!receipt.rebased);
        assert_eq!(receipt.version, 1);
        assert!(receipt.cells_committed > 0);
        assert_eq!(receipt.outcomes.len(), 1);
        assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
        assert!(!shared.provenance("cities").unwrap().is_empty());
        assert!(!session.has_staged_changes());
    }

    #[test]
    fn conflicting_commit_rebases_to_serial_state() {
        let shared = shared_cities();

        // Two sessions branch from version 0 and race on the same rows.
        let mut first = shared.session();
        let mut second = shared.session();
        let sql = "SELECT zip FROM cities WHERE city = 'Los Angeles'";
        first.execute_sql(sql).unwrap();
        second.execute_sql(sql).unwrap();

        let first_receipt = first.commit().unwrap();
        assert!(!first_receipt.rebased);
        let second_receipt = second.commit().unwrap();
        assert!(second_receipt.rebased, "stale session must rebase");
        assert_eq!(shared.version(), 2);

        // The rebased world must equal a serial replay of both requests.
        let serial = {
            let shared = shared_cities();
            let mut session = shared.session();
            session.execute_sql(sql).unwrap();
            session.commit().unwrap();
            session.execute_sql(sql).unwrap();
            session.commit().unwrap();
            shared
        };
        assert_eq!(
            shared.table("cities").unwrap().tuples(),
            serial.table("cities").unwrap().tuples()
        );
        assert_eq!(
            shared.provenance("cities").unwrap().dump(),
            serial.provenance("cities").unwrap().dump()
        );
    }

    #[test]
    fn sessions_snapshot_cheaply_and_read_consistently() {
        let shared = shared_cities();
        let reader = shared.session();
        // A writer commits new probabilistic state…
        let mut writer = shared.session();
        writer
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        writer.commit().unwrap();
        // …but the reader's snapshot still observes its branch point.
        assert_eq!(
            reader.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
        assert_eq!(reader.base_version(), 0);
    }

    #[test]
    fn staged_overlay_over_shared_base_equals_private_world() {
        let shared = shared_cities();
        let mut session = shared.session();
        session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert!(session.has_staged_changes());
        let overlay = session.staged_overlay("cities").unwrap();
        assert!(!overlay.is_empty());
        // Invariant: shared base + overlay == the session's private table.
        let base = shared.table("cities").unwrap();
        for tuple in base.tuples() {
            assert_eq!(
                &overlay.patched_tuple(tuple),
                session.table("cities").unwrap().tuple(tuple.id).unwrap()
            );
        }
        // After another session commits, the overlay's base is gone.
        let mut other = shared.session();
        other.execute_sql("SELECT city FROM cities").unwrap();
        other.commit().unwrap();
        assert!(session.staged_overlay("cities").is_err());
    }

    #[test]
    fn failed_query_rolls_back_partial_repairs() {
        // The projection fails on an unknown column, but only *after* the
        // driving table was filtered and cleaned — the session must roll
        // everything back so no repairs leak into a later commit.
        let shared = shared_cities();
        let mut session = shared.session();
        let err = session.execute_sql("SELECT bogus FROM cities WHERE city = 'Los Angeles'");
        assert!(err.is_err());
        assert!(!session.has_staged_changes());
        assert_eq!(
            session.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        assert!(session.report().queries.is_empty());
        // A commit after the failure publishes nothing.
        let receipt = session.commit().unwrap();
        assert_eq!(receipt.cells_committed, 0);
        assert!(receipt.outcomes.is_empty());
        assert_eq!(
            shared.table("cities").unwrap().probabilistic_tuple_count(),
            0
        );
        // The session remains fully usable afterwards.
        let outcome = session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert!(outcome.report.errors_repaired > 0);
        session.commit().unwrap();
        assert!(shared.table("cities").unwrap().probabilistic_tuple_count() > 0);
    }

    #[test]
    fn session_report_resets_after_every_commit() {
        let shared = shared_cities();
        let mut session = shared.session();
        session
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert_eq!(session.report().queries.len(), 1);
        session.commit().unwrap();
        // Clean (non-rebased) commits reset the report too.
        assert!(session.report().queries.is_empty());
        session
            .execute_sql("SELECT city FROM cities WHERE zip = 9001")
            .unwrap();
        assert_eq!(session.report().queries.len(), 1);
    }

    #[test]
    fn empty_commit_still_advances_the_version() {
        let shared = shared_cities();
        let mut session = shared.session();
        let receipt = session.commit().unwrap();
        assert_eq!(receipt.version, 1);
        assert_eq!(receipt.cells_committed, 0);
        assert!(receipt.staged.is_empty());
    }
}
