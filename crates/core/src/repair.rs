//! Materialising probabilistic repairs into a deterministic relation.
//!
//! Daisy's output is a *probabilistic* dataset: erroneous cells carry their
//! candidate fixes and frequency-based probabilities (§4).  The paper leaves
//! the final selection to an inference component or a human ("a SAT solver /
//! inference algorithm can repair the dirty values", §3, §4.2) and evaluates
//! one automatic policy, `DaisyP`, which "blindly selects the most probable
//! value" (Table 5).  This module implements that last mile:
//!
//! * [`RepairPolicy`] — how to collapse a candidate set into one value,
//! * [`materialize_repairs`] — produce a deterministic copy of a
//!   (partially) probabilistic table plus the list of applied updates,
//! * [`accept_candidate`] — a human-in-the-loop accept of one candidate for
//!   one cell, collapsing it in place,
//! * [`restore_originals`] — undo all probabilistic rewrites using the
//!   provenance store (the "in case new rules appear" escape hatch of §4).

use daisy_common::{ColumnId, DaisyError, Result, TupleId, Value};
use daisy_storage::{Cell, ProvenanceStore, Table};

/// How a probabilistic cell is collapsed into a single value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairPolicy {
    /// Always take the most probable candidate (the paper's `DaisyP`).
    MostProbable,
    /// Take the most probable candidate only when its probability reaches
    /// the threshold; otherwise keep the cell's original value (recorded in
    /// provenance) and report it as unresolved.
    Threshold(f64),
    /// Keep every original value; only cells whose candidate set no longer
    /// contains the original value are repaired (to the most probable
    /// candidate).  This is the most conservative automatic policy.
    KeepOriginal,
}

/// One materialised update.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedRepair {
    /// The repaired tuple.
    pub tuple: TupleId,
    /// The repaired column ordinal.
    pub column: usize,
    /// The value the cell held before materialisation (the provenance
    /// original when known, otherwise the previously most probable value).
    pub previous: Value,
    /// The value written.
    pub value: Value,
    /// The probability of the selected candidate.
    pub confidence: f64,
}

/// The outcome of materialising a probabilistic table.
#[derive(Debug, Clone)]
pub struct MaterializeOutcome {
    /// The deterministic table (same name, schema and tuple ids).
    pub table: Table,
    /// The updates that changed a value.
    pub repairs: Vec<AppliedRepair>,
    /// Cells left at their original value because no candidate met the
    /// policy (only produced by [`RepairPolicy::Threshold`]).
    pub unresolved: usize,
}

/// Collapses every probabilistic cell of `table` according to `policy`,
/// returning a deterministic copy plus the applied repairs.
///
/// `provenance` supplies the original (pre-cleaning) values; without it the
/// original defaults to the most probable candidate, which makes
/// [`RepairPolicy::KeepOriginal`] a no-op for cells that kept their original
/// among the candidates.
pub fn materialize_repairs(
    table: &Table,
    provenance: Option<&ProvenanceStore>,
    policy: RepairPolicy,
) -> Result<MaterializeOutcome> {
    if let RepairPolicy::Threshold(t) = policy {
        if !(0.0..=1.0).contains(&t) {
            return Err(DaisyError::Config(format!(
                "repair threshold {t} must lie in [0, 1]"
            )));
        }
    }
    let mut out = MaterializeOutcome {
        table: table.clone(),
        repairs: Vec::new(),
        unresolved: 0,
    };
    let ids: Vec<TupleId> = table.tuples().iter().map(|t| t.id).collect();
    for id in ids {
        let arity = table.schema().len();
        for column in 0..arity {
            let cell = table
                .tuple(id)
                .ok_or_else(|| DaisyError::Execution(format!("missing tuple {id}")))?
                .cell(column)?
                .clone();
            if !cell.is_probabilistic() {
                continue;
            }
            let original = provenance
                .and_then(|p| p.original_value(id, ColumnId::new(column as u64)))
                .cloned();
            let (winner, confidence) = best_candidate(&cell);
            let previous = original.clone().unwrap_or_else(|| winner.clone());
            let chosen = match policy {
                RepairPolicy::MostProbable => Some(winner.clone()),
                RepairPolicy::Threshold(threshold) => {
                    if confidence >= threshold {
                        Some(winner.clone())
                    } else {
                        None
                    }
                }
                RepairPolicy::KeepOriginal => match &original {
                    Some(orig) if cell.could_equal(orig) => Some(orig.clone()),
                    _ => Some(winner.clone()),
                },
            };
            let target = out
                .table
                .tuple_mut(id)
                .ok_or_else(|| DaisyError::Execution(format!("missing tuple {id}")))?;
            match chosen {
                Some(value) => {
                    *target.cell_mut(column)? = Cell::Determinate(value.clone());
                    if Some(&value) != original.as_ref() {
                        out.repairs.push(AppliedRepair {
                            tuple: id,
                            column,
                            previous,
                            value,
                            confidence,
                        });
                    }
                }
                None => {
                    // Unresolved: fall back to the original value when known.
                    if let Some(orig) = original {
                        *target.cell_mut(column)? = Cell::Determinate(orig);
                    }
                    out.unresolved += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Accepts one candidate value for one cell, collapsing it in place.  Errors
/// if the cell is not probabilistic or the value is not among its candidates.
pub fn accept_candidate(
    table: &mut Table,
    tuple: TupleId,
    column: usize,
    value: &Value,
) -> Result<()> {
    let cell = table
        .tuple(tuple)
        .ok_or_else(|| DaisyError::Execution(format!("missing tuple {tuple}")))?
        .cell(column)?;
    if !cell.is_probabilistic() {
        return Err(DaisyError::Execution(format!(
            "cell ({tuple}, {column}) carries no candidate fixes"
        )));
    }
    if !cell.could_equal(value) {
        return Err(DaisyError::Execution(format!(
            "value {value} is not a candidate of cell ({tuple}, {column})"
        )));
    }
    let target = table
        .tuple_mut(tuple)
        .ok_or_else(|| DaisyError::Execution(format!("missing tuple {tuple}")))?;
    *target.cell_mut(column)? = Cell::Determinate(value.clone());
    Ok(())
}

/// Restores every cell that has a recorded original value back to that
/// value, dropping its candidates.  Returns the number of cells restored.
pub fn restore_originals(table: &mut Table, provenance: &ProvenanceStore) -> Result<usize> {
    let ids: Vec<TupleId> = table.tuples().iter().map(|t| t.id).collect();
    let arity = table.schema().len();
    let mut restored = 0usize;
    for id in ids {
        for column in 0..arity {
            let Some(original) = provenance.original_value(id, ColumnId::new(column as u64)) else {
                continue;
            };
            let target = table
                .tuple_mut(id)
                .ok_or_else(|| DaisyError::Execution(format!("missing tuple {id}")))?;
            if target.cell(column)?.is_probabilistic() {
                *target.cell_mut(column)? = Cell::Determinate(original.clone());
                restored += 1;
            }
        }
    }
    Ok(restored)
}

/// The most probable exact candidate of a cell and its probability.
fn best_candidate(cell: &Cell) -> (Value, f64) {
    let mut best: Option<(Value, f64)> = None;
    for candidate in cell.candidates() {
        let value = candidate.value.representative();
        match &best {
            Some((_, p)) if candidate.probability <= *p => {}
            _ => best = Some((value, candidate.probability)),
        }
    }
    best.unwrap_or((cell.expected_value(), 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};
    use daisy_storage::{Candidate, Delta};

    fn probabilistic_cities() -> (Table, ProvenanceStore) {
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let mut table = Table::from_rows(
            "cities",
            schema,
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap();
        let mut delta = Delta::new();
        delta.push_update(
            TupleId::new(1),
            ColumnId::new(1),
            Cell::probabilistic(vec![
                Candidate::exact(Value::from("Los Angeles"), 2.0),
                Candidate::exact(Value::from("San Francisco"), 1.0),
            ]),
        );
        table.apply_delta(&delta).unwrap();
        let mut prov = ProvenanceStore::new();
        prov.record_original(
            TupleId::new(1),
            ColumnId::new(1),
            Value::from("San Francisco"),
        );
        (table, prov)
    }

    #[test]
    fn most_probable_policy_repairs_the_dirty_cell() {
        let (table, prov) = probabilistic_cities();
        let out = materialize_repairs(&table, Some(&prov), RepairPolicy::MostProbable).unwrap();
        assert_eq!(out.repairs.len(), 1);
        assert_eq!(out.unresolved, 0);
        let repair = &out.repairs[0];
        assert_eq!(repair.tuple, TupleId::new(1));
        assert_eq!(repair.value, Value::from("Los Angeles"));
        assert_eq!(repair.previous, Value::from("San Francisco"));
        assert!(repair.confidence > 0.6);
        // The materialised table is fully deterministic.
        assert_eq!(out.table.probabilistic_tuple_count(), 0);
        assert_eq!(
            out.table.tuple(TupleId::new(1)).unwrap().value(1).unwrap(),
            Value::from("Los Angeles")
        );
        // The source table is untouched.
        assert_eq!(table.probabilistic_tuple_count(), 1);
    }

    #[test]
    fn threshold_policy_leaves_low_confidence_cells_unresolved() {
        let (table, prov) = probabilistic_cities();
        let out = materialize_repairs(&table, Some(&prov), RepairPolicy::Threshold(0.9)).unwrap();
        assert!(out.repairs.is_empty());
        assert_eq!(out.unresolved, 1);
        // The unresolved cell fell back to its original value.
        assert_eq!(
            out.table.tuple(TupleId::new(1)).unwrap().value(1).unwrap(),
            Value::from("San Francisco")
        );
        // A permissive threshold behaves like MostProbable.
        let out = materialize_repairs(&table, Some(&prov), RepairPolicy::Threshold(0.5)).unwrap();
        assert_eq!(out.repairs.len(), 1);
        // Out-of-range thresholds are rejected.
        assert!(materialize_repairs(&table, Some(&prov), RepairPolicy::Threshold(1.5)).is_err());
    }

    #[test]
    fn keep_original_policy_only_repairs_when_original_is_impossible() {
        let (mut table, prov) = probabilistic_cities();
        // Original still among the candidates → kept.
        let out = materialize_repairs(&table, Some(&prov), RepairPolicy::KeepOriginal).unwrap();
        assert!(out.repairs.is_empty());
        assert_eq!(
            out.table.tuple(TupleId::new(1)).unwrap().value(1).unwrap(),
            Value::from("San Francisco")
        );
        // Drop the original from the candidate set → repaired.
        let mut delta = Delta::new();
        delta.push_update(
            TupleId::new(1),
            ColumnId::new(1),
            Cell::Determinate(Value::from("ignored")),
        );
        table.apply_delta(&delta).unwrap();
        let mut delta = Delta::new();
        delta.push_update(
            TupleId::new(1),
            ColumnId::new(1),
            Cell::probabilistic(vec![Candidate::exact(Value::from("Los Angeles"), 1.0)]),
        );
        table.apply_delta(&delta).unwrap();
        let out = materialize_repairs(&table, Some(&prov), RepairPolicy::KeepOriginal).unwrap();
        assert_eq!(out.repairs.len(), 1);
        assert_eq!(out.repairs[0].value, Value::from("Los Angeles"));
    }

    #[test]
    fn accept_candidate_collapses_one_cell() {
        let (mut table, _) = probabilistic_cities();
        // Accepting a non-candidate value fails.
        assert!(accept_candidate(&mut table, TupleId::new(1), 1, &Value::from("Boston")).is_err());
        // Accepting on a determinate cell fails.
        assert!(
            accept_candidate(&mut table, TupleId::new(0), 1, &Value::from("Los Angeles")).is_err()
        );
        accept_candidate(
            &mut table,
            TupleId::new(1),
            1,
            &Value::from("San Francisco"),
        )
        .unwrap();
        assert_eq!(table.probabilistic_tuple_count(), 0);
        assert_eq!(
            table.tuple(TupleId::new(1)).unwrap().value(1).unwrap(),
            Value::from("San Francisco")
        );
    }

    #[test]
    fn restore_originals_reverts_the_probabilistic_rewrite() {
        let (mut table, prov) = probabilistic_cities();
        let restored = restore_originals(&mut table, &prov).unwrap();
        assert_eq!(restored, 1);
        assert_eq!(table.probabilistic_tuple_count(), 0);
        assert_eq!(
            table.tuple(TupleId::new(1)).unwrap().value(1).unwrap(),
            Value::from("San Francisco")
        );
        // Restoring again is a no-op.
        assert_eq!(restore_originals(&mut table, &prov).unwrap(), 0);
    }

    #[test]
    fn tables_without_probabilistic_cells_are_returned_unchanged() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        let table = Table::from_rows("t", schema, vec![vec![Value::Int(1)]]).unwrap();
        let out = materialize_repairs(&table, None, RepairPolicy::MostProbable).unwrap();
        assert!(out.repairs.is_empty());
        assert_eq!(out.unresolved, 0);
        assert_eq!(out.table.len(), 1);
    }
}
