//! The Daisy engine: query-driven, incremental cleaning of denial-constraint
//! violations (§6).
//!
//! A [`DaisyEngine`] owns a catalog of (initially dirty) tables and a set of
//! denial constraints.  Every query is executed through a cleaning-aware
//! plan: the relevant cleaning operators (`cleanσ` for FDs and general DCs,
//! `clean⋈` for joins) are woven below the query operators, the detected
//! errors are replaced by probabilistic candidate fixes, and the isolated
//! delta is applied back to the base tables — so the dataset becomes
//! gradually probabilistic while queries keep returning correct (relaxed)
//! answers.
//!
//! The engine also implements the two adaptive decisions of the paper:
//!
//! * the **cost model** of §5.2.3 — after each query it compares the
//!   projected cost of continuing incrementally against cleaning the
//!   remaining dirty part of the dataset at once, and switches strategy when
//!   the latter is cheaper (Fig. 7 / Fig. 12),
//! * the **accuracy threshold** of Algorithm 2 — for general DCs it
//!   estimates the result accuracy of a partial (query-driven) check and
//!   falls back to the full cartesian check when the estimate is too low
//!   (Fig. 10).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use daisy_common::{
    ColumnId, DaisyConfig, DaisyError, IncrementalMode, QueryExecMode, Result, RuleId, Schema,
    TupleId, Value,
};
use daisy_exec::ExecContext;
use daisy_expr::{BoolExpr, DenialConstraint, FunctionalDependency, Violation};
use daisy_query::physical::{
    aggregate, filter_selection, filter_tuples, hash_join, hash_join_coded, project, PredicateMode,
};
use daisy_query::{parse_query, Query, QueryResult, SelectItem};
use daisy_storage::{
    ColumnSnapshot, Delta, Footprint, KeyStatistics, ProvenanceStore, Table, Tuple,
};

use crate::accuracy::{estimate_accuracy, CleaningDecision};
use crate::clean_dc::repair_dc_violations;
use crate::clean_select::clean_select_fd_with;
use crate::cost::{CostParameters, CostTracker, DetectionEstimate};
use crate::fd_index::FdIndex;
use crate::index::{canonicalize_violations, MaintainedIndex, ViolationIndex};
use crate::planner::CleaningPlan;
use crate::relaxation::FilterTarget;
use crate::report::{CleaningReport, CleaningStrategy, SessionReport};
use crate::session::EngineShared;
use crate::theta::ThetaMatrix;
use crate::world::{RuleKey, WorldState};

/// The outcome of one query: its (cleaned) result plus the cleaning report.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query result over the cleaned, relaxed data.
    pub result: QueryResult,
    /// What the cleaning work cost and produced.
    pub report: CleaningReport,
}

/// The query-driven cleaning engine.
///
/// An engine owns a [`WorldState`] — tables plus every derived cleaning
/// structure — and executes queries against it with cleaning woven into the
/// plan.  All repairs flow through one write path
/// (`apply_delta_patching`) that advances
/// [`Table::revision`] and patches the maintained [`ColumnSnapshot`] via
/// `absorb_delta`.  To serve many concurrent requests over the same tables,
/// convert the engine with [`DaisyEngine::into_shared`] and open cheap
/// copy-on-write [`CleaningSession`](crate::session::CleaningSession)
/// handles.
#[derive(Debug)]
pub struct DaisyEngine {
    config: DaisyConfig,
    ctx: ExecContext,
    world: WorldState,
    session: SessionReport,
    /// When `true`, every delta applied through [`apply_delta_patching`] is
    /// also appended to `delta_log` — the copy-on-write overlay a
    /// [`CleaningSession`](crate::session::CleaningSession) stages for its
    /// commit.
    record_deltas: bool,
    delta_log: Vec<(String, Delta)>,
    /// When `true`, execution records which cells it consulted (`reads`) and
    /// which `(table, rule)` cleaning states it advanced (`touched_rules`) —
    /// the inputs of footprint-based commit validation.
    record_footprints: bool,
    reads: Footprint,
    touched_rules: HashSet<RuleKey>,
}

impl DaisyEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: DaisyConfig) -> Result<Self> {
        DaisyEngine::from_world(config, WorldState::default())
    }

    /// Creates an engine over an existing world (the session layer clones a
    /// shared world and wraps it in a private engine).
    pub(crate) fn from_world(config: DaisyConfig, world: WorldState) -> Result<Self> {
        config.validate()?;
        let ctx =
            ExecContext::new(config.worker_threads).with_data_partitions(config.data_partitions);
        Ok(DaisyEngine {
            config,
            ctx,
            world,
            session: SessionReport::default(),
            record_deltas: false,
            delta_log: Vec::new(),
            record_footprints: false,
            reads: Footprint::new(),
            touched_rules: HashSet::new(),
        })
    }

    /// Creates an engine with the default configuration.
    pub fn with_defaults() -> Self {
        DaisyEngine::new(DaisyConfig::default()).expect("default config is valid")
    }

    /// Converts this engine into a shared, versioned core that concurrent
    /// [`CleaningSession`](crate::session::CleaningSession)s clean against.
    ///
    /// Register tables and constraints first; the shared core is immutable
    /// except through the serialized session-commit path.
    pub fn into_shared(self) -> Arc<EngineShared> {
        EngineShared::from_engine(self)
    }

    /// The engine's world (session/commit layer access).
    pub(crate) fn world(&self) -> &WorldState {
        &self.world
    }

    /// Replaces the engine's world and resets per-session accumulations
    /// (report and staged deltas) — used when a session rebases onto a newer
    /// shared world.
    pub(crate) fn reset_world(&mut self, world: WorldState) {
        self.world = world;
        self.session = SessionReport::default();
        self.delta_log.clear();
        self.clear_footprints();
    }

    /// Installs a merged world after a footprint-validated commit *without*
    /// clearing the already-drained staged log or the session report (the
    /// caller resets those explicitly once the receipt is built).
    pub(crate) fn install_world(&mut self, world: WorldState) {
        self.world = world;
    }

    /// Turns on staged-delta recording (sessions stage their repairs as
    /// copy-on-write overlays and publish them at commit).
    pub(crate) fn set_record_deltas(&mut self, record: bool) {
        self.record_deltas = record;
    }

    /// Turns on read-footprint and touched-rule recording (sessions under
    /// footprint-based commit validation).
    pub(crate) fn set_record_footprints(&mut self, record: bool) {
        self.record_footprints = record;
    }

    /// The cells consulted since the footprints were last cleared.
    pub(crate) fn reads(&self) -> &Footprint {
        &self.reads
    }

    /// The `(table, rule)` cleaning states advanced since the footprints
    /// were last cleared.
    pub(crate) fn touched_rules(&self) -> &HashSet<RuleKey> {
        &self.touched_rules
    }

    /// Drains the touched-rule set.
    pub(crate) fn take_touched_rules(&mut self) -> HashSet<RuleKey> {
        std::mem::take(&mut self.touched_rules)
    }

    /// Snapshot of the footprint state, paired with
    /// [`restore_footprints`](DaisyEngine::restore_footprints) to make a
    /// failed query transactional for the read set too.
    pub(crate) fn footprint_checkpoint(&self) -> (Footprint, HashSet<RuleKey>) {
        (self.reads.clone(), self.touched_rules.clone())
    }

    /// Restores a footprint checkpoint taken before a failed query.
    pub(crate) fn restore_footprints(&mut self, reads: Footprint, touched: HashSet<RuleKey>) {
        self.reads = reads;
        self.touched_rules = touched;
    }

    /// Clears the recorded footprints (after a commit publishes them).
    pub(crate) fn clear_footprints(&mut self) {
        self.reads = Footprint::new();
        self.touched_rules.clear();
    }

    /// Rolls the engine back to a pre-query checkpoint: restores the world
    /// and truncates the staged-delta log.  Used by sessions to make each
    /// query transactional — a failed execution must not leak partially
    /// applied repairs into a later commit.
    pub(crate) fn rollback_to(&mut self, world: WorldState, staged_len: usize) {
        self.world = world;
        self.delta_log.truncate(staged_len);
    }

    /// Clears the accumulated per-session report (after a session publishes
    /// a commit, its report starts fresh).
    pub(crate) fn clear_session_report(&mut self) {
        self.session = SessionReport::default();
    }

    /// The staged deltas recorded since the last [`reset_world`] /
    /// [`take_delta_log`], in application order.
    ///
    /// [`reset_world`]: DaisyEngine::reset_world
    /// [`take_delta_log`]: DaisyEngine::take_delta_log
    pub(crate) fn delta_log(&self) -> &[(String, Delta)] {
        &self.delta_log
    }

    /// Drains the staged-delta log.
    pub(crate) fn take_delta_log(&mut self) -> Vec<(String, Delta)> {
        std::mem::take(&mut self.delta_log)
    }

    /// Registers a (dirty) table.
    pub fn register_table(&mut self, table: Table) {
        self.world
            .provenance
            .entry(table.name().to_string())
            .or_default();
        self.world.catalog.add(table);
    }

    /// Registers a denial constraint, returning its rule id.
    pub fn add_constraint(&mut self, dc: DenialConstraint) -> RuleId {
        self.world.constraints.add(dc)
    }

    /// Registers a constraint given its compact textual form.
    pub fn add_constraint_text(&mut self, name: &str, text: &str) -> Result<RuleId> {
        Ok(self
            .world
            .constraints
            .add(DenialConstraint::parse(name, text)?))
    }

    /// Registers a functional dependency.
    pub fn add_fd(&mut self, fd: &FunctionalDependency, name: &str) -> RuleId {
        self.world.constraints.add_fd(fd, name)
    }

    /// Access to a registered table (possibly already partially cleaned).
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.world.catalog.table(name)
    }

    /// The registered constraints.
    pub fn constraints(&self) -> &daisy_expr::ConstraintSet {
        &self.world.constraints
    }

    /// The per-table provenance store.
    pub fn provenance(&self, table: &str) -> Option<&ProvenanceStore> {
        self.world.provenance.get(table).map(Arc::as_ref)
    }

    /// The session report accumulated so far.
    pub fn session(&self) -> &SessionReport {
        &self.session
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DaisyConfig {
        &self.config
    }

    /// The cached columnar snapshot of a table, if one is maintained.
    pub fn snapshot(&self, table: &str) -> Option<&ColumnSnapshot> {
        self.world.snapshot_ref(table)
    }

    /// Brings the table's columnar snapshot in line with the snapshot knob
    /// and the table's current revision: builds it when enabled and absent
    /// or stale (an out-of-band mutation bumped the revision), drops it
    /// when the knob disables snapshots for this table.
    fn refresh_snapshot(&mut self, table_name: &str) -> Result<()> {
        let table = self.world.catalog.table(table_name)?;
        if !self.config.snapshot_mode.enables(table.len()) {
            self.world.snapshots.remove(table_name);
            return Ok(());
        }
        let current = self
            .world
            .snapshots
            .get(table_name)
            .is_some_and(|snap| snap.is_current(table));
        if !current {
            self.world.snapshots.insert(
                table_name.to_string(),
                Arc::new(ColumnSnapshot::build(table)?),
            );
        }
        Ok(())
    }

    /// The snapshot the vectorized query path should read a table through,
    /// per the [`DaisyConfig::query_exec`] knob: `Row` never vectorizes,
    /// `Auto` uses the maintained snapshot only while it is current, and
    /// `Vectorized` builds an ad-hoc snapshot when no current one is
    /// maintained — so a forced run always takes the coded kernels.
    fn query_snapshot(&self, table_name: &str) -> Result<Option<Arc<ColumnSnapshot>>> {
        let table = self.world.catalog.table(table_name)?;
        let maintained = self
            .world
            .snapshots
            .get(table_name)
            .filter(|snap| snap.is_current(table))
            .cloned();
        Ok(match self.config.query_exec {
            QueryExecMode::Row => None,
            QueryExecMode::Auto => maintained,
            QueryExecMode::Vectorized => match maintained {
                Some(snap) => Some(snap),
                None => Some(Arc::new(ColumnSnapshot::build(table)?)),
            },
        })
    }

    /// Parses and executes a SQL query.
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutcome> {
        let query = parse_query(sql)?;
        self.execute(&query)
    }

    /// Executes a parsed query with cleaning woven into the plan.
    pub fn execute(&mut self, query: &Query) -> Result<QueryOutcome> {
        let start = Instant::now();
        let plan = CleaningPlan::build(
            query,
            &self.world.constraints,
            &self.world.catalog,
            &self.config,
        )?;

        let mut report = CleaningReport::not_needed(query.to_string(), 0, start.elapsed());
        report.strategy = if plan.is_empty() {
            CleaningStrategy::NotNeeded
        } else {
            CleaningStrategy::Incremental
        };

        // ---- driving table: filter + clean ---------------------------------
        let driving = query.from.clone();
        // Give the vectorized path current snapshots to read through (the
        // refresh respects the snapshot-mode policy; `Auto` silently falls
        // back to the row path for tables it leaves bare).
        if self.config.query_exec != QueryExecMode::Row {
            self.refresh_snapshot(&driving)?;
            for join in &query.joins {
                self.refresh_snapshot(&join.table)?;
            }
        }
        let driving_schema = Arc::new(
            self.world
                .catalog
                .table(&driving)?
                .schema()
                .qualify(&driving),
        );
        let driving_filter = filter_for_table(query, &driving, query.joins.is_empty());
        // Footprint of the scan itself: without joins the query consults the
        // filter columns across every row (plus the answer rows, recorded
        // below); joins consult whole relations (key columns drive
        // qualification, and joined output carries every column).
        if self.record_footprints {
            if query.joins.is_empty() {
                self.record_filter_columns(&driving, &driving_schema, &driving_filter);
            } else {
                self.reads.record_table(&driving);
                for join in &query.joins {
                    self.reads.record_table(&join.table);
                }
            }
        }
        let mut current = self.clean_table_subset(
            &driving,
            &driving_schema,
            &driving_filter,
            &plan,
            &mut report,
        )?;
        let mut current_schema = driving_schema;
        if self.record_footprints && query.joins.is_empty() {
            self.reads
                .record_rows(&driving, current.iter().map(|t| t.id));
        }

        // ---- joins: clean each joined table's qualifying part, then join ---
        for join in &query.joins {
            let right_name = join.table.clone();
            let right_schema = Arc::new(
                self.world
                    .catalog
                    .table(&right_name)?
                    .schema()
                    .qualify(&right_name),
            );
            // The qualifying part of the joined table is determined by the
            // current (already cleaned) left side: only right tuples whose
            // join key could match a left key participate.  We clean that
            // part, which updates the base table, and then join against the
            // whole (partially cleaned) table.
            let left_keys: HashSet<Value> = current
                .iter()
                .flat_map(|t| {
                    current_schema
                        .index_of(&join.left_key)
                        .ok()
                        .map(|idx| {
                            t.cell(idx)
                                .map(|c| {
                                    c.possible_values().into_iter().cloned().collect::<Vec<_>>()
                                })
                                .unwrap_or_default()
                        })
                        .unwrap_or_default()
                })
                .collect();
            let right_key_idx = right_schema.index_of(&join.right_key)?;
            let qualifying: Vec<Tuple> = self
                .world
                .catalog
                .table(&right_name)?
                .tuples()
                .iter()
                .filter(|t| {
                    t.cell(right_key_idx)
                        .map(|c| c.possible_values().iter().any(|v| left_keys.contains(v)))
                        .unwrap_or(false)
                })
                .cloned()
                .collect();
            self.clean_answer_for_table(
                &right_name,
                &right_schema,
                qualifying,
                &plan,
                &mut report,
            )?;

            // Code-keyed join when a current snapshot covers the (partially
            // cleaned) build side; the row-path hash join otherwise.  Both
            // produce byte-identical output.
            let right_snapshot = self.query_snapshot(&right_name)?;
            let right_table = self.world.catalog.shared(&right_name)?;
            let joined = match right_snapshot {
                Some(snapshot) => hash_join_coded(
                    &self.ctx,
                    &current_schema,
                    &current,
                    None,
                    &right_schema,
                    right_table.tuples(),
                    None,
                    &snapshot,
                    &join.left_key,
                    &join.right_key,
                )?,
                None => hash_join(
                    &self.ctx,
                    &current_schema,
                    &current,
                    &right_schema,
                    right_table.tuples(),
                    &join.left_key,
                    &join.right_key,
                )?,
            };
            current_schema = joined.schema;
            current = joined.tuples;
        }

        // ---- late filter (references joined tables) -------------------------
        if !query.joins.is_empty() {
            let late = filter_for_table(query, &driving, true);
            if late != BoolExpr::True && late != driving_filter {
                current = filter_tuples(
                    &self.ctx,
                    &current_schema,
                    &current,
                    &query.filter,
                    PredicateMode::Possible,
                )?;
            }
        }

        // ---- aggregation / projection ---------------------------------------
        let result = if query.is_aggregate() {
            let mut group_by = query.group_by.clone();
            let mut aggregates = Vec::new();
            for item in &query.select {
                match item {
                    SelectItem::Aggregate { func, column } => aggregates.push(
                        daisy_query::physical::AggregateSpec::new(*func, column.as_deref()),
                    ),
                    SelectItem::Column(c) => {
                        if !group_by.contains(c) {
                            group_by.push(c.clone());
                        }
                    }
                    SelectItem::Wildcard => {
                        return Err(DaisyError::Plan(
                            "SELECT * cannot be combined with GROUP BY".into(),
                        ))
                    }
                }
            }
            if aggregates.is_empty() {
                aggregates.push(daisy_query::physical::AggregateSpec::new(
                    daisy_query::AggregateFunc::Count,
                    None,
                ));
            }
            let (schema, tuples) =
                aggregate(&self.ctx, &current_schema, &current, &group_by, &aggregates)?;
            QueryResult::new(schema, tuples)
        } else {
            let columns: Vec<String> = query
                .select
                .iter()
                .filter_map(|item| match item {
                    SelectItem::Column(c) => Some(c.clone()),
                    _ => None,
                })
                .collect();
            let wildcard = query
                .select
                .iter()
                .any(|i| matches!(i, SelectItem::Wildcard));
            if wildcard || columns.is_empty() {
                QueryResult::new(current_schema, current)
            } else {
                let (schema, tuples) = project(&current_schema, &current, &columns)?;
                QueryResult::new(schema, tuples)
            }
        };

        report.result_tuples = result.len();
        report.elapsed = start.elapsed();
        self.session.queries.push(report.clone());
        Ok(QueryOutcome { result, report })
    }

    /// Filters the table and cleans the resulting answer under every
    /// cleaning step that targets it; returns the cleaned tuples that
    /// (possibly) satisfy the filter.
    fn clean_table_subset(
        &mut self,
        table_name: &str,
        schema: &Arc<Schema>,
        filter: &BoolExpr,
        plan: &CleaningPlan,
        report: &mut CleaningReport,
    ) -> Result<Vec<Tuple>> {
        let answer = {
            let snapshot = self.query_snapshot(table_name)?;
            let table = self.world.catalog.table(table_name)?;
            match snapshot {
                // Vectorized: a selection vector over snapshot codes, then
                // materialize the qualifying tuples — identical output to
                // the row path's clone-filter by construction.
                Some(snapshot) => filter_selection(
                    &self.ctx,
                    schema,
                    table.tuples(),
                    &snapshot,
                    None,
                    filter,
                    PredicateMode::Possible,
                )?
                .into_iter()
                .map(|pos| table.tuples()[pos].clone())
                .collect(),
                None => filter_tuples(
                    &self.ctx,
                    schema,
                    table.tuples(),
                    filter,
                    PredicateMode::Possible,
                )?,
            }
        };
        let cleaned = self.clean_answer_for_table(table_name, schema, answer, plan, report)?;
        // Keep only the tuples that (possibly) satisfy the filter: relaxation
        // extras whose candidates fall in the query range stay, the rest were
        // cleaned in the base table but do not belong to this result.
        filter_tuples(&self.ctx, schema, &cleaned, filter, PredicateMode::Possible)
    }

    /// Cleans an already-computed answer of one table under every applicable
    /// step of the plan, applies the deltas to the base table and returns
    /// the cleaned answer plus relaxation extras.
    fn clean_answer_for_table(
        &mut self,
        table_name: &str,
        schema: &Arc<Schema>,
        answer: Vec<Tuple>,
        plan: &CleaningPlan,
        report: &mut CleaningReport,
    ) -> Result<Vec<Tuple>> {
        let steps: Vec<crate::planner::CleaningStep> =
            plan.steps_for(table_name).into_iter().cloned().collect();
        if steps.is_empty() {
            return Ok(answer);
        }
        let mut working = answer;
        for step in steps {
            let key = (table_name.to_string(), step.rule.raw());
            if self.world.fully_cleaned.contains(&key) {
                continue;
            }
            match &step.fd {
                Some(fd) => {
                    working = self.clean_fd_step(
                        table_name,
                        fd,
                        step.rule,
                        step.filter_target,
                        working,
                        report,
                    )?;
                }
                None => {
                    let rule = self
                        .world
                        .constraints
                        .rule(step.rule)
                        .cloned()
                        .ok_or_else(|| DaisyError::Plan("unknown rule in plan".into()))?;
                    working = self.clean_dc_step(
                        table_name,
                        schema,
                        &rule,
                        step.detection,
                        working,
                        report,
                    )?;
                }
            }
        }
        Ok(working)
    }

    /// Runs `cleanσ` for one FD over one table's answer.
    fn clean_fd_step(
        &mut self,
        table_name: &str,
        fd: &FunctionalDependency,
        rule: RuleId,
        filter_target: FilterTarget,
        answer: Vec<Tuple>,
        report: &mut CleaningReport,
    ) -> Result<Vec<Tuple>> {
        let key = (table_name.to_string(), rule.raw());
        if self.record_footprints {
            self.touched_rules.insert(key.clone());
            self.record_rule_columns(table_name, &fd.attributes());
        }
        self.refresh_snapshot(table_name)?;
        // Build (or reuse) the FD group index: the pre-computed statistics.
        // The index is computed over original values (via provenance) so a
        // rule added after other rules already repaired cells still sees the
        // dirty groups of the original data (§4.3).
        if !self.world.fd_indexes.contains_key(&key) {
            let provenance = Arc::clone(
                self.world
                    .provenance
                    .entry(table_name.to_string())
                    .or_default(),
            );
            let table = self.world.catalog.table(table_name)?;
            let index = FdIndex::build_with_provenance(table, fd, &provenance)?;
            let params = CostParameters {
                n: table.len(),
                epsilon: index.dirty_tuple_count(),
                p: index.mean_candidates().max(index.mean_lhs_fanout()),
                is_fd: true,
            };
            self.world
                .trackers
                .insert(key.clone(), CostTracker::new(params));
            self.world.fd_indexes.insert(key.clone(), Arc::new(index));
        }
        let index = Arc::clone(self.world.fd_indexes.get(&key).expect("just inserted"));
        let outcome = {
            let provenance = Arc::make_mut(
                self.world
                    .provenance
                    .entry(table_name.to_string())
                    .or_default(),
            );
            let table = self.world.catalog.table(table_name)?;
            clean_select_fd_with(
                &self.ctx,
                rule,
                &index,
                &answer,
                table.tuples(),
                filter_target,
                self.config.max_relaxation_iterations,
                provenance,
                self.world.snapshots.get(table_name).map(Arc::as_ref),
            )?
        };
        // Apply the delta back to the base table (in-place update), keeping
        // the columnar snapshot in sync.
        let cells_updated = outcome.delta.len();
        let candidates_written = outcome.delta.total_candidates();
        if !outcome.delta.is_empty() {
            self.apply_delta_patching(table_name, &outcome.delta)?;
        }
        report.extra_tuples += outcome.cleaned.len() - outcome.answer_len;
        report.relaxation_iterations += outcome.relaxation.iterations;
        report.errors_repaired += outcome.errors_detected;
        report.cells_updated += cells_updated;

        // Cost model: record and possibly switch to full cleaning.
        if let Some(tracker) = self.world.trackers.get_mut(&key) {
            tracker.record_query(
                outcome.answer_len,
                outcome.cleaned.len() - outcome.answer_len,
                outcome.relaxation.scanned,
                outcome.errors_detected,
                candidates_written,
                0,
            );
            if self.config.use_cost_model && tracker.should_switch_to_full() {
                report.strategy = CleaningStrategy::FullRemaining;
                self.clean_remaining_fd(table_name, fd, rule)?;
                self.world.fully_cleaned.insert(key.clone());
            }
        }
        if self.record_footprints {
            self.reads
                .record_rows(table_name, outcome.cleaned.iter().map(|t| t.id));
        }
        Ok(outcome.cleaned)
    }

    /// Runs `cleanσ` for one general DC over one table's answer.
    fn clean_dc_step(
        &mut self,
        table_name: &str,
        schema: &Arc<Schema>,
        rule: &DenialConstraint,
        detection: daisy_common::DetectionStrategy,
        answer: Vec<Tuple>,
        report: &mut CleaningReport,
    ) -> Result<Vec<Tuple>> {
        let key = (table_name.to_string(), rule.id.raw());
        if self.record_footprints {
            self.touched_rules.insert(key.clone());
            self.record_rule_columns(table_name, &rule.attributes());
            self.reads
                .record_rows(table_name, answer.iter().map(|t| t.id));
        }
        self.refresh_snapshot(table_name)?;
        if !self.world.theta_matrices.contains_key(&key) {
            let table = self.world.catalog.table(table_name)?;
            let matrix = ThetaMatrix::build_with_strategy_snap(
                schema,
                table.tuples(),
                rule,
                self.config.theta_blocks_per_side(),
                detection,
                self.world.snapshots.get(table_name).map(Arc::as_ref),
            )?;
            let params = CostParameters {
                n: table.len(),
                epsilon: 0,
                p: 2.0,
                is_fd: false,
            };
            self.world
                .trackers
                .insert(key.clone(), CostTracker::new(params));
            self.world
                .theta_matrices
                .insert(key.clone(), Arc::new(matrix));
        }

        // The value range the answer spans on the partition attribute drives
        // both the incremental matrix check and Algorithm 2's estimate.
        let partition_column = self
            .world
            .theta_matrices
            .get(&key)
            .expect("just inserted")
            .partition_column;
        let mut low: Option<Value> = None;
        let mut high: Option<Value> = None;
        for tuple in &answer {
            let v = tuple.value(partition_column)?;
            if v.is_null() {
                continue;
            }
            low = Some(match low.take() {
                Some(l) => Value::min_of(l, v.clone()),
                None => v.clone(),
            });
            high = Some(match high.take() {
                Some(h) => Value::max_of(h, v),
                None => v,
            });
        }

        // The matrix is detached copy-on-write: a session touching this rule
        // for the first time pays one matrix copy, after which the checked
        // block bookkeeping is private to its world.
        let matrix = Arc::make_mut(
            self.world
                .theta_matrices
                .get_mut(&key)
                .expect("just inserted"),
        );
        let estimate = estimate_accuracy(
            matrix,
            answer.len(),
            low.as_ref(),
            high.as_ref(),
            self.config.accuracy_threshold,
        );
        report.estimated_accuracy = estimate.accuracy.min(report.estimated_accuracy);

        // The snapshot was refreshed before any borrow of the matrix, so it
        // reflects exactly the tuples cloned here.
        let table_tuples: Vec<Tuple> = self.world.catalog.table(table_name)?.tuples().to_vec();
        let snapshot = self.world.snapshots.get(table_name).map(Arc::as_ref);
        let (violations, stats) = if estimate.decision == CleaningDecision::Full {
            report.strategy = CleaningStrategy::FullRemaining;
            matrix.check_all_with(&self.ctx, schema, &table_tuples, snapshot)?
        } else {
            matrix.check_range_with(
                &self.ctx,
                schema,
                &table_tuples,
                snapshot,
                low.as_ref(),
                high.as_ref(),
            )?
        };

        // Resolve the violations' tuples through the parallel id index of
        // the violation-index subsystem before computing candidate ranges.
        let by_id: HashMap<TupleId, &Tuple> = crate::index::id_index(&self.ctx, &table_tuples);
        let provenance = Arc::make_mut(
            self.world
                .provenance
                .entry(table_name.to_string())
                .or_default(),
        );
        let outcome =
            repair_dc_violations(&self.ctx, schema, rule, &violations, &by_id, provenance)?;
        drop(by_id);

        let cells_updated = outcome.delta.len();
        let candidates_written = outcome.delta.total_candidates();
        if !outcome.delta.is_empty() {
            self.apply_delta_patching(table_name, &outcome.delta)?;
        }
        report.errors_repaired += outcome.errors_detected;
        report.cells_updated += cells_updated;
        if let Some(tracker) = self.world.trackers.get_mut(&key) {
            tracker.record_query(
                answer.len(),
                0,
                0,
                outcome.errors_detected,
                candidates_written,
                stats.pairs_compared,
            );
        }

        // Return the answer with the fresh candidate cells (re-read the
        // updated tuples from the base table so later operators see them).
        let table = self.world.catalog.table(table_name)?;
        Ok(answer
            .iter()
            .map(|t| table.tuple(t.id).cloned().unwrap_or_else(|| t.clone()))
            .collect())
    }

    /// Cleans the remaining dirty part of a table under one FD in a single
    /// pass (the "switch to full cleaning" action of §5.2.3).
    pub fn clean_remaining_fd(
        &mut self,
        table_name: &str,
        fd: &FunctionalDependency,
        rule: RuleId,
    ) -> Result<usize> {
        let key = (table_name.to_string(), rule.raw());
        if self.record_footprints {
            self.touched_rules.insert(key.clone());
            self.reads.record_table(table_name);
        }
        self.refresh_snapshot(table_name)?;
        if !self.world.fd_indexes.contains_key(&key) {
            let provenance = Arc::clone(
                self.world
                    .provenance
                    .entry(table_name.to_string())
                    .or_default(),
            );
            let table = self.world.catalog.table(table_name)?;
            self.world.fd_indexes.insert(
                key.clone(),
                Arc::new(FdIndex::build_with_provenance(table, fd, &provenance)?),
            );
        }
        let index = Arc::clone(self.world.fd_indexes.get(&key).expect("present"));
        let outcome = {
            let provenance = Arc::make_mut(
                self.world
                    .provenance
                    .entry(table_name.to_string())
                    .or_default(),
            );
            let table = self.world.catalog.table(table_name)?;
            let all = table.tuples().to_vec();
            clean_select_fd_with(
                &self.ctx,
                rule,
                &index,
                &all,
                table.tuples(),
                FilterTarget::Other,
                self.config.max_relaxation_iterations,
                provenance,
                self.world.snapshots.get(table_name).map(Arc::as_ref),
            )?
        };
        let repaired = outcome.errors_detected;
        if !outcome.delta.is_empty() {
            self.apply_delta_patching(table_name, &outcome.delta)?;
        }
        self.world.fully_cleaned.insert(key);
        Ok(repaired)
    }

    /// Adds a new rule after some cleaning has already happened and cleans
    /// the whole table for that rule only, merging the new candidate fixes
    /// with the existing probabilistic data through the provenance store
    /// (the single-execution scenario of Table 7).
    pub fn add_rule_incrementally(
        &mut self,
        table_name: &str,
        dc: DenialConstraint,
    ) -> Result<usize> {
        let rule = self.world.constraints.add(dc);
        let constraint = self
            .world
            .constraints
            .rule(rule)
            .cloned()
            .expect("just added");
        match constraint.as_fd() {
            Some(fd) => self.clean_remaining_fd(table_name, &fd, rule),
            None => {
                if self.record_footprints {
                    self.touched_rules
                        .insert((table_name.to_string(), rule.raw()));
                    self.reads.record_table(table_name);
                }
                let schema = Arc::new(
                    self.world
                        .catalog
                        .table(table_name)?
                        .schema()
                        .qualify(table_name),
                );
                self.refresh_snapshot(table_name)?;
                let table_tuples: Vec<Tuple> =
                    self.world.catalog.table(table_name)?.tuples().to_vec();
                let snapshot = self.world.snapshots.get(table_name).map(Arc::as_ref);
                let mut matrix = ThetaMatrix::build_with_strategy_snap(
                    &schema,
                    &table_tuples,
                    &constraint,
                    self.config.theta_blocks_per_side(),
                    self.config.detection_strategy,
                    snapshot,
                )?;
                let (violations, _) =
                    matrix.check_all_with(&self.ctx, &schema, &table_tuples, snapshot)?;
                let by_id: HashMap<TupleId, &Tuple> =
                    crate::index::id_index(&self.ctx, &table_tuples);
                let provenance = Arc::make_mut(
                    self.world
                        .provenance
                        .entry(table_name.to_string())
                        .or_default(),
                );
                let outcome = repair_dc_violations(
                    &self.ctx,
                    &schema,
                    &constraint,
                    &violations,
                    &by_id,
                    provenance,
                )?;
                drop(by_id);
                let repaired = outcome.errors_detected;
                if !outcome.delta.is_empty() {
                    self.apply_delta_patching(table_name, &outcome.delta)?;
                }
                self.world
                    .fully_cleaned
                    .insert((table_name.to_string(), rule.raw()));
                Ok(repaired)
            }
        }
    }

    /// Streaming ingest: appends `rows` to `table_name` as one staged
    /// [`Delta`] and runs **delta-restricted** detect → relax → repair for
    /// every registered two-tuple rule over the table — only the
    /// `Δ × (T ∪ Δ)` candidate pairs are enumerated, against the world's
    /// persistent [`MaintainedIndex`]es instead of a per-batch rebuild
    /// (`DAISY_INCREMENTAL` / [`DaisyConfig::incremental_detection`] selects
    /// the maintained, rebuild-everything, or cost-modelled path; all three
    /// produce byte-identical violations, repairs and pair counts).
    ///
    /// The repairs flow through the same `apply_delta_patching` write path
    /// as query-driven cleaning, so staged-delta recording and
    /// footprint-based commit validation compose unchanged.  Rules that do
    /// not quantify exactly two tuples have no index plan and are skipped —
    /// exactly the rules the query-driven detector also cannot check.
    pub fn ingest_rows(&mut self, table_name: &str, rows: Vec<Vec<Value>>) -> Result<QueryOutcome> {
        let start = Instant::now();
        let row_count = rows.len();
        let query_text = format!("INGEST INTO {table_name} ({row_count} rows)");
        let schema = Arc::clone(self.world.catalog.table(table_name)?.schema());
        let mut report = CleaningReport::not_needed(query_text, 0, start.elapsed());
        if row_count == 0 {
            self.session.queries.push(report.clone());
            return Ok(QueryOutcome {
                result: QueryResult::new(schema, Vec::new()),
                report,
            });
        }

        // The batch lands as one append delta with sequential fresh ids —
        // the same id contract `Table::apply_delta` enforces, so a commit
        // replay (which re-runs this ingest against a newer world) simply
        // mints fresh ids there.
        let mut delta = Delta::new();
        {
            let table = self.world.catalog.table(table_name)?;
            let base = table.next_tuple_id().raw();
            for (k, row) in rows.into_iter().enumerate() {
                delta.push_append(TupleId::new(base + k as u64), row);
            }
        }
        // Refresh the snapshot *before* the append so `absorb_delta` can
        // patch it instead of leaving it stale.
        self.refresh_snapshot(table_name)?;
        self.apply_delta_patching(table_name, &delta)?;
        if self.record_footprints {
            self.reads
                .record_rows(table_name, delta.appends().iter().map(|a| a.id));
        }

        // Δ starts as the appended tail and grows with every repair a rule
        // stages: a cell repaired under one rule can violate the next.
        let mut delta_positions: std::collections::BTreeSet<usize> = {
            let table = self.world.catalog.table(table_name)?;
            (table.len() - row_count..table.len()).collect()
        };

        let rules: Vec<DenialConstraint> = self
            .world
            .constraints
            .rules()
            .iter()
            .filter(|r| r.index_plan().is_some())
            .filter(|r| r.attributes().iter().all(|a| schema.index_of(a).is_ok()))
            .cloned()
            .collect();
        report.strategy = if rules.is_empty() {
            CleaningStrategy::NotNeeded
        } else {
            CleaningStrategy::Incremental
        };
        for rule in &rules {
            self.ingest_clean_rule(table_name, &schema, rule, &mut delta_positions, &mut report)?;
        }

        report.elapsed = start.elapsed();
        self.session.queries.push(report.clone());
        Ok(QueryOutcome {
            result: QueryResult::new(schema, Vec::new()),
            report,
        })
    }

    /// One rule of an ingest batch: delta-restricted detection against the
    /// maintained (or freshly rebuilt) index, then the holistic repair of
    /// `clean_dc` applied through the standard write path.
    fn ingest_clean_rule(
        &mut self,
        table_name: &str,
        schema: &Arc<Schema>,
        rule: &DenialConstraint,
        delta_positions: &mut std::collections::BTreeSet<usize>,
        report: &mut CleaningReport,
    ) -> Result<()> {
        let key = (table_name.to_string(), rule.id.raw());
        if self.record_footprints {
            self.touched_rules.insert(key.clone());
            self.record_rule_columns(table_name, &rule.attributes());
        }
        let positions: Vec<usize> = delta_positions.iter().copied().collect();
        let table_tuples: Vec<Tuple> = self.world.catalog.table(table_name)?.tuples().to_vec();
        let (violations, _pairs) =
            self.ingest_detect(table_name, schema, rule, &positions, &table_tuples)?;
        if violations.is_empty() {
            return Ok(());
        }
        let by_id: HashMap<TupleId, &Tuple> = crate::index::id_index(&self.ctx, &table_tuples);
        let provenance = Arc::make_mut(
            self.world
                .provenance
                .entry(table_name.to_string())
                .or_default(),
        );
        let outcome =
            repair_dc_violations(&self.ctx, schema, rule, &violations, &by_id, provenance)?;
        drop(by_id);
        let cells_updated = outcome.delta.len();
        if !outcome.delta.is_empty() {
            self.apply_delta_patching(table_name, &outcome.delta)?;
            let table = self.world.catalog.table(table_name)?;
            for update in outcome.delta.updates() {
                if let Some(pos) = table.position_of(update.tuple) {
                    delta_positions.insert(pos);
                }
            }
        }
        report.errors_repaired += outcome.errors_detected;
        report.cells_updated += cells_updated;
        Ok(())
    }

    /// Delta-restricted detection for one rule: the `Δ × (T ∪ Δ)` candidate
    /// pairs, via the world's [`MaintainedIndex`] (`On`), a fresh
    /// [`ViolationIndex`] swept with the `i ∈ Δ ∨ j ∈ Δ` admit filter
    /// (`Off` — the rebuild-everything baseline), or whichever the cost
    /// model prices cheaper (`Auto`).  All paths return the same canonical
    /// violations and the same candidate-pair count.
    fn ingest_detect(
        &mut self,
        table_name: &str,
        schema: &Schema,
        rule: &DenialConstraint,
        positions: &[usize],
        tuples: &[Tuple],
    ) -> Result<(Vec<Violation>, usize)> {
        let plan = rule
            .index_plan()
            .expect("ingest_rows only admits rules with an index plan");
        let key = (table_name.to_string(), rule.id.raw());
        let use_maintained = match self.config.incremental_detection {
            IncrementalMode::On => true,
            IncrementalMode::Off => false,
            IncrementalMode::Auto => {
                let table = self.world.catalog.table(table_name)?;
                match self.world.violation_indexes.get(&key) {
                    // A live index prices maintenance against a rebuild.
                    Some(index) if index.is_current(table) => {
                        let stats = KeyStatistics {
                            rows: index.rows(),
                            distinct: index.partition_count(),
                            max_group: index.max_partition_size(),
                        };
                        DetectionEstimate::new(index.rows(), stats)
                            .with_columnar(self.world.snapshots.contains_key(table_name))
                            .prefers_incremental(positions.len())
                    }
                    // No (current) index yet: building one costs the same
                    // as the rebuild baseline and amortizes over the stream.
                    _ => true,
                }
            }
        };
        if use_maintained {
            let table = self.world.catalog.table(table_name)?;
            let current = self
                .world
                .violation_indexes
                .get(&key)
                .is_some_and(|index| index.is_current(table));
            if !current {
                let built = MaintainedIndex::build(schema, rule, &plan, table)?;
                self.world
                    .violation_indexes
                    .insert(key.clone(), Arc::new(built));
            }
            let index = self
                .world
                .violation_indexes
                .get(&key)
                .expect("just ensured current");
            index.detect_delta(&self.ctx, schema, tuples, positions)
        } else {
            let index = ViolationIndex::build(&self.ctx, schema, rule, &plan, tuples)?;
            let in_delta: HashSet<usize> = positions.iter().copied().collect();
            let (found, pairs) = index.sweep_detect(&self.ctx, schema, tuples, |i, j| {
                in_delta.contains(&i) || in_delta.contains(&j)
            })?;
            Ok((canonicalize_violations(found), pairs))
        }
    }

    /// Applies a delta to a base table and keeps its columnar snapshot
    /// *and* maintained violation indexes in sync: both are patched
    /// cell-by-cell (`O(|delta|)`).
    /// `absorb_delta` itself refuses the patch — leaving the structure stale
    /// for the next refresh/rebuild to replace — when it did not reflect
    /// the pre-delta table.  This is the single write path through which
    /// engine repairs reach registered tables; both the table and its
    /// snapshot detach copy-on-write from any concurrent sharer first, so
    /// other sessions keep observing their consistent pre-delta world.
    ///
    /// When staged-delta recording is on (sessions), the delta is also
    /// appended to the session's overlay log for publication at commit.
    pub(crate) fn apply_delta_patching(
        &mut self,
        table_name: &str,
        delta: &Delta,
    ) -> Result<usize> {
        let table = self.world.catalog.table_mut(table_name)?;
        let applied = table.apply_delta(delta)?;
        if let Some(snap) = self.world.snapshots.get_mut(table_name) {
            Arc::make_mut(snap).absorb_delta(table, delta)?;
        }
        for (key, index) in self.world.violation_indexes.iter_mut() {
            if key.0 == table_name {
                Arc::make_mut(index).absorb_delta(table, delta)?;
            }
        }
        if self.record_deltas {
            self.delta_log.push((table_name.to_string(), delta.clone()));
        }
        Ok(applied)
    }

    /// Records `filter columns × all rows` reads; any column that does not
    /// resolve against the schema degrades the footprint to the whole table
    /// (conservative, never unsound).  A filter that references no column
    /// (an unfiltered scan) reads the whole relation — its answer depends
    /// on the table's *extent*, so a commit that appends rows must
    /// invalidate it.
    fn record_filter_columns(&mut self, table: &str, schema: &Schema, filter: &BoolExpr) {
        let columns = filter.columns();
        if columns.is_empty() {
            self.reads.record_table(table);
            return;
        }
        for column in columns {
            match schema.index_of(&column) {
                Ok(idx) => self
                    .reads
                    .record_columns(table, [ColumnId::new(idx as u64)]),
                Err(_) => {
                    self.reads.record_table(table);
                    return;
                }
            }
        }
    }

    /// Records a rule's attribute columns (across all rows) as read;
    /// unresolved attributes degrade to a whole-table read.
    fn record_rule_columns(&mut self, table: &str, attributes: &[String]) {
        let Ok(schema) = self.world.catalog.table(table).map(|t| t.schema().clone()) else {
            self.reads.record_table(table);
            return;
        };
        for attr in attributes {
            match schema.index_of(attr) {
                Ok(idx) => self
                    .reads
                    .record_columns(table, [ColumnId::new(idx as u64)]),
                Err(_) => {
                    self.reads.record_table(table);
                    return;
                }
            }
        }
    }
}

/// The part of the WHERE clause relevant before joining: for the driving
/// table we apply the whole filter when the query has no joins or when the
/// filter does not reference joined tables; otherwise the filter is applied
/// after the joins and the driving table is scanned unfiltered.
fn filter_for_table(query: &Query, _table: &str, allow_whole_filter: bool) -> BoolExpr {
    let references_joined = query.joins.iter().any(|j| {
        query
            .filter
            .columns()
            .iter()
            .any(|c| c.starts_with(&format!("{}.", j.table)))
    });
    if references_joined && !allow_whole_filter {
        BoolExpr::True
    } else {
        query.filter.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::DataType;

    fn cities_table() -> Table {
        Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap()
    }

    fn engine_with_cities() -> DaisyEngine {
        let mut engine = DaisyEngine::new(
            DaisyConfig::default()
                .with_worker_threads(2)
                .with_cost_model(false),
        )
        .unwrap();
        engine.register_table(cities_table());
        engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");
        engine
    }

    #[test]
    fn example_1_query_returns_relaxed_probabilistic_result() {
        let mut engine = engine_with_cities();
        let outcome = engine
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        // The dirty answer had 2 tuples; after cleaning, the (9001, SF)
        // tuple is a candidate Los Angeles tuple and is included.
        assert_eq!(outcome.result.len(), 3);
        assert!(outcome.report.errors_repaired > 0);
        assert_eq!(outcome.report.strategy, CleaningStrategy::Incremental);
        // The base table was updated in place (gradually probabilistic).
        assert!(engine.table("cities").unwrap().probabilistic_tuple_count() >= 3);
        // The untouched 10001 cluster stays deterministic.
        assert!(!engine
            .table("cities")
            .unwrap()
            .tuple(TupleId::new(4))
            .unwrap()
            .is_probabilistic());
    }

    #[test]
    fn queries_not_overlapping_rules_skip_cleaning() {
        let mut engine = engine_with_cities();
        let outcome = engine
            .execute_sql("SELECT city FROM cities WHERE zip = 123456")
            .unwrap();
        assert_eq!(outcome.result.len(), 0);
        // Cleaning still ran for the (empty) answer under the overlapping
        // rule, but repaired nothing new.
        assert_eq!(outcome.report.errors_repaired, 0);
    }

    #[test]
    fn group_by_query_cleans_before_aggregation() {
        let mut engine = engine_with_cities();
        let outcome = engine
            .execute_sql("SELECT city, COUNT(*) FROM cities WHERE zip = 9001 GROUP BY city")
            .unwrap();
        // After cleaning, grouping happens over expected values; the result
        // has at most one row per distinct expected city.
        assert!(!outcome.result.is_empty());
        assert!(outcome.report.errors_repaired > 0);
    }

    #[test]
    fn repeated_queries_converge_to_stable_results() {
        let mut engine = engine_with_cities();
        let first = engine
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        let second = engine
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        assert_eq!(first.result.len(), second.result.len());
        assert_eq!(engine.session().queries.len(), 2);
    }

    #[test]
    fn incremental_rule_addition_merges_candidates() {
        let mut engine = engine_with_cities();
        engine
            .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            .unwrap();
        let repaired = engine
            .add_rule_incrementally(
                "cities",
                DenialConstraint::parse("phi2", "t1.city = t2.city & t1.zip != t2.zip").unwrap(),
            )
            .unwrap();
        assert!(repaired > 0);
        // The provenance store now holds evidence from both rules for some cell.
        let prov = engine.provenance("cities").unwrap();
        assert!(!prov.is_empty());
    }

    #[test]
    fn snapshot_mode_is_transparent_and_patched_in_place() {
        use daisy_common::SnapshotMode;
        let run = |mode: SnapshotMode| {
            let mut engine = DaisyEngine::new(
                DaisyConfig::default()
                    .with_worker_threads(2)
                    .with_cost_model(false)
                    .with_snapshot_mode(mode),
            )
            .unwrap();
            engine.register_table(cities_table());
            engine.add_fd(&FunctionalDependency::new(&["zip"], "city"), "phi");
            let first = engine
                .execute_sql("SELECT zip FROM cities WHERE city = 'Los Angeles'")
                .unwrap();
            let second = engine
                .execute_sql("SELECT city FROM cities WHERE zip = 9001")
                .unwrap();
            let repaired = engine
                .add_rule_incrementally(
                    "cities",
                    DenialConstraint::parse("phi2", "t1.city = t2.city & t1.zip != t2.zip")
                        .unwrap(),
                )
                .unwrap();
            (
                first.result.tuples,
                second.result.tuples,
                repaired,
                engine.table("cities").unwrap().tuples().to_vec(),
                engine.provenance("cities").unwrap().dump(),
                engine,
            )
        };
        let (on_1, on_2, on_repaired, on_table, on_prov, on_engine) = run(SnapshotMode::On);
        let (off_1, off_2, off_repaired, off_table, off_prov, off_engine) = run(SnapshotMode::Off);
        // The knob never changes a single observable output…
        assert_eq!(on_1, off_1);
        assert_eq!(on_2, off_2);
        assert_eq!(on_repaired, off_repaired);
        assert_eq!(on_table, off_table);
        assert_eq!(on_prov, off_prov);
        // …and under `On` the cached snapshot tracked every repair through
        // the delta protocol (current, not rebuilt-on-demand), while `Off`
        // never built one.
        let table = on_engine.table("cities").unwrap();
        let snap = on_engine.snapshot("cities").expect("snapshot maintained");
        assert!(snap.is_current(table));
        assert_eq!(snap.len(), table.len());
        assert!(off_engine.snapshot("cities").is_none());
    }

    #[test]
    fn ingest_rows_cleans_incrementally_and_matches_rebuild_mode() {
        let run = |mode: IncrementalMode| {
            let mut engine = DaisyEngine::new(
                DaisyConfig::default()
                    .with_worker_threads(2)
                    .with_cost_model(false)
                    .with_incremental_detection(mode),
            )
            .unwrap();
            engine.register_table(cities_table());
            engine
                .add_constraint_text("phi", "t1.zip = t2.zip & t1.city != t2.city")
                .unwrap();
            let first = engine
                .ingest_rows(
                    "cities",
                    vec![
                        vec![Value::Int(10001), Value::from("Boston")],
                        vec![Value::Int(777), Value::from("Quincy")],
                    ],
                )
                .unwrap();
            let second = engine
                .ingest_rows("cities", vec![vec![Value::Int(777), Value::from("Milton")]])
                .unwrap();
            (first, second, engine)
        };
        let (on_1, on_2, on_engine) = run(IncrementalMode::On);
        let (off_1, off_2, off_engine) = run(IncrementalMode::Off);
        // The new 10001 row conflicts with the existing cluster; the 777
        // rows conflict with each other only once the second batch lands.
        assert!(on_1.report.errors_repaired > 0);
        assert!(on_2.report.errors_repaired > 0);
        // The knob changes the detection mechanism, never an output.
        assert_eq!(on_1.report.errors_repaired, off_1.report.errors_repaired);
        assert_eq!(on_2.report.errors_repaired, off_2.report.errors_repaired);
        assert_eq!(
            on_engine.table("cities").unwrap().tuples(),
            off_engine.table("cities").unwrap().tuples()
        );
        assert_eq!(
            on_engine.provenance("cities").unwrap().dump(),
            off_engine.provenance("cities").unwrap().dump()
        );
        assert_eq!(on_engine.table("cities").unwrap().len(), 8);
        // Under `On` the maintained index tracked every append and repair
        // through the write path and is still current.
        let table = on_engine.table("cities").unwrap();
        let key = ("cities".to_string(), 0u64);
        let index = on_engine
            .world
            .violation_indexes
            .get(&key)
            .expect("maintained index cached");
        assert!(index.is_current(table));
        assert!(off_engine.world.violation_indexes.is_empty());
    }

    #[test]
    fn ingest_into_unknown_table_errors_and_empty_batch_is_a_noop() {
        let mut engine = engine_with_cities();
        assert!(engine
            .ingest_rows("nope", vec![vec![Value::Int(1)]])
            .is_err());
        let outcome = engine.ingest_rows("cities", Vec::new()).unwrap();
        assert_eq!(outcome.report.errors_repaired, 0);
        assert_eq!(engine.table("cities").unwrap().len(), 5);
    }

    #[test]
    fn sql_errors_are_reported() {
        let mut engine = engine_with_cities();
        assert!(engine.execute_sql("SELECT FROM").is_err());
        assert!(engine.execute_sql("SELECT * FROM unknown_table").is_err());
    }
}
