//! The `cleanσ` operator for functional dependencies (§4.1).
//!
//! `cleanσ` receives the (dirty) result of a select operator and
//!
//! 1. **relaxes** it with the correlated tuples of the dataset
//!    (Algorithm 1, [`crate::relaxation`]),
//! 2. **detects** the erroneous tuples (members of dirty lhs groups or of
//!    ambiguous rhs groups) and computes their candidate fixes with
//!    frequency-based probabilities `P(rhs | lhs)` and `P(lhs | rhs)`, and
//! 3. **isolates** the changes into a [`Delta`] that the engine applies back
//!    to the base table, gradually making the dataset probabilistic.
//!
//! Candidate probabilities include the original value of the cell (it is a
//! member of its own co-occurrence group), matching Table 2b of the paper
//! where the dirty `(9001, San Francisco)` tuple keeps `San Francisco` as a
//! 33% candidate.

use std::collections::HashMap;

use daisy_common::{ColumnId, Result, RuleId, Value, WorldId};
use daisy_exec::ExecContext;
use daisy_expr::Violation;
use daisy_storage::{
    Candidate, Cell, ColumnCode, ColumnSnapshot, Delta, ProvenanceStore, RuleEvidence, Tuple,
};

use crate::fd_index::FdIndex;
use crate::relaxation::{relax_fd, FilterTarget, RelaxationOutcome};

/// The outcome of cleaning a select result under one FD.
#[derive(Debug, Clone, Default)]
pub struct FdCleanOutcome {
    /// The relaxed, cleaned tuples: the original answer followed by the
    /// correlated extra tuples, with probabilistic cells substituted.
    pub cleaned: Vec<Tuple>,
    /// Number of tuples of `cleaned` that came from the original answer (the
    /// rest are relaxation extras).
    pub answer_len: usize,
    /// The isolated cell changes to apply to the base table.
    pub delta: Delta,
    /// Relaxation statistics (iterations, scanned tuples).
    pub relaxation: RelaxationOutcome,
    /// Number of cells that received candidate fixes.
    pub errors_detected: usize,
    /// Pairwise violations detected among the relaxed tuples (one entry per
    /// dirty tuple, paired with a representative conflicting tuple).
    pub violations: Vec<Violation>,
}

/// Runs `cleanσ` for a functional dependency.
///
/// * `ctx` — the execution context; violation grouping over the relaxed set
///   is partitioned across its workers (output is worker-count invariant).
/// * `rule` — the rule id, used for provenance bookkeeping.
/// * `index` — the pre-computed FD group index over the base table.
/// * `answer` — the dirty select result (full-width base tuples).
/// * `unvisited_pool` — the tuples relaxation may draw correlated tuples
///   from (typically all base tuples; the engine may restrict it to the
///   not-yet-visited part).
/// * `filter_on` — which FD side the query filter restricts (drives the
///   iteration count, Lemmas 1–2).
#[allow(clippy::too_many_arguments)]
pub fn clean_select_fd(
    ctx: &ExecContext,
    rule: RuleId,
    index: &FdIndex,
    answer: &[Tuple],
    unvisited_pool: &[Tuple],
    filter_on: FilterTarget,
    max_iterations: usize,
    provenance: &mut ProvenanceStore,
) -> Result<FdCleanOutcome> {
    clean_select_fd_with(
        ctx,
        rule,
        index,
        answer,
        unvisited_pool,
        filter_on,
        max_iterations,
        provenance,
        None,
    )
}

/// [`clean_select_fd`] with the columnar read path: when a **current**
/// [`ColumnSnapshot`] of the base table is supplied, the violation grouping
/// keys single-attribute lhs columns by snapshot column codes instead of
/// cloned [`Value`]s.  The fast path engages only when every relaxed tuple
/// is a base tuple with a determinate lhs cell (so its key provably equals
/// the snapshot's); otherwise — probabilistic lhs cells, composite lhs
/// keys, foreign tuples — the grouping falls back to the row path.  Either
/// way the groups, and therefore the emitted violations, provenance and
/// deltas, are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn clean_select_fd_with(
    ctx: &ExecContext,
    rule: RuleId,
    index: &FdIndex,
    answer: &[Tuple],
    unvisited_pool: &[Tuple],
    filter_on: FilterTarget,
    max_iterations: usize,
    provenance: &mut ProvenanceStore,
    snapshot: Option<&ColumnSnapshot>,
) -> Result<FdCleanOutcome> {
    let relaxation = relax_fd(index, answer, unvisited_pool, filter_on, max_iterations)?;

    let mut relaxed: Vec<Tuple> = Vec::with_capacity(answer.len() + relaxation.extra.len());
    relaxed.extend(answer.iter().cloned());
    relaxed.extend(relaxation.extra.iter().cloned());

    // Representative conflicting tuples per lhs group (for provenance and
    // violation reporting), computed over the relaxed set only — the paper's
    // point is precisely that the correlated tuples suffice.  The grouping
    // is the hash-equality partitioning stage of the violation-index
    // subsystem: keys are computed in parallel (order preserving), then
    // grouped with the lhs-hash-sharded group-by so each worker owns whole
    // FD groups; member positions stay in ascending relaxed order either
    // way, which keeps the representative conflicting tuple — and thus the
    // emitted violations and provenance — identical for every worker count.
    let snapshot_keyed = snapshot.filter(|snap| {
        index.lhs_columns.len() == 1
            && relaxed.iter().all(|t| {
                snap.row_of(t.id).is_some()
                    && t.cell(index.lhs_columns[0])
                        .map(|c| !c.is_probabilistic())
                        .unwrap_or(false)
            })
    });
    let coded_groups: Option<HashMap<ColumnCode, Vec<usize>>> = match snapshot_keyed {
        Some(snap) => {
            let col = index.lhs_columns[0];
            Some(crate::index::partition_by_key(ctx, &relaxed, |t| {
                Ok(snap.ordering_code(snap.row_of(t.id).expect("membership checked"), col))
            })?)
        }
        None => None,
    };
    let value_groups: Option<HashMap<Value, Vec<usize>>> = match &coded_groups {
        Some(_) => None,
        None => Some(crate::index::partition_by_key(ctx, &relaxed, |t| {
            index.lhs_key(t)
        })?),
    };
    let members_for = |lhs: &Value| -> Option<&Vec<usize>> {
        match (&coded_groups, &value_groups) {
            (Some(groups), _) => snapshot_keyed
                .expect("coded groups imply a snapshot")
                .encode_ordering(lhs)
                .and_then(|code| groups.get(&code)),
            (None, Some(groups)) => groups.get(lhs),
            (None, None) => unreachable!("one grouping is always built"),
        }
    };

    let mut outcome = FdCleanOutcome {
        answer_len: answer.len(),
        relaxation,
        ..FdCleanOutcome::default()
    };

    let single_lhs_column = index.lhs_columns.len() == 1;
    let mut violations: Vec<Violation> = Vec::new();

    for pos in 0..relaxed.len() {
        let tuple_id = relaxed[pos].id;
        // Group keys are computed against the *original* values: a cell that
        // an earlier query (or another rule) already turned probabilistic must
        // not be re-grouped under its most probable candidate, otherwise
        // candidates from an unrelated group would leak into the cell (§4.3
        // computes every rule's fixes over the original data and merges).
        let lhs = original_key(index, &index.lhs_columns, &relaxed[pos], provenance)?;
        let rhs = original_single(index.rhs_column, &relaxed[pos], provenance)?;

        // The per-rule checked bookkeeping of §4.3: cells this rule already
        // produced evidence for are not re-repaired (their candidates are
        // complete — relaxation pulled in the whole correlated cluster when
        // they were first cleaned).
        let rhs_done = has_rule_evidence(provenance, tuple_id, index.rhs_column, rule);
        let lhs_done = single_lhs_column
            && has_rule_evidence(provenance, tuple_id, index.lhs_columns[0], rule);

        // rhs repair: the lhs group carries conflicting rhs values.
        if index.lhs_is_dirty(&lhs) && !rhs_done {
            let counts = index.rhs_candidates(&lhs);
            let total: usize = counts.iter().map(|(_, c)| *c).sum();
            let world = WorldId::new(tuple_id.raw() * 2);
            let candidates: Vec<Candidate> = counts
                .iter()
                .map(|(value, count)| {
                    Candidate::exact_in_world(value.clone(), *count as f64 / total as f64, world)
                })
                .collect();
            let conflicting: Vec<_> = members_for(&lhs)
                .map(|members| {
                    members
                        .iter()
                        .filter(|&&m| m != pos)
                        .map(|&m| relaxed[m].id)
                        .collect()
                })
                .unwrap_or_default();
            if let Some(other) = conflicting.first() {
                violations.push(Violation::pair(rule, tuple_id, *other));
            }
            apply_candidates(
                &mut relaxed[pos],
                index.rhs_column,
                rhs.clone(),
                candidates,
                rule,
                conflicting,
                provenance,
                &mut outcome.delta,
            )?;
            outcome.errors_detected += 1;
        }

        // lhs repair: only *erroneous* tuples (members of a dirty lhs group)
        // receive lhs candidates, and only when their rhs value co-occurs
        // with several lhs values (Table 2b: the dirty (9001, San Francisco)
        // tuple gets zip candidates, the clean 10001 tuples do not).  Only
        // single-attribute lhs cells can be replaced by a candidate set (a
        // composite lhs has no single cell to attach candidates to).
        if single_lhs_column
            && !lhs_done
            && index.lhs_is_dirty(&lhs)
            && index.rhs_is_ambiguous(&rhs)
        {
            let counts = index.lhs_candidates(&rhs);
            let total: usize = counts.iter().map(|(_, c)| *c).sum();
            let world = WorldId::new(tuple_id.raw() * 2 + 1);
            let candidates: Vec<Candidate> = counts
                .iter()
                .map(|(value, count)| {
                    Candidate::exact_in_world(value.clone(), *count as f64 / total as f64, world)
                })
                .collect();
            apply_candidates(
                &mut relaxed[pos],
                index.lhs_columns[0],
                lhs.clone(),
                candidates,
                rule,
                Vec::new(),
                provenance,
                &mut outcome.delta,
            )?;
            outcome.errors_detected += 1;
        }
    }

    outcome.cleaned = relaxed;
    outcome.violations = violations;
    Ok(outcome)
}

/// Resolves the effective value of one column: the provenance original when
/// the cell has already been made probabilistic, the cell value otherwise.
fn original_single(column: usize, tuple: &Tuple, provenance: &ProvenanceStore) -> Result<Value> {
    let cell = tuple.cell(column)?;
    if cell.is_probabilistic() {
        if let Some(original) = provenance.original_value(tuple.id, ColumnId::new(column as u64)) {
            return Ok(original.clone());
        }
    }
    tuple.value(column)
}

/// The (possibly composite) group key of a tuple over `columns`, resolved
/// against original values for already-probabilistic cells.
fn original_key(
    index: &FdIndex,
    columns: &[usize],
    tuple: &Tuple,
    provenance: &ProvenanceStore,
) -> Result<Value> {
    if columns.iter().all(|&c| {
        tuple
            .cell(c)
            .map(|cell| !cell.is_probabilistic())
            .unwrap_or(true)
    }) {
        return index.lhs_key(tuple);
    }
    let mut restored = tuple.clone();
    for &column in columns {
        let value = original_single(column, tuple, provenance)?;
        *restored.cell_mut(column)? = daisy_storage::Cell::Determinate(value);
    }
    index.lhs_key(&restored)
}

/// `true` when `rule` already recorded candidate evidence for the cell.
fn has_rule_evidence(
    provenance: &ProvenanceStore,
    tuple: daisy_common::TupleId,
    column: usize,
    rule: RuleId,
) -> bool {
    provenance
        .cell(tuple, ColumnId::new(column as u64))
        .map(|cell| cell.evidence.iter().any(|e| e.rule == rule))
        .unwrap_or(false)
}

/// Replaces a cell with a probabilistic candidate set, records provenance,
/// and appends the change to the delta.  Cells whose candidate set is a
/// singleton equal to the current value are left untouched.
#[allow(clippy::too_many_arguments)]
fn apply_candidates(
    tuple: &mut Tuple,
    column: usize,
    original: Value,
    candidates: Vec<Candidate>,
    rule: RuleId,
    conflicting: Vec<daisy_common::TupleId>,
    provenance: &mut ProvenanceStore,
    delta: &mut Delta,
) -> Result<()> {
    if candidates.is_empty() {
        return Ok(());
    }
    if candidates.len() == 1 && candidates[0].value.could_equal(&original) {
        return Ok(());
    }
    let column_id = ColumnId::new(column as u64);
    provenance.record_original(tuple.id, column_id, original);
    provenance.record_evidence(
        tuple.id,
        column_id,
        RuleEvidence {
            rule,
            conflicting,
            candidates: candidates.clone(),
        },
    );
    let cell = Cell::probabilistic(candidates);
    delta.push_update(tuple.id, column_id, cell.clone());
    *tuple.cell_mut(column)? = cell;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, TupleId};
    use daisy_expr::FunctionalDependency;
    use daisy_storage::Table;

    fn cities() -> Table {
        Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap()
    }

    fn setup() -> (Table, FdIndex) {
        let table = cities();
        let index = FdIndex::build(&table, &FunctionalDependency::new(&["zip"], "city")).unwrap();
        (table, index)
    }

    #[test]
    fn example_2_rhs_filter_produces_paper_candidates() {
        // Query: zip of "Los Angeles" (filter on the rhs).
        let (table, index) = setup();
        let answer: Vec<Tuple> = table
            .tuples()
            .iter()
            .filter(|t| t.value(1).unwrap() == Value::from("Los Angeles"))
            .cloned()
            .collect();
        let mut prov = ProvenanceStore::new();
        let out = clean_select_fd(
            &ExecContext::new(4),
            RuleId::new(0),
            &index,
            &answer,
            table.tuples(),
            FilterTarget::Rhs,
            16,
            &mut prov,
        )
        .unwrap();

        // Answer (2 tuples) + 1 correlated extra (the SF tuple with zip 9001).
        assert_eq!(out.cleaned.len(), 3);
        assert_eq!(out.answer_len, 2);
        assert!(!out.delta.is_empty());
        assert!(out.errors_detected >= 3);

        // Every cleaned tuple's city cell holds {LA 67%, SF 33%}.
        for t in &out.cleaned {
            let city = t.cell(1).unwrap();
            assert!(city.is_probabilistic());
            let la = city
                .candidates()
                .iter()
                .find(|c| c.value.could_equal(&Value::from("Los Angeles")))
                .unwrap();
            assert!((la.probability - 2.0 / 3.0).abs() < 1e-9);
        }
        // The dirty (9001, San Francisco) tuple also gets zip candidates
        // {9001 50%, 10001 50%} (Table 2b).
        let dirty = out
            .cleaned
            .iter()
            .find(|t| t.id == TupleId::new(1))
            .unwrap();
        let zip = dirty.cell(0).unwrap();
        assert!(zip.is_probabilistic());
        assert_eq!(zip.candidate_count(), 2);
        for c in zip.candidates() {
            assert!((c.probability - 0.5).abs() < 1e-9);
        }
        // Clean tuples' zip stays determinate (LA only co-occurs with 9001).
        let clean = out
            .cleaned
            .iter()
            .find(|t| t.id == TupleId::new(0))
            .unwrap();
        assert!(!clean.cell(0).unwrap().is_probabilistic());

        // Provenance recorded the original values and rule evidence.
        assert!(prov
            .original_value(TupleId::new(1), ColumnId::new(1))
            .is_some());
        assert!(!prov.cells_for_rule(RuleId::new(0)).is_empty());
        // Violations were reported.
        assert!(!out.violations.is_empty());
    }

    #[test]
    fn example_3_lhs_filter_reaches_other_cluster() {
        // Query: city with zip 9001 (filter on the lhs).
        let (table, index) = setup();
        let answer: Vec<Tuple> = table
            .tuples()
            .iter()
            .filter(|t| t.value(0).unwrap() == Value::Int(9001))
            .cloned()
            .collect();
        let mut prov = ProvenanceStore::new();
        let out = clean_select_fd(
            &ExecContext::new(4),
            RuleId::new(0),
            &index,
            &answer,
            table.tuples(),
            FilterTarget::Lhs,
            16,
            &mut prov,
        )
        .unwrap();
        // All five tuples end up in the relaxed result (Table 3).
        assert_eq!(out.cleaned.len(), 5);
        assert!(out.relaxation.iterations >= 2);
        // The (10001, San Francisco) tuple qualifies through its zip
        // candidates {9001, 10001}.
        let t3 = out
            .cleaned
            .iter()
            .find(|t| t.id == TupleId::new(3))
            .unwrap();
        assert!(t3.cell(0).unwrap().could_equal(&Value::Int(9001)));
        // The (10001, New York) tuple receives city candidates {SF, NY}.
        let t4 = out
            .cleaned
            .iter()
            .find(|t| t.id == TupleId::new(4))
            .unwrap();
        assert!(t4.cell(1).unwrap().is_probabilistic());
    }

    #[test]
    fn snapshot_keyed_grouping_is_byte_identical_with_row_keying() {
        let (table, index) = setup();
        let snap = ColumnSnapshot::build(&table).unwrap();
        let answer: Vec<Tuple> = table
            .tuples()
            .iter()
            .filter(|t| t.value(1).unwrap() == Value::from("Los Angeles"))
            .cloned()
            .collect();
        let run = |snapshot: Option<&ColumnSnapshot>| {
            let mut prov = ProvenanceStore::new();
            let out = clean_select_fd_with(
                &ExecContext::new(4),
                RuleId::new(0),
                &index,
                &answer,
                table.tuples(),
                FilterTarget::Rhs,
                16,
                &mut prov,
                snapshot,
            )
            .unwrap();
            (out, prov.dump())
        };
        let (row, row_prov) = run(None);
        let (coded, coded_prov) = run(Some(&snap));
        assert_eq!(coded.cleaned, row.cleaned);
        assert_eq!(coded.delta, row.delta);
        assert_eq!(coded.violations, row.violations);
        assert_eq!(coded.errors_detected, row.errors_detected);
        assert_eq!(coded_prov, row_prov);
        assert!(!row.delta.is_empty(), "the scenario must repair something");
    }

    #[test]
    fn snapshot_keyed_grouping_backs_off_for_probabilistic_lhs_cells() {
        // Make one lhs cell probabilistic: the fast path must refuse the
        // snapshot (the snapshot stores expected values, the grouping uses
        // provenance-original keys) and fall back to row keying — results
        // stay identical to a run with no snapshot at all.
        let (mut table, _) = setup();
        let mut delta = Delta::new();
        delta.push_update(
            TupleId::new(1),
            ColumnId::new(0),
            Cell::probabilistic(vec![
                Candidate::exact(Value::Int(9001), 0.6),
                Candidate::exact(Value::Int(10001), 0.4),
            ]),
        );
        table.apply_delta(&delta).unwrap();
        let index = FdIndex::build(
            &table,
            &daisy_expr::FunctionalDependency::new(&["zip"], "city"),
        )
        .unwrap();
        let snap = ColumnSnapshot::build(&table).unwrap();
        let answer: Vec<Tuple> = table.tuples().to_vec();
        let run = |snapshot: Option<&ColumnSnapshot>| {
            let mut prov = ProvenanceStore::new();
            let out = clean_select_fd_with(
                &ExecContext::new(2),
                RuleId::new(0),
                &index,
                &answer,
                table.tuples(),
                FilterTarget::Lhs,
                16,
                &mut prov,
                snapshot,
            )
            .unwrap();
            (out.delta, out.violations, prov.dump())
        };
        assert_eq!(run(Some(&snap)), run(None));
    }

    #[test]
    fn clean_answer_produces_no_delta() {
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let table = Table::from_rows(
            "clean",
            schema,
            vec![
                vec![Value::Int(1), Value::from("A")],
                vec![Value::Int(2), Value::from("B")],
            ],
        )
        .unwrap();
        let index = FdIndex::build(&table, &FunctionalDependency::new(&["zip"], "city")).unwrap();
        let mut prov = ProvenanceStore::new();
        let out = clean_select_fd(
            &ExecContext::new(4),
            RuleId::new(0),
            &index,
            table.tuples(),
            table.tuples(),
            FilterTarget::Lhs,
            16,
            &mut prov,
        )
        .unwrap();
        assert!(out.delta.is_empty());
        assert_eq!(out.errors_detected, 0);
        assert!(out.violations.is_empty());
        assert!(prov.is_empty());
    }

    #[test]
    fn delta_applies_back_to_base_table() {
        let (mut table, index) = setup();
        let answer: Vec<Tuple> = table
            .tuples()
            .iter()
            .filter(|t| t.value(1).unwrap() == Value::from("Los Angeles"))
            .cloned()
            .collect();
        let mut prov = ProvenanceStore::new();
        let out = clean_select_fd(
            &ExecContext::new(4),
            RuleId::new(0),
            &index,
            &answer,
            table.tuples(),
            FilterTarget::Rhs,
            16,
            &mut prov,
        )
        .unwrap();
        let applied = table.apply_delta(&out.delta).unwrap();
        assert_eq!(applied, out.delta.len());
        assert!(table.probabilistic_tuple_count() >= 3);
        // The untouched cluster (zip 10001) stays deterministic: gradual
        // cleaning only pays for what the query needs.
        assert!(!table.tuple(TupleId::new(4)).unwrap().is_probabilistic());
    }
}
