//! The violation-index subsystem: hash-equality partitioning plus sort-based
//! inequality sweeps for near-linear DC violation detection.
//!
//! [`FdIndex`](crate::fd_index::FdIndex) pre-computes group statistics for
//! the FD special case; this module generalises the underlying idea — *group
//! tuples so that only intra-group pairs can violate* — to arbitrary
//! two-tuple denial constraints, following the standard decomposition used
//! by DC-evaluation systems:
//!
//! 1. **Hash-equality partitioning** — the cross-tuple equality predicates
//!    of the constraint form a composite key
//!    ([`DenialConstraint::index_plan`]); tuples are hash-partitioned on it
//!    (in parallel, via the order-preserving
//!    [`par_group_by_sharded`](daisy_exec::par_group_by_sharded)), so a
//!    candidate pair must share a partition.
//! 2. **Sort-based inequality sweep** — within each partition, one order
//!    predicate (`t1.a < t2.a`, …) is satisfied by sorting the members on
//!    the sweep attribute and enumerating only the order-compatible pairs
//!    (an order-statistics prefix/suffix per probe, found by binary search).
//! 3. **Residual predicates** — everything else (same-tuple atoms, constants,
//!    cross-tuple `≠`) is evaluated per surviving candidate pair.
//!
//! For an equality-bearing DC over `n` tuples with `d` distinct keys this
//! enumerates `O(n·n/d)` candidates after an `O(n log n)` build instead of
//! the pairwise `O(n²)` — the difference the `bench_detection` harness
//! records in `BENCH_detection.json`.
//!
//! Everything here is deterministic for any worker count: partitions are
//! processed in sorted key order, per-partition scans are order-preserving,
//! and callers canonicalise the emitted violations with
//! [`canonicalize_violations`].  The same guarantees back the two reusable
//! building blocks the rest of the crate consumes:
//!
//! * [`partition_by_key`] — the parallel fallible key-partitioning stage,
//!   also used by `cleanσ` for FD violation grouping,
//! * [`id_index`] — the tuple-id lookup index used by the candidate-range
//!   repair path to resolve the tuples of a violation.

mod maintained;

pub use maintained::MaintainedIndex;

use std::collections::HashMap;
use std::hash::Hash;

use daisy_common::{DaisyError, Result, RuleId, Schema, TupleId, Value};
use daisy_exec::ExecContext;
use daisy_expr::{
    resolve_predicates, CodedPredicate, ComparisonOp, DcPredicate, DenialConstraint, IndexPlan,
    Operand, Violation,
};
use daisy_storage::{ColumnCode, ColumnSnapshot, Tuple};

/// Partitions `items` by a fallible key function, in parallel: keys are
/// extracted chunk-at-a-time (order preserving, earliest error wins) and
/// grouped with the hash-sharded group-by so each worker owns whole groups.
/// The per-group position lists are ascending and identical for every worker
/// count.
pub fn partition_by_key<T, K, F>(
    ctx: &ExecContext,
    items: &[T],
    key: F,
) -> Result<HashMap<K, Vec<usize>>>
where
    T: Sync,
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&T) -> Result<K> + Sync,
{
    let keys: Vec<K> = daisy_exec::par_flat_map_chunks(ctx, items, |chunk| {
        chunk.iter().map(&key).collect::<Result<Vec<K>>>()
    })?;
    Ok(daisy_exec::par_group_by_sharded(ctx, &keys, |k| k.clone()))
}

/// Builds a tuple-id lookup over a tuple slice.  Used by the general-DC
/// repair path to resolve the tuples a violation mentions before computing
/// candidate-range fixes.  If an id occurs more than once the last
/// occurrence wins (matching a sequential `HashMap::insert` loop).
///
/// Tuple ids are (near-)unique, so a sharded group-by would allocate a
/// position vector per id only to immediately collapse it; a single
/// insert-only pass is both the fastest and the leanest build, and it is
/// trivially worker-count invariant.  The `ctx` parameter keeps the call
/// shape of the other index builders for when a parallel build pays off.
pub fn id_index<'t>(_ctx: &ExecContext, tuples: &'t [Tuple]) -> HashMap<TupleId, &'t Tuple> {
    tuples.iter().map(|t| (t.id, t)).collect()
}

/// Canonicalises a violation list: each violation's tuple list is sorted,
/// then the list itself is sorted by tuple ids and de-duplicated.  Both
/// detection strategies funnel their output through this, which is what
/// makes their results — and any worker count's results — byte-identical.
pub fn canonicalize_violations(mut violations: Vec<Violation>) -> Vec<Violation> {
    for v in violations.iter_mut() {
        *v = v.canonical();
    }
    violations.sort_by(|a, b| a.tuples.cmp(&b.tuples));
    violations.dedup();
    violations
}

/// A sweep value the index kernels can read: the cloned [`Value`] of the
/// row path or the `Copy` [`ColumnCode`] of the columnar path.  Both share
/// one total order semantics (code order mirrors value order by
/// construction), so every kernel algorithm below is written **once**,
/// generically — the byte-identical guarantee cannot drift between read
/// paths because there is only one implementation to drift.
trait SweepValue: Ord + Clone {
    /// The NULL element (entries without a sweep column hold it).
    fn null() -> Self;
    /// `true` for the NULL element.
    fn is_null_value(&self) -> bool;
}

impl SweepValue for Value {
    fn null() -> Self {
        Value::Null
    }
    fn is_null_value(&self) -> bool {
        self.is_null()
    }
}

impl SweepValue for ColumnCode {
    fn null() -> Self {
        ColumnCode::Null
    }
    fn is_null_value(&self) -> bool {
        (*self).is_null()
    }
}

/// One member of a sweep partition: a tuple position plus its sweep-attribute
/// value (the NULL element when the plan has no sweep predicate).
#[derive(Debug, Clone)]
struct SweepEntry<V> {
    pos: usize,
    value: V,
}

/// One hash-equality partition, with members sorted on the sweep attribute.
///
/// `left` holds the positions whose *left-role* key (tuple-1 columns of the
/// plan) equals the partition key, sorted by the sweep predicate's left
/// attribute; `right` symmetrically for the tuple-2 role.  For symmetric
/// plans (same key columns, same sweep column) the member lists coincide
/// and `right` is `None`, sharing `left` instead of storing a copy.
#[derive(Debug, Clone)]
struct SweepPartition<V> {
    left: Vec<SweepEntry<V>>,
    right: Option<Vec<SweepEntry<V>>>,
}

impl<V> SweepPartition<V> {
    fn right(&self) -> &[SweepEntry<V>] {
        self.right.as_deref().unwrap_or(&self.left)
    }
}

/// The candidate-enumeration state of a [`ViolationIndex`]: the row kernel
/// holds cloned values and name-resolved residual predicates, the coded
/// kernel holds snapshot ordering codes and pre-resolved
/// [`CodedPredicate`]s.  Both are instantiations of the same generic
/// partition/sweep machinery and enumerate the exact same candidate
/// bindings; only the residual evaluation differs.
#[derive(Debug, Clone)]
enum IndexKernel {
    Rows {
        partitions: Vec<SweepPartition<Value>>,
        residual: Vec<DcPredicate>,
    },
    Coded {
        partitions: Vec<SweepPartition<ColumnCode>>,
        residual: Vec<CodedPredicate>,
    },
}

/// The violation index of one two-tuple denial constraint over one tuple
/// slice: hash partitions on the equality key, each sorted for the
/// inequality sweep (see the module docs for the algorithm).
///
/// The index is built against a specific `tuples` slice; detection must be
/// run with the same slice (positions are slice indices).  When built over
/// a [`ColumnSnapshot`] (see [`ViolationIndex::build_over_with`]) the same
/// snapshot must be supplied at detection time.
#[derive(Debug, Clone)]
pub struct ViolationIndex {
    rule: RuleId,
    sweep_op: Option<ComparisonOp>,
    kernel: IndexKernel,
}

impl ViolationIndex {
    /// Builds the index for `constraint` (whose plan is `plan`) over all of
    /// `tuples`, partitioning and sorting in parallel on `ctx`.
    pub fn build(
        ctx: &ExecContext,
        schema: &Schema,
        constraint: &DenialConstraint,
        plan: &IndexPlan,
        tuples: &[Tuple],
    ) -> Result<ViolationIndex> {
        let all: Vec<usize> = (0..tuples.len()).collect();
        ViolationIndex::build_over(ctx, schema, constraint, plan, tuples, &all)
    }

    /// Builds the index over a subset of `tuples` given by `positions`
    /// (ascending slice indices).  Incremental checks use this to index only
    /// the tuples of the blocks still under consideration, so a range check
    /// against a mostly-checked matrix pays for its submatrix rather than
    /// the whole table.
    pub fn build_over(
        ctx: &ExecContext,
        schema: &Schema,
        constraint: &DenialConstraint,
        plan: &IndexPlan,
        tuples: &[Tuple],
        positions: &[usize],
    ) -> Result<ViolationIndex> {
        ViolationIndex::build_over_with(ctx, schema, constraint, plan, tuples, positions, None)
    }

    /// [`ViolationIndex::build_over`] with an optional columnar read path:
    /// when `snapshot` is given (and covers exactly the `tuples` slice, row
    /// `i` = `tuples[i]`), keys, sweep values and residual predicates are
    /// read as column codes instead of cloned [`Value`]s.  Both paths
    /// enumerate identical candidate bindings and emit identical
    /// violations; the snapshot only removes per-read clones and per-pair
    /// schema lookups.  A snapshot of the wrong length is ignored.
    #[allow(clippy::too_many_arguments)]
    pub fn build_over_with(
        ctx: &ExecContext,
        schema: &Schema,
        constraint: &DenialConstraint,
        plan: &IndexPlan,
        tuples: &[Tuple],
        positions: &[usize],
        snapshot: Option<&ColumnSnapshot>,
    ) -> Result<ViolationIndex> {
        let left_cols: Vec<usize> = plan
            .key
            .iter()
            .map(|(l, _)| schema.index_of(l))
            .collect::<Result<_>>()?;
        let right_cols: Vec<usize> = plan
            .key
            .iter()
            .map(|(_, r)| schema.index_of(r))
            .collect::<Result<_>>()?;
        let sweep = plan
            .sweep
            .as_ref()
            .map(|pred| resolve_sweep(schema, pred))
            .transpose()?;
        let (sweep_op, sweep_left, sweep_right) = match sweep {
            Some((op, l, r)) => (Some(op), Some(l), Some(r)),
            None => (None, None, None),
        };
        // Same key columns and same (or no) sweep column ⇒ the two binding
        // roles have identical member lists; build them once.
        let symmetric = left_cols == right_cols && sweep_left == sweep_right;
        let roles = BuildRoles {
            left_cols: &left_cols,
            right_cols: &right_cols,
            sweep_left,
            sweep_right,
            symmetric,
        };

        let kernel = match snapshot.filter(|s| s.len() == tuples.len()) {
            Some(snap) => build_coded_kernel(ctx, schema, plan, snap, positions, &roles)?,
            None => build_row_kernel(ctx, plan, tuples, positions, &roles)?,
        };
        Ok(ViolationIndex {
            rule: constraint.id,
            sweep_op,
            kernel,
        })
    }

    /// Number of hash-equality partitions that can produce candidate pairs.
    pub fn partition_count(&self) -> usize {
        match &self.kernel {
            IndexKernel::Rows { partitions, .. } => partitions.len(),
            IndexKernel::Coded { partitions, .. } => partitions.len(),
        }
    }

    /// `true` when the index reads through a columnar snapshot.
    pub fn is_coded(&self) -> bool {
        matches!(self.kernel, IndexKernel::Coded { .. })
    }

    /// Emits the violating bindings among the candidate pairs admitted by
    /// `admit` (a positional predicate; [`ThetaMatrix`](crate::theta)
    /// restricts it to not-yet-checked block pairs).  Returns the violations
    /// in a deterministic discovery order — callers canonicalise with
    /// [`canonicalize_violations`] — plus the number of candidate bindings
    /// that were residual-checked.
    ///
    /// Partitions are scanned in parallel on `ctx`; per-partition results
    /// are merged in partition order, so the output is identical for every
    /// worker count.
    pub fn sweep_detect<F>(
        &self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        admit: F,
    ) -> Result<(Vec<Violation>, usize)>
    where
        F: Fn(usize, usize) -> bool + Sync,
    {
        self.sweep_detect_with(ctx, schema, tuples, None, admit)
    }

    /// [`ViolationIndex::sweep_detect`] with the columnar read path: an
    /// index built over a snapshot must be swept with the **same** snapshot
    /// (coded residual predicates read cells from it).  Row-built indexes
    /// ignore `snapshot`.
    pub fn sweep_detect_with<F>(
        &self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        snapshot: Option<&ColumnSnapshot>,
        admit: F,
    ) -> Result<(Vec<Violation>, usize)>
    where
        F: Fn(usize, usize) -> bool + Sync,
    {
        // Both arms run the same generic enumeration; only the residual
        // check per surviving binding differs.
        match &self.kernel {
            IndexKernel::Rows {
                partitions,
                residual,
            } => self.run_sweep(ctx, partitions, tuples, &admit, &|i, j| {
                let binding = [&tuples[i], &tuples[j]];
                for pred in residual {
                    if !pred.eval(schema, &binding)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }),
            IndexKernel::Coded {
                partitions,
                residual,
            } => {
                let snap = snapshot.ok_or_else(|| {
                    DaisyError::Plan(
                        "a snapshot-built violation index must be swept with its snapshot".into(),
                    )
                })?;
                self.run_sweep(ctx, partitions, tuples, &admit, &|i, j| {
                    Ok(residual.iter().all(|pred| pred.eval(snap, [i, j])))
                })
            }
        }
    }

    /// Drives the generic partition sweep: sequentially at one worker,
    /// otherwise as **skew-sharded morsel tasks** — per-probe candidate
    /// weights cut the flat outer-position space into morsels of roughly
    /// equal candidate mass ([`daisy_exec::weighted_ranges`]), so one giant
    /// hash-equality partition is split across several stealable tasks
    /// while runs of tiny partitions are packed into one.  Task outputs are
    /// merged in task order, which equals the sequential enumeration order,
    /// so violations **and** the pair counter are byte-identical for every
    /// worker count and morsel granularity.
    fn run_sweep<V, F, R>(
        &self,
        ctx: &ExecContext,
        partitions: &[SweepPartition<V>],
        tuples: &[Tuple],
        admit: &F,
        residual_holds: &R,
    ) -> Result<(Vec<Violation>, usize)>
    where
        V: SweepValue + Sync,
        F: Fn(usize, usize) -> bool + Sync,
        R: Fn(usize, usize) -> Result<bool> + Sync,
    {
        if ctx.workers() == 1 {
            let mut found = Vec::new();
            let mut pairs = 0usize;
            for part in partitions {
                let outer = match self.sweep_op {
                    Some(_) => part.right().len(),
                    None => part.left.len(),
                };
                self.scan_partition(
                    tuples,
                    part,
                    0..outer,
                    admit,
                    &mut found,
                    &mut pairs,
                    residual_holds,
                )?;
            }
            return Ok((found, pairs));
        }
        let tasks = self.skew_tasks(ctx, partitions);
        let partials = daisy_exec::try_run_tasks(ctx, &tasks, |segments| {
            let mut found = Vec::new();
            let mut pairs = 0usize;
            for &(p, start, end) in segments {
                self.scan_partition(
                    tuples,
                    &partitions[p],
                    start..end,
                    admit,
                    &mut found,
                    &mut pairs,
                    residual_holds,
                )?;
            }
            if let Some(counters) = ctx.morsel_counters() {
                counters.record_work(pairs as u64);
            }
            Ok::<_, DaisyError>((found, pairs))
        })?;
        let mut violations = Vec::new();
        let mut pairs = 0usize;
        for (found, count) in partials {
            violations.extend(found);
            pairs += count;
        }
        Ok((violations, pairs))
    }

    /// Cuts the sweep into weighted morsel tasks.  Each task is a list of
    /// `(partition, outer_start, outer_end)` segments over the flat
    /// outer-position space (right-role probes under a sweep, left members
    /// otherwise), weighted per position by its candidate count (`+1` for
    /// the probe itself), so cuts land where the candidate mass is: a
    /// skewed partition's sweep is split mid-partition across several
    /// stealable tasks instead of pinning one worker.
    fn skew_tasks<V: SweepValue>(
        &self,
        ctx: &ExecContext,
        partitions: &[SweepPartition<V>],
    ) -> Vec<Vec<(usize, usize, usize)>> {
        let mut weights: Vec<u64> = Vec::new();
        let mut owner: Vec<(usize, usize)> = Vec::new();
        for (p, part) in partitions.iter().enumerate() {
            match self.sweep_op {
                Some(op) => {
                    for (o, probe) in part.right().iter().enumerate() {
                        let candidates = sweep_candidates(&part.left, op, &probe.value).len();
                        weights.push(candidates as u64 + 1);
                        owner.push((p, o));
                    }
                }
                None => {
                    let inner = part.right().len() as u64;
                    for o in 0..part.left.len() {
                        weights.push(inner + 1);
                        owner.push((p, o));
                    }
                }
            }
        }
        daisy_exec::weighted_ranges(&weights, ctx.morsel_count(weights.len()))
            .into_iter()
            .map(|(start, end)| {
                let mut segments: Vec<(usize, usize, usize)> = Vec::new();
                for &(p, o) in &owner[start..end] {
                    match segments.last_mut() {
                        Some(seg) if seg.0 == p && seg.2 == o => seg.2 = o + 1,
                        _ => segments.push((p, o, o + 1)),
                    }
                }
                segments
            })
            .collect()
    }

    /// Full detection over the whole index with canonical output — the
    /// standalone entry point used by benches and differential tests.
    pub fn detect(
        &self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
    ) -> Result<(Vec<Violation>, usize)> {
        self.detect_with(ctx, schema, tuples, None)
    }

    /// [`ViolationIndex::detect`] with the columnar read path (see
    /// [`ViolationIndex::sweep_detect_with`]).
    pub fn detect_with(
        &self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        snapshot: Option<&ColumnSnapshot>,
    ) -> Result<(Vec<Violation>, usize)> {
        let (violations, pairs) =
            self.sweep_detect_with(ctx, schema, tuples, snapshot, |_, _| true)?;
        Ok((canonicalize_violations(violations), pairs))
    }

    /// Enumerates one partition's candidate bindings for the outer
    /// positions in `outer` — all left×right pairs when the plan has no
    /// sweep predicate (outer = left members), otherwise, per right-role
    /// probe, the order-statistics prefix/suffix of the sorted left-role
    /// members that satisfies the sweep — and residual-checks each admitted
    /// binding through `residual_holds`.  One implementation serves both
    /// read paths; `pairs` counts residual-checked bindings identically.
    /// Restricting `outer` is what lets [`ViolationIndex::skew_tasks`]
    /// split one skewed partition across several morsels: concatenating
    /// range scans in order equals the full scan.
    #[allow(clippy::too_many_arguments)]
    fn scan_partition<V, F, R>(
        &self,
        tuples: &[Tuple],
        part: &SweepPartition<V>,
        outer: std::ops::Range<usize>,
        admit: &F,
        out: &mut Vec<Violation>,
        pairs: &mut usize,
        residual_holds: &R,
    ) -> Result<()>
    where
        V: SweepValue,
        F: Fn(usize, usize) -> bool,
        R: Fn(usize, usize) -> Result<bool>,
    {
        let mut check = |i: usize, j: usize| -> Result<()> {
            if i == j || !admit(i, j) {
                return Ok(());
            }
            *pairs += 1;
            if residual_holds(i, j)? {
                out.push(Violation::pair(self.rule, tuples[i].id, tuples[j].id));
            }
            Ok(())
        };
        match self.sweep_op {
            None => {
                for l in &part.left[outer] {
                    for r in part.right() {
                        check(l.pos, r.pos)?;
                    }
                }
            }
            Some(op) => {
                for r in &part.right()[outer] {
                    for l in sweep_candidates(&part.left, op, &r.value) {
                        check(l.pos, r.pos)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// The resolved column roles shared by both kernel builders.
struct BuildRoles<'a> {
    left_cols: &'a [usize],
    right_cols: &'a [usize],
    sweep_left: Option<usize>,
    sweep_right: Option<usize>,
    symmetric: bool,
}

/// Builds the shared partition/sweep structure of the index, generically
/// over the key type `K` and sweep-value type `V` — the single
/// implementation behind both read paths.  `key_of` extracts the (possibly
/// composite) equality key of a position for one role's columns; `value_of`
/// reads the sweep attribute.  Key hashing/ordering and sweep ordering
/// mirror each other across instantiations (`ColumnCode` is constructed to
/// order exactly like `Value`), so both read paths partition and sort
/// identically.
fn build_partitions<K, V, KF, VF>(
    ctx: &ExecContext,
    positions: &[usize],
    roles: &BuildRoles<'_>,
    key_of: KF,
    value_of: VF,
) -> Result<Vec<SweepPartition<V>>>
where
    K: Eq + Hash + Ord + Clone + Send + Sync,
    V: SweepValue,
    KF: Fn(&[usize], usize) -> Result<K> + Sync,
    VF: Fn(usize, usize) -> Result<V>,
{
    // The group-by yields indices into `positions`; remap them to slice
    // positions right away (lists stay ascending because `positions` is).
    let remap = |groups: HashMap<K, Vec<usize>>| -> HashMap<K, Vec<usize>> {
        groups
            .into_iter()
            .map(|(k, idxs)| (k, idxs.into_iter().map(|i| positions[i]).collect()))
            .collect()
    };
    let left_groups = remap(partition_by_key(ctx, positions, |p| {
        key_of(roles.left_cols, *p)
    })?);
    let right_groups = if roles.symmetric {
        None
    } else {
        Some(remap(partition_by_key(ctx, positions, |p| {
            key_of(roles.right_cols, *p)
        })?))
    };

    // Only keys present in both roles can form candidate pairs; sorting
    // the surviving keys keeps the partition order deterministic.
    let mut keys: Vec<&K> = match &right_groups {
        None => left_groups.keys().collect(),
        Some(right) => left_groups
            .keys()
            .filter(|k| right.contains_key(*k))
            .collect(),
    };
    keys.sort();

    let entries = |members: &[usize], col: Option<usize>| -> Result<Vec<SweepEntry<V>>> {
        let mut out = Vec::with_capacity(members.len());
        for &pos in members {
            let value = match col {
                Some(c) => value_of(c, pos)?,
                None => V::null(),
            };
            // Order comparisons against NULL are never satisfied, so
            // NULL-valued members cannot participate in a sweep.
            if col.is_some() && value.is_null_value() {
                continue;
            }
            out.push(SweepEntry { pos, value });
        }
        if col.is_some() {
            out.sort_by(|a, b| a.value.cmp(&b.value).then(a.pos.cmp(&b.pos)));
        }
        Ok(out)
    };
    let mut partitions = Vec::with_capacity(keys.len());
    for key in keys {
        let left = entries(&left_groups[key], roles.sweep_left)?;
        let right = match &right_groups {
            None => None,
            Some(right) => Some(entries(&right[key], roles.sweep_right)?),
        };
        partitions.push(SweepPartition { left, right });
    }
    Ok(partitions)
}

/// Instantiates the generic build for the row store (the PR 3 path): keys
/// and sweep values are cloned out of the tuples, residuals are evaluated
/// by name at detection time.
fn build_row_kernel(
    ctx: &ExecContext,
    plan: &IndexPlan,
    tuples: &[Tuple],
    positions: &[usize],
    roles: &BuildRoles<'_>,
) -> Result<IndexKernel> {
    let partitions = build_partitions::<Vec<Value>, Value, _, _>(
        ctx,
        positions,
        roles,
        |cols, pos| cols.iter().map(|&c| tuples[pos].value(c)).collect(),
        |col, pos| tuples[pos].value(col),
    )?;
    Ok(IndexKernel::Rows {
        partitions,
        residual: plan.residual.clone(),
    })
}

/// Instantiates the generic build for the columnar read path: keys and
/// sweep values are snapshot ordering codes (`Copy`, no clones, no per-read
/// schema lookups) and the residual predicates are pre-resolved
/// [`CodedPredicate`]s.
fn build_coded_kernel(
    ctx: &ExecContext,
    schema: &Schema,
    plan: &IndexPlan,
    snap: &ColumnSnapshot,
    positions: &[usize],
    roles: &BuildRoles<'_>,
) -> Result<IndexKernel> {
    let partitions = build_partitions::<Vec<ColumnCode>, ColumnCode, _, _>(
        ctx,
        positions,
        roles,
        |cols, pos| Ok(cols.iter().map(|&c| snap.ordering_code(pos, c)).collect()),
        |col, pos| Ok(snap.ordering_code(pos, col)),
    )?;
    Ok(IndexKernel::Coded {
        partitions,
        residual: resolve_predicates(&plan.residual, schema, snap)?,
    })
}

/// The contiguous slice of ascending-sorted left-role members whose sweep
/// value satisfies `value_left op probe` for a right-role probe value —
/// generic over the sweep-value type, so both read paths share it.
fn sweep_candidates<'a, V: Ord>(
    left: &'a [SweepEntry<V>],
    op: ComparisonOp,
    probe: &V,
) -> &'a [SweepEntry<V>] {
    match op {
        ComparisonOp::Lt => &left[..left.partition_point(|e| e.value < *probe)],
        ComparisonOp::Le => &left[..left.partition_point(|e| e.value <= *probe)],
        ComparisonOp::Gt => &left[left.partition_point(|e| e.value <= *probe)..],
        ComparisonOp::Ge => &left[left.partition_point(|e| e.value < *probe)..],
        // Equality operators never become sweep predicates.
        ComparisonOp::Eq | ComparisonOp::Neq => left,
    }
}

/// Resolves a normalized sweep predicate into `(op, t1 column, t2 column)`.
fn resolve_sweep(schema: &Schema, pred: &DcPredicate) -> Result<(ComparisonOp, usize, usize)> {
    let (
        Operand::Attr {
            tuple: 0,
            column: lc,
        },
        Operand::Attr {
            tuple: 1,
            column: rc,
        },
    ) = (&pred.left, &pred.right)
    else {
        return Err(DaisyError::Plan(format!(
            "sweep predicate `{pred}` is not a normalized cross-tuple comparison"
        )));
    };
    Ok((pred.op, schema.index_of(lc)?, schema.index_of(rc)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};
    use daisy_storage::Table;

    fn ctx() -> ExecContext {
        ExecContext::new(4)
    }

    fn emp_table(rows: &[(i64, i64, f64)]) -> Table {
        Table::from_rows(
            "emp",
            Schema::from_pairs(&[
                ("dept", DataType::Int),
                ("salary", DataType::Int),
                ("tax", DataType::Float),
            ])
            .unwrap(),
            rows.iter()
                .map(|(d, s, t)| vec![Value::Int(*d), Value::Int(*s), Value::Float(*t)])
                .collect(),
        )
        .unwrap()
    }

    fn oracle(table: &Table, dc: &DenialConstraint) -> Vec<Violation> {
        let mut expected = Vec::new();
        for a in table.tuples() {
            for b in table.tuples() {
                if a.id != b.id && dc.violated_by(table.schema(), &[a, b]).unwrap() {
                    expected.push(Violation::pair(dc.id, a.id, b.id));
                }
            }
        }
        canonicalize_violations(expected)
    }

    #[test]
    fn partition_by_key_matches_sequential_grouping() {
        let items: Vec<i64> = (0..100).map(|i| i % 7).collect();
        let groups = partition_by_key(&ctx(), &items, |x| Ok(*x)).unwrap();
        assert_eq!(groups.len(), 7);
        for (k, positions) in &groups {
            assert!(positions.iter().all(|&p| items[p] == *k));
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
        // Errors propagate (earliest chunk wins is covered in daisy-exec).
        let err = partition_by_key(&ctx(), &items, |x| {
            if *x == 3 {
                Err(DaisyError::Plan("boom".into()))
            } else {
                Ok(*x)
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn id_index_resolves_every_tuple() {
        let table = emp_table(&[(1, 100, 0.1), (1, 200, 0.2), (2, 300, 0.3)]);
        let index = id_index(&ctx(), table.tuples());
        assert_eq!(index.len(), 3);
        for t in table.tuples() {
            assert_eq!(index[&t.id].id, t.id);
        }
    }

    #[test]
    fn equality_and_sweep_detection_matches_oracle() {
        // ¬(t1.dept = t2.dept ∧ t1.salary < t2.salary ∧ t1.tax > t2.tax):
        // inverted salary/tax pairs within a department.
        let rows: Vec<(i64, i64, f64)> = (0..80)
            .map(|i| (i % 5, 1000 + i * 10, ((i * 37) % 80) as f64 / 100.0))
            .collect();
        let table = emp_table(&rows);
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        let index =
            ViolationIndex::build(&ctx(), table.schema(), &dc, &plan, table.tuples()).unwrap();
        assert_eq!(index.partition_count(), 5);
        let (found, pairs) = index
            .detect(&ctx(), table.schema(), table.tuples())
            .unwrap();
        let expected = oracle(&table, &dc);
        assert_eq!(found, expected);
        assert!(!found.is_empty());
        // The sweep only materialises order-compatible candidates: strictly
        // fewer than the pairwise scan of the 16-member partitions.
        assert!(pairs < 80 * 79);
    }

    #[test]
    fn no_sweep_fd_shape_matches_oracle() {
        let rows = &[(1, 10, 0.0), (1, 20, 0.0), (1, 10, 0.0), (2, 30, 0.0)];
        let table = emp_table(rows);
        let dc =
            DenialConstraint::parse("fd", "t1.dept = t2.dept & t1.salary != t2.salary").unwrap();
        let plan = dc.index_plan().unwrap();
        assert!(plan.sweep.is_none());
        let index =
            ViolationIndex::build(&ctx(), table.schema(), &dc, &plan, table.tuples()).unwrap();
        let (found, _) = index
            .detect(&ctx(), table.schema(), table.tuples())
            .unwrap();
        assert_eq!(found, oracle(&table, &dc));
        assert_eq!(found.len(), 2); // tuples {0,2} × tuple 1
    }

    #[test]
    fn empty_key_plan_sweeps_a_single_partition() {
        let table = emp_table(&[(0, 1000, 0.1), (0, 3000, 0.2), (0, 2000, 0.3)]);
        let dc = DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap();
        let plan = dc.index_plan().unwrap();
        assert!(!plan.has_equality_key());
        let index =
            ViolationIndex::build(&ctx(), table.schema(), &dc, &plan, table.tuples()).unwrap();
        assert_eq!(index.partition_count(), 1);
        let (found, _) = index
            .detect(&ctx(), table.schema(), table.tuples())
            .unwrap();
        assert_eq!(found, oracle(&table, &dc));
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn build_over_subset_detects_exactly_the_subset_violations() {
        let rows: Vec<(i64, i64, f64)> = (0..40)
            .map(|i| (i % 3, 1000 + i * 10, ((i * 37) % 40) as f64 / 100.0))
            .collect();
        let table = emp_table(&rows);
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        // Index only the even positions: detection must equal the oracle
        // restricted to pairs of even-position tuples.
        let positions: Vec<usize> = (0..40).step_by(2).collect();
        let index = ViolationIndex::build_over(
            &ctx(),
            table.schema(),
            &dc,
            &plan,
            table.tuples(),
            &positions,
        )
        .unwrap();
        let (found, _) = index
            .detect(&ctx(), table.schema(), table.tuples())
            .unwrap();
        let subset_ids: std::collections::HashSet<_> =
            positions.iter().map(|&p| table.tuples()[p].id).collect();
        let expected: Vec<Violation> = oracle(&table, &dc)
            .into_iter()
            .filter(|v| v.tuples.iter().all(|t| subset_ids.contains(t)))
            .collect();
        assert_eq!(found, expected);
        assert!(!found.is_empty());
    }

    #[test]
    fn worker_counts_do_not_change_detection() {
        let rows: Vec<(i64, i64, f64)> = (0..60)
            .map(|i| (i % 4, (i * 13) % 500, ((i * 7) % 60) as f64))
            .collect();
        let table = emp_table(&rows);
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        let run = |workers: usize| {
            let c = ExecContext::new(workers);
            let index =
                ViolationIndex::build(&c, table.schema(), &dc, &plan, table.tuples()).unwrap();
            index.detect(&c, table.schema(), table.tuples()).unwrap()
        };
        let baseline = run(1);
        for workers in [2, 4, 7] {
            assert_eq!(run(workers), baseline);
        }
    }

    #[test]
    fn null_keys_group_together_and_null_sweep_values_never_violate() {
        // NULL = NULL holds under this engine's comparison semantics, so
        // NULL keys form a regular partition; NULL sweep values can never
        // satisfy an order predicate and are excluded from the sweep.
        let schema = Schema::from_pairs(&[
            ("dept", DataType::Int),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let table = Table::from_rows(
            "emp",
            schema,
            vec![
                vec![Value::Null, Value::Int(100), Value::Float(0.9)],
                vec![Value::Null, Value::Int(200), Value::Float(0.1)],
                vec![Value::Int(1), Value::Null, Value::Float(0.5)],
                vec![Value::Int(1), Value::Int(300), Value::Float(0.4)],
            ],
        )
        .unwrap();
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        let index =
            ViolationIndex::build(&ctx(), table.schema(), &dc, &plan, table.tuples()).unwrap();
        let (found, _) = index
            .detect(&ctx(), table.schema(), table.tuples())
            .unwrap();
        assert_eq!(found, oracle(&table, &dc));
        // The NULL-dept pair (100, 0.9) vs (200, 0.1) violates.
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn coded_kernel_matches_row_kernel_and_oracle() {
        use daisy_storage::ColumnSnapshot;
        // Mixed content: equality key with NULLs, sweep with NULLs, a
        // residual with a constant — the full kernel surface.
        let schema = Schema::from_pairs(&[
            ("dept", DataType::Int),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let mut rows: Vec<Vec<Value>> = (0..70)
            .map(|i| {
                vec![
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 4)
                    },
                    if i % 13 == 0 {
                        Value::Null
                    } else {
                        Value::Int(1000 + (i * 37) % 900)
                    },
                    Value::Float(((i * 7) % 70) as f64 / 10.0),
                ]
            })
            .collect();
        rows.push(vec![
            Value::Int(1),
            Value::Int(1200),
            Value::Float(f64::NAN),
        ]);
        let table = Table::from_rows("emp", schema, rows).unwrap();
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax & t1.tax > 0.5",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        let snap = ColumnSnapshot::build(&table).unwrap();

        let row_index =
            ViolationIndex::build(&ctx(), table.schema(), &dc, &plan, table.tuples()).unwrap();
        assert!(!row_index.is_coded());
        let coded_index = ViolationIndex::build_over_with(
            &ctx(),
            table.schema(),
            &dc,
            &plan,
            table.tuples(),
            &(0..table.len()).collect::<Vec<_>>(),
            Some(&snap),
        )
        .unwrap();
        assert!(coded_index.is_coded());
        assert_eq!(coded_index.partition_count(), row_index.partition_count());

        let (row_found, row_pairs) = row_index
            .detect(&ctx(), table.schema(), table.tuples())
            .unwrap();
        let (coded_found, coded_pairs) = coded_index
            .detect_with(&ctx(), table.schema(), table.tuples(), Some(&snap))
            .unwrap();
        assert_eq!(coded_found, row_found);
        assert_eq!(coded_pairs, row_pairs, "candidate enumeration must match");
        assert_eq!(row_found, oracle(&table, &dc));
        assert!(!row_found.is_empty());

        // A coded index without its snapshot is a usage error, not UB.
        assert!(coded_index
            .detect(&ctx(), table.schema(), table.tuples())
            .is_err());
    }

    #[test]
    fn coded_kernel_handles_string_keys_and_subsets() {
        use daisy_storage::ColumnSnapshot;
        let schema = Schema::from_pairs(&[
            ("city", DataType::Str),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let cities = ["berlin", "amsterdam", "zagreb", "berlin", "amsterdam"];
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| {
                vec![
                    Value::from(cities[i % cities.len()]),
                    Value::Int((1000 + (i * 13) % 400) as i64),
                    Value::Float(((i * 31) % 50) as f64),
                ]
            })
            .collect();
        let table = Table::from_rows("emp", schema, rows).unwrap();
        let dc = DenialConstraint::parse(
            "phi",
            "t1.city = t2.city & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        let snap = ColumnSnapshot::build(&table).unwrap();
        let positions: Vec<usize> = (0..50).step_by(3).collect();
        let run = |snapshot: Option<&ColumnSnapshot>| {
            let index = ViolationIndex::build_over_with(
                &ctx(),
                table.schema(),
                &dc,
                &plan,
                table.tuples(),
                &positions,
                snapshot,
            )
            .unwrap();
            index
                .detect_with(&ctx(), table.schema(), table.tuples(), snapshot)
                .unwrap()
        };
        let (row_found, row_pairs) = run(None);
        let (coded_found, coded_pairs) = run(Some(&snap));
        assert_eq!(coded_found, row_found);
        assert_eq!(coded_pairs, row_pairs);
        assert!(!coded_found.is_empty());
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let a = Violation::pair(RuleId::new(0), TupleId::new(5), TupleId::new(2));
        let b = Violation::pair(RuleId::new(0), TupleId::new(2), TupleId::new(5));
        let c = Violation::pair(RuleId::new(0), TupleId::new(1), TupleId::new(3));
        let out = canonicalize_violations(vec![a, b, c]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuples, vec![TupleId::new(1), TupleId::new(3)]);
    }
}
