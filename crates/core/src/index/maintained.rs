//! The **maintained** violation index: the persistent, revision-versioned
//! sibling of [`ViolationIndex`](super::ViolationIndex).
//!
//! A [`ViolationIndex`] is built for one detection pass and dropped; every
//! check over a changed table pays the full `O(n log n)` rebuild.  A
//! [`MaintainedIndex`] is owned by the world alongside the table's
//! [`ColumnSnapshot`](daisy_storage::ColumnSnapshot) and **absorbs** each
//! committed or staged [`Delta`] instead: per delta row it removes the old
//! sorted entries and inserts the new ones by binary search, an
//! `O(|Δ| · log group)` update.  Combined with **delta-restricted
//! detection** — enumerating only the `Δ × (T ∪ Δ)` candidate pairs — a
//! streaming ingest batch is detected in time proportional to the batch,
//! not the table (the `bench_detection` sustained-ingest axis).
//!
//! The structure mirrors the snapshot's maintenance discipline:
//!
//! * entries are keyed by slice **position** (positions are stable: tables
//!   only grow by appends and mutate cells in place; the wholesale editors
//!   `replace_tuples` / `tuple_mut` bump the revision, which the guard
//!   below catches),
//! * [`MaintainedIndex::absorb_delta`] self-guards on [`Table::revision`]
//!   exactly like `ColumnSnapshot::absorb_delta` — a delta that does not
//!   line up with the table leaves the index silently stale, and
//!   [`MaintainedIndex::is_current`] tells callers to rebuild,
//! * sweep values are stored as [`Value`]s, not snapshot ordering codes:
//!   absorbing a delta that interns a novel string would shift every
//!   dictionary rank and corrupt code-sorted entries, while values order
//!   identically forever.
//!
//! Delta-restricted detection enumerates, per delta row `d`, the same
//! directed candidate bindings the full sweep admits with the filter
//! `i ∈ Δ ∨ j ∈ Δ`: once with `d` in the right-hand probe role (owning all
//! pairs whose right member is `d`, including `Δ × Δ` pairs) and once with
//! `d` as the left member against non-Δ probes (the inverse
//! order-statistics range).  Each directed binding is produced exactly
//! once, so both the violations **and** the candidate-pair counter match
//! the rebuild-everything baseline byte for byte — the differential tests
//! in this module and `tests/integration_streaming_ingest.rs` pin that.

use std::collections::{BTreeMap, HashSet};

use daisy_common::{Result, RuleId, Schema, Value};
use daisy_exec::ExecContext;
use daisy_expr::{ComparisonOp, DcPredicate, DenialConstraint, IndexPlan, Violation};
use daisy_storage::{Delta, Table, Tuple};

use super::{canonicalize_violations, resolve_sweep, sweep_candidates, SweepEntry};

/// One hash-equality partition of the maintained index.  Entries are kept
/// sorted by `(sweep value, position)` so membership changes are binary
/// searches; for symmetric plans `right` stays empty and the left list
/// serves both binding roles.
#[derive(Debug, Clone, Default)]
struct MaintainedPartition {
    left: Vec<SweepEntry<Value>>,
    right: Vec<SweepEntry<Value>>,
}

/// What one table position contributes to the index — cached so a later
/// delta can *remove* the old entries without re-reading pre-update values
/// (absorption runs after the table has already been mutated).
#[derive(Debug, Clone)]
struct Contribution {
    left_key: Vec<Value>,
    left_sweep: Value,
    right_key: Vec<Value>,
    right_sweep: Value,
}

/// The persistent violation index of one two-tuple denial constraint over
/// one table: hash partitions on the equality key in a sorted map, each
/// partition sorted for the inequality sweep, maintained across deltas
/// (see the module docs for the protocol).
#[derive(Debug, Clone)]
pub struct MaintainedIndex {
    rule: RuleId,
    sweep_op: Option<ComparisonOp>,
    left_cols: Vec<usize>,
    right_cols: Vec<usize>,
    sweep_left: Option<usize>,
    sweep_right: Option<usize>,
    symmetric: bool,
    /// Column indices whose values place a tuple in the index
    /// ([`IndexPlan::maintenance_columns`]); updates outside this set skip
    /// partition maintenance entirely.
    maintenance_cols: HashSet<usize>,
    residual: Vec<DcPredicate>,
    partitions: BTreeMap<Vec<Value>, MaintainedPartition>,
    contributions: Vec<Contribution>,
    revision: u64,
    rows: usize,
}

impl MaintainedIndex {
    /// Builds the maintained index for `constraint` (whose plan is `plan`)
    /// over the current contents of `table`, stamped with the table's
    /// revision.
    pub fn build(
        schema: &Schema,
        constraint: &DenialConstraint,
        plan: &IndexPlan,
        table: &Table,
    ) -> Result<MaintainedIndex> {
        let left_cols: Vec<usize> = plan
            .key
            .iter()
            .map(|(l, _)| schema.index_of(l))
            .collect::<Result<_>>()?;
        let right_cols: Vec<usize> = plan
            .key
            .iter()
            .map(|(_, r)| schema.index_of(r))
            .collect::<Result<_>>()?;
        let sweep = plan
            .sweep
            .as_ref()
            .map(|pred| resolve_sweep(schema, pred))
            .transpose()?;
        let (sweep_op, sweep_left, sweep_right) = match sweep {
            Some((op, l, r)) => (Some(op), Some(l), Some(r)),
            None => (None, None, None),
        };
        let symmetric = left_cols == right_cols && sweep_left == sweep_right;
        let maintenance_cols: HashSet<usize> = plan
            .maintenance_columns()
            .iter()
            .map(|name| schema.index_of(name))
            .collect::<Result<_>>()?;
        let mut index = MaintainedIndex {
            rule: constraint.id,
            sweep_op,
            left_cols,
            right_cols,
            sweep_left,
            sweep_right,
            symmetric,
            maintenance_cols,
            residual: plan.residual.clone(),
            partitions: BTreeMap::new(),
            contributions: Vec::with_capacity(table.len()),
            revision: table.revision(),
            rows: table.len(),
        };
        for (pos, tuple) in table.tuples().iter().enumerate() {
            let c = index.contribution_of(tuple)?;
            index.insert_position(pos, &c);
            index.contributions.push(c);
        }
        Ok(index)
    }

    /// The constraint this index serves.
    pub fn rule(&self) -> RuleId {
        self.rule
    }

    /// The table revision the index reflects.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The number of table rows the index covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of non-empty hash-equality partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Mean partition size — the candidate-fanout estimate the detection
    /// cost model uses to price a delta-restricted pass.
    pub fn mean_partition_size(&self) -> f64 {
        if self.partitions.is_empty() {
            0.0
        } else {
            self.rows as f64 / self.partitions.len() as f64
        }
    }

    /// Size of the largest partition (both binding roles) — the worst-case
    /// candidate fanout of a single delta row.
    pub fn max_partition_size(&self) -> usize {
        self.partitions
            .values()
            .map(|p| p.left.len().max(p.right.len()))
            .max()
            .unwrap_or(0)
    }

    /// `true` when the index reflects exactly the table's current revision
    /// and row count.  A stale index must be rebuilt, never patched.
    pub fn is_current(&self, table: &Table) -> bool {
        self.revision == table.revision() && self.rows == table.len()
    }

    /// Absorbs one applied delta: appended rows are inserted at the tail
    /// positions, updated rows whose maintenance columns changed are
    /// re-placed (remove old entries, re-read the table, insert new ones).
    /// Self-guarding like `ColumnSnapshot::absorb_delta`: if the table's
    /// revision or length does not line up with "this index + exactly this
    /// delta", the index is left untouched (and stale) for
    /// [`MaintainedIndex::is_current`] to report.
    pub fn absorb_delta(&mut self, table: &Table, delta: &Delta) -> Result<()> {
        let expected = self.revision + u64::from(!delta.is_empty());
        if table.revision() != expected || table.len() != self.rows + delta.appends().len() {
            return Ok(());
        }
        if delta.is_empty() {
            return Ok(());
        }
        // Appends land at the tail in delta order (`apply_delta` applies
        // them before updates and checks the id contract).
        for (offset, append) in delta.appends().iter().enumerate() {
            let pos = self.rows + offset;
            debug_assert_eq!(table.tuples()[pos].id, append.id);
            let c = self.contribution_of(&table.tuples()[pos])?;
            self.insert_position(pos, &c);
            self.contributions.push(c);
        }
        // Re-place each updated row at most once, in ascending position
        // order, skipping updates that cannot move the tuple.
        let mut touched: Vec<usize> = delta
            .updates()
            .iter()
            .filter(|u| self.maintenance_cols.contains(&u.column.index()))
            .filter_map(|u| table.position_of(u.tuple))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for pos in touched {
            let old = self.contributions[pos].clone();
            self.remove_position(pos, &old);
            let c = self.contribution_of(&table.tuples()[pos])?;
            self.insert_position(pos, &c);
            self.contributions[pos] = c;
        }
        self.rows = table.len();
        self.revision = table.revision();
        Ok(())
    }

    /// Delta-restricted detection: emits exactly the violations among
    /// candidate pairs with at least one member in `delta_positions`
    /// (ascending slice positions), plus the number of residual-checked
    /// candidate bindings.  Equals a full index rebuild swept with the
    /// admit filter `i ∈ Δ ∨ j ∈ Δ` — violations *and* pair count — which
    /// is the byte-identity the differential tests pin.  Output is
    /// canonical ([`canonicalize_violations`](super::canonicalize_violations)).
    ///
    /// Delta rows are enumerated as weighted morsels on `ctx`: each row is
    /// weighted by its partitions' member counts (its candidate fanout), so
    /// a batch that hammers one hot equality key splits into morsels of
    /// roughly equal work that the scheduler can steal, instead of pinning
    /// one worker.  Morsel outputs are merged in delta order before
    /// canonicalisation, and the pair counter is an order-independent sum,
    /// so the result is identical for every worker count and granularity.
    pub fn detect_delta(
        &self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        delta_positions: &[usize],
    ) -> Result<(Vec<Violation>, usize)> {
        let in_delta: HashSet<usize> = delta_positions.iter().copied().collect();
        if ctx.workers() == 1 {
            let (found, pairs) =
                self.detect_delta_rows(schema, tuples, delta_positions, &in_delta)?;
            return Ok((canonicalize_violations(found), pairs));
        }
        let weights: Vec<u64> = delta_positions
            .iter()
            .map(|&d| {
                let c = &self.contributions[d];
                let right_fanout = self
                    .partitions
                    .get(&c.right_key)
                    .map_or(0, |p| p.left.len());
                let left_fanout = self.partitions.get(&c.left_key).map_or(0, |p| {
                    if self.symmetric {
                        p.left.len()
                    } else {
                        p.right.len()
                    }
                });
                (right_fanout + left_fanout) as u64 + 1
            })
            .collect();
        let ranges = daisy_exec::weighted_ranges(&weights, ctx.morsel_count(delta_positions.len()));
        let partials = daisy_exec::try_run_tasks(ctx, &ranges, |&(start, end)| {
            let out =
                self.detect_delta_rows(schema, tuples, &delta_positions[start..end], &in_delta)?;
            if let Some(counters) = ctx.morsel_counters() {
                counters.record_work(out.1 as u64);
            }
            Ok::<_, daisy_common::DaisyError>(out)
        })?;
        let mut found = Vec::new();
        let mut pairs = 0usize;
        for (partial, count) in partials {
            found.extend(partial);
            pairs += count;
        }
        Ok((canonicalize_violations(found), pairs))
    }

    /// Enumerates the directed candidate bindings of a contiguous run of
    /// delta rows (the body one morsel executes).  Concatenating runs in
    /// delta order equals the full sequential enumeration.
    fn detect_delta_rows(
        &self,
        schema: &Schema,
        tuples: &[Tuple],
        delta_positions: &[usize],
        in_delta: &HashSet<usize>,
    ) -> Result<(Vec<Violation>, usize)> {
        let mut found = Vec::new();
        let mut pairs = 0usize;
        for &d in delta_positions {
            let c = &self.contributions[d];
            // Pass (a): `d` in the right-hand probe role.  Owns every pair
            // whose right member is `d` — including Δ×Δ pairs, so pass (b)
            // can skip Δ probes without losing any binding.
            if self.sweep_op.is_none() || !c.right_sweep.is_null() {
                if let Some(part) = self.partitions.get(&c.right_key) {
                    let left = &part.left;
                    let candidates = match self.sweep_op {
                        Some(op) => sweep_candidates(left, op, &c.right_sweep),
                        None => left.as_slice(),
                    };
                    for l in candidates {
                        self.check(schema, tuples, l.pos, d, &mut found, &mut pairs)?;
                    }
                }
            }
            // Pass (b): `d` as the left member against non-Δ right probes
            // (the inverse order-statistics range of pass (a)).
            if self.sweep_op.is_none() || !c.left_sweep.is_null() {
                if let Some(part) = self.partitions.get(&c.left_key) {
                    let right = if self.symmetric {
                        &part.left
                    } else {
                        &part.right
                    };
                    let candidates = match self.sweep_op {
                        Some(op) => right_probes(right, op, &c.left_sweep),
                        None => right.as_slice(),
                    };
                    for r in candidates {
                        if in_delta.contains(&r.pos) {
                            continue;
                        }
                        self.check(schema, tuples, d, r.pos, &mut found, &mut pairs)?;
                    }
                }
            }
        }
        Ok((found, pairs))
    }

    /// Residual-checks one directed candidate binding, mirroring the
    /// `scan_partition` accounting of [`ViolationIndex`](super::ViolationIndex):
    /// self-pairs are skipped before the pair counter, residuals after.
    fn check(
        &self,
        schema: &Schema,
        tuples: &[Tuple],
        i: usize,
        j: usize,
        out: &mut Vec<Violation>,
        pairs: &mut usize,
    ) -> Result<()> {
        if i == j {
            return Ok(());
        }
        *pairs += 1;
        let binding = [&tuples[i], &tuples[j]];
        for pred in &self.residual {
            if !pred.eval(schema, &binding)? {
                return Ok(());
            }
        }
        out.push(Violation::pair(self.rule, tuples[i].id, tuples[j].id));
        Ok(())
    }

    /// Reads what `tuple` contributes to each binding role.
    fn contribution_of(&self, tuple: &Tuple) -> Result<Contribution> {
        let key = |cols: &[usize]| -> Result<Vec<Value>> {
            cols.iter().map(|&c| tuple.value(c)).collect()
        };
        let sweep = |col: Option<usize>| -> Result<Value> {
            match col {
                Some(c) => tuple.value(c),
                None => Ok(Value::Null),
            }
        };
        Ok(Contribution {
            left_key: key(&self.left_cols)?,
            left_sweep: sweep(self.sweep_left)?,
            right_key: key(&self.right_cols)?,
            right_sweep: sweep(self.sweep_right)?,
        })
    }

    /// Inserts a position's entries.  NULL sweep values never satisfy an
    /// order predicate and are excluded from sweep-bearing lists, exactly
    /// like the build-time exclusion of [`ViolationIndex`](super::ViolationIndex).
    fn insert_position(&mut self, pos: usize, c: &Contribution) {
        if self.sweep_op.is_none() || !c.left_sweep.is_null() {
            let part = self.partitions.entry(c.left_key.clone()).or_default();
            insert_sorted(
                &mut part.left,
                SweepEntry {
                    pos,
                    value: c.left_sweep.clone(),
                },
            );
        }
        if !self.symmetric && (self.sweep_op.is_none() || !c.right_sweep.is_null()) {
            let part = self.partitions.entry(c.right_key.clone()).or_default();
            insert_sorted(
                &mut part.right,
                SweepEntry {
                    pos,
                    value: c.right_sweep.clone(),
                },
            );
        }
    }

    /// Removes a position's entries (inverse of
    /// [`MaintainedIndex::insert_position`]), pruning partitions that
    /// become empty so [`MaintainedIndex::partition_count`] stays honest.
    fn remove_position(&mut self, pos: usize, c: &Contribution) {
        if self.sweep_op.is_none() || !c.left_sweep.is_null() {
            if let Some(part) = self.partitions.get_mut(&c.left_key) {
                remove_sorted(&mut part.left, &c.left_sweep, pos);
                if part.left.is_empty() && part.right.is_empty() {
                    self.partitions.remove(&c.left_key);
                }
            }
        }
        if !self.symmetric && (self.sweep_op.is_none() || !c.right_sweep.is_null()) {
            if let Some(part) = self.partitions.get_mut(&c.right_key) {
                remove_sorted(&mut part.right, &c.right_sweep, pos);
                if part.left.is_empty() && part.right.is_empty() {
                    self.partitions.remove(&c.right_key);
                }
            }
        }
    }
}

/// Binary-search insertion keeping the `(value, position)` order the sweep
/// relies on.
fn insert_sorted(list: &mut Vec<SweepEntry<Value>>, entry: SweepEntry<Value>) {
    let at = list.partition_point(|e| (&e.value, e.pos) < (&entry.value, entry.pos));
    list.insert(at, entry);
}

/// Binary-search removal of the entry inserted for `(value, pos)`.
fn remove_sorted(list: &mut Vec<SweepEntry<Value>>, value: &Value, pos: usize) {
    let at = list.partition_point(|e| (&e.value, e.pos) < (value, pos));
    if at < list.len() && list[at].pos == pos && &list[at].value == value {
        list.remove(at);
    }
}

/// The right-role probes an entry with left-role sweep value `probe` pairs
/// with: the inverse of [`sweep_candidates`](super::sweep_candidates) —
/// `probe op r.value` must hold, so `Lt`/`Le` select a suffix and `Gt`/`Ge`
/// a prefix of the ascending-sorted right list.
fn right_probes<'a>(
    right: &'a [SweepEntry<Value>],
    op: ComparisonOp,
    probe: &Value,
) -> &'a [SweepEntry<Value>] {
    match op {
        ComparisonOp::Lt => &right[right.partition_point(|e| e.value <= *probe)..],
        ComparisonOp::Le => &right[right.partition_point(|e| e.value < *probe)..],
        ComparisonOp::Gt => &right[..right.partition_point(|e| e.value < *probe)],
        ComparisonOp::Ge => &right[..right.partition_point(|e| e.value <= *probe)],
        // Equality operators never become sweep predicates.
        ComparisonOp::Eq | ComparisonOp::Neq => right,
    }
}

#[cfg(test)]
mod tests {
    use super::super::ViolationIndex;
    use super::*;
    use daisy_common::{DataType, Schema, TupleId};
    use daisy_exec::ExecContext;
    use daisy_storage::Cell;

    fn ctx() -> ExecContext {
        ExecContext::new(4)
    }

    fn emp_table(rows: &[(i64, i64, f64)]) -> Table {
        Table::from_rows(
            "emp",
            Schema::from_pairs(&[
                ("dept", DataType::Int),
                ("salary", DataType::Int),
                ("tax", DataType::Float),
            ])
            .unwrap(),
            rows.iter()
                .map(|(d, s, t)| vec![Value::Int(*d), Value::Int(*s), Value::Float(*t)])
                .collect(),
        )
        .unwrap()
    }

    fn dc() -> DenialConstraint {
        DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap()
    }

    /// Brute-force oracle restricted to pairs touching the delta rows.
    fn delta_oracle(
        table: &Table,
        constraint: &DenialConstraint,
        delta: &HashSet<TupleId>,
    ) -> Vec<Violation> {
        let mut expected = Vec::new();
        for a in table.tuples() {
            for b in table.tuples() {
                if a.id != b.id
                    && (delta.contains(&a.id) || delta.contains(&b.id))
                    && constraint.violated_by(table.schema(), &[a, b]).unwrap()
                {
                    expected.push(Violation::pair(constraint.id, a.id, b.id));
                }
            }
        }
        canonicalize_violations(expected)
    }

    /// The rebuild-everything baseline: a fresh [`ViolationIndex`] swept
    /// with the Δ admit filter.
    fn rebuild_baseline(
        table: &Table,
        constraint: &DenialConstraint,
        delta_positions: &[usize],
    ) -> (Vec<Violation>, usize) {
        let plan = constraint.index_plan().unwrap();
        let index =
            ViolationIndex::build(&ctx(), table.schema(), constraint, &plan, table.tuples())
                .unwrap();
        let in_delta: HashSet<usize> = delta_positions.iter().copied().collect();
        let (found, pairs) = index
            .sweep_detect(&ctx(), table.schema(), table.tuples(), |i, j| {
                in_delta.contains(&i) || in_delta.contains(&j)
            })
            .unwrap();
        (canonicalize_violations(found), pairs)
    }

    #[test]
    fn absorbed_appends_match_rebuild_and_oracle() {
        let rows: Vec<(i64, i64, f64)> = (0..60)
            .map(|i| (i % 4, 1000 + i * 10, ((i * 37) % 60) as f64 / 100.0))
            .collect();
        let mut table = emp_table(&rows);
        let constraint = dc();
        let plan = constraint.index_plan().unwrap();
        let mut index = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();
        assert!(index.is_current(&table));

        // Append a small batch and absorb it.
        let mut delta = Delta::new();
        let mut delta_ids = HashSet::new();
        for k in 0..5i64 {
            let id = TupleId::new(table.next_tuple_id().raw() + k as u64);
            delta.push_append(
                id,
                vec![
                    Value::Int(k % 4),
                    Value::Int(990 - k * 10),
                    Value::Float(0.9),
                ],
            );
            delta_ids.insert(id);
        }
        table.apply_delta(&delta).unwrap();
        index.absorb_delta(&table, &delta).unwrap();
        assert!(index.is_current(&table));

        let positions: Vec<usize> = (60..65).collect();
        let (found, pairs) = index
            .detect_delta(&ctx(), table.schema(), table.tuples(), &positions)
            .unwrap();
        assert_eq!(found, delta_oracle(&table, &constraint, &delta_ids));
        assert!(!found.is_empty());
        let (baseline, baseline_pairs) = rebuild_baseline(&table, &constraint, &positions);
        assert_eq!(found, baseline);
        assert_eq!(pairs, baseline_pairs, "candidate enumeration must match");
    }

    #[test]
    fn absorbed_updates_replace_entries_and_match_oracle() {
        let rows: Vec<(i64, i64, f64)> = (0..40)
            .map(|i| (i % 3, 1000 + i * 10, ((i * 37) % 40) as f64 / 100.0))
            .collect();
        let mut table = emp_table(&rows);
        let constraint = dc();
        let plan = constraint.index_plan().unwrap();
        let mut index = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();

        // Move two tuples across partitions and along the sweep order.
        let t3 = table.tuples()[3].id;
        let t7 = table.tuples()[7].id;
        let mut delta = Delta::new();
        delta.push_update(
            t3,
            daisy_common::ColumnId::new(0),
            Cell::from(Value::Int(2)),
        );
        delta.push_update(
            t7,
            daisy_common::ColumnId::new(1),
            Cell::from(Value::Int(5000)),
        );
        table.apply_delta(&delta).unwrap();
        index.absorb_delta(&table, &delta).unwrap();
        assert!(index.is_current(&table));

        let positions = vec![3usize, 7];
        let (found, pairs) = index
            .detect_delta(&ctx(), table.schema(), table.tuples(), &positions)
            .unwrap();
        let delta_ids: HashSet<TupleId> = [t3, t7].into_iter().collect();
        assert_eq!(found, delta_oracle(&table, &constraint, &delta_ids));
        let (baseline, baseline_pairs) = rebuild_baseline(&table, &constraint, &positions);
        assert_eq!(found, baseline);
        assert_eq!(pairs, baseline_pairs);
    }

    #[test]
    fn residual_only_updates_skip_partition_maintenance() {
        let mut table = emp_table(&[(1, 100, 0.5), (1, 200, 0.1), (1, 300, 0.9)]);
        let constraint = dc();
        let plan = constraint.index_plan().unwrap();
        let mut index = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();
        let before = index.partitions.clone();

        // `tax` is residual: the entries must not move, but detection must
        // see the new value (it reads the tuples directly).
        let t0 = table.tuples()[0].id;
        let mut delta = Delta::new();
        delta.push_update(
            t0,
            daisy_common::ColumnId::new(2),
            Cell::from(Value::Float(0.05)),
        );
        table.apply_delta(&delta).unwrap();
        index.absorb_delta(&table, &delta).unwrap();
        assert!(index.is_current(&table));
        let unchanged = index
            .partitions
            .iter()
            .zip(before.iter())
            .all(|((ka, pa), (kb, pb))| {
                ka == kb
                    && pa.left.iter().map(|e| e.pos).collect::<Vec<_>>()
                        == pb.left.iter().map(|e| e.pos).collect::<Vec<_>>()
            });
        assert!(unchanged, "residual updates must not touch partitions");

        let delta_ids: HashSet<TupleId> = [t0].into_iter().collect();
        let (found, _) = index
            .detect_delta(&ctx(), table.schema(), table.tuples(), &[0])
            .unwrap();
        assert_eq!(found, delta_oracle(&table, &constraint, &delta_ids));
    }

    #[test]
    fn stale_absorb_is_silent_and_reported_by_is_current() {
        let mut table = emp_table(&[(1, 100, 0.5), (1, 200, 0.1)]);
        let constraint = dc();
        let plan = constraint.index_plan().unwrap();
        let mut index = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();

        // Apply two deltas but only offer the second for absorption: the
        // revision guard must refuse and leave the index stale.
        let t0 = table.tuples()[0].id;
        let mut first = Delta::new();
        first.push_update(
            t0,
            daisy_common::ColumnId::new(1),
            Cell::from(Value::Int(1)),
        );
        let mut second = Delta::new();
        second.push_update(
            t0,
            daisy_common::ColumnId::new(1),
            Cell::from(Value::Int(2)),
        );
        table.apply_delta(&first).unwrap();
        table.apply_delta(&second).unwrap();
        index.absorb_delta(&table, &second).unwrap();
        assert!(!index.is_current(&table));
    }

    #[test]
    fn nulls_and_no_sweep_plans_match_the_delta_oracle() {
        // FD shape (no sweep) with NULL keys.
        let schema = Schema::from_pairs(&[
            ("dept", DataType::Int),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let mut table = Table::from_rows(
            "emp",
            schema,
            vec![
                vec![Value::Null, Value::Int(100), Value::Float(0.1)],
                vec![Value::Int(1), Value::Int(200), Value::Float(0.2)],
                vec![Value::Int(1), Value::Int(200), Value::Float(0.3)],
            ],
        )
        .unwrap();
        let constraint =
            DenialConstraint::parse("fd", "t1.dept = t2.dept & t1.salary != t2.salary").unwrap();
        let plan = constraint.index_plan().unwrap();
        let mut index = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();

        let mut delta = Delta::new();
        let a = table.next_tuple_id();
        delta.push_append(a, vec![Value::Null, Value::Int(300), Value::Float(0.4)]);
        let b = TupleId::new(a.raw() + 1);
        delta.push_append(b, vec![Value::Int(1), Value::Null, Value::Float(0.5)]);
        table.apply_delta(&delta).unwrap();
        index.absorb_delta(&table, &delta).unwrap();

        let positions = vec![3usize, 4];
        let delta_ids: HashSet<TupleId> = [a, b].into_iter().collect();
        let (found, pairs) = index
            .detect_delta(&ctx(), table.schema(), table.tuples(), &positions)
            .unwrap();
        assert_eq!(found, delta_oracle(&table, &constraint, &delta_ids));
        let (baseline, baseline_pairs) = rebuild_baseline(&table, &constraint, &positions);
        assert_eq!(found, baseline);
        assert_eq!(pairs, baseline_pairs);
    }

    #[test]
    fn asymmetric_plans_maintain_both_roles() {
        let schema = Schema::from_pairs(&[
            ("zip", DataType::Int),
            ("city", DataType::Int),
            ("lo", DataType::Int),
            ("hi", DataType::Int),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..30)
            .map(|i| {
                vec![
                    Value::Int(i % 3),
                    Value::Int((i + 1) % 3),
                    Value::Int(i),
                    Value::Int(30 - i),
                ]
            })
            .collect();
        let mut table = Table::from_rows("geo", schema, rows).unwrap();
        let constraint =
            DenialConstraint::parse("phi", "t1.zip = t2.city & t1.lo < t2.hi").unwrap();
        let plan = constraint.index_plan().unwrap();
        assert!(!plan.symmetric_key());
        let mut index = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();

        let mut delta = Delta::new();
        let a = table.next_tuple_id();
        delta.push_append(
            a,
            vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(40)],
        );
        let t5 = table.tuples()[5].id;
        delta.push_update(
            t5,
            daisy_common::ColumnId::new(1),
            Cell::from(Value::Int(0)),
        );
        table.apply_delta(&delta).unwrap();
        index.absorb_delta(&table, &delta).unwrap();

        let positions = vec![5usize, 30];
        let delta_ids: HashSet<TupleId> = [a, t5].into_iter().collect();
        let (found, pairs) = index
            .detect_delta(&ctx(), table.schema(), table.tuples(), &positions)
            .unwrap();
        assert_eq!(found, delta_oracle(&table, &constraint, &delta_ids));
        assert!(!found.is_empty());
        let (baseline, baseline_pairs) = rebuild_baseline(&table, &constraint, &positions);
        assert_eq!(found, baseline);
        assert_eq!(pairs, baseline_pairs);
    }

    #[test]
    fn long_absorb_chain_equals_a_fresh_build() {
        let rows: Vec<(i64, i64, f64)> = (0..50)
            .map(|i| (i % 5, (i * 13) % 400, ((i * 7) % 50) as f64))
            .collect();
        let mut table = emp_table(&rows);
        let constraint = dc();
        let plan = constraint.index_plan().unwrap();
        let mut index = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();

        for round in 0..8i64 {
            let mut delta = Delta::new();
            let id = table.next_tuple_id();
            delta.push_append(
                id,
                vec![
                    Value::Int(round % 5),
                    Value::Int(2000 + round),
                    Value::Float(round as f64 / 10.0),
                ],
            );
            let victim = table.tuples()[(round as usize * 11) % table.len()].id;
            delta.push_update(
                victim,
                daisy_common::ColumnId::new(1),
                Cell::from(Value::Int(100 + round * 7)),
            );
            table.apply_delta(&delta).unwrap();
            index.absorb_delta(&table, &delta).unwrap();
            assert!(index.is_current(&table));
        }

        // Structural equality against a from-scratch build: same partitions,
        // same sorted member lists.
        let fresh = MaintainedIndex::build(table.schema(), &constraint, &plan, &table).unwrap();
        assert_eq!(
            index.partitions.keys().collect::<Vec<_>>(),
            fresh.partitions.keys().collect::<Vec<_>>()
        );
        for (key, part) in &index.partitions {
            let fresh_part = &fresh.partitions[key];
            assert_eq!(
                part.left
                    .iter()
                    .map(|e| (e.pos, e.value.clone()))
                    .collect::<Vec<_>>(),
                fresh_part
                    .left
                    .iter()
                    .map(|e| (e.pos, e.value.clone()))
                    .collect::<Vec<_>>()
            );
        }
    }
}
