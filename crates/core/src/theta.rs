//! The partitioned cartesian-product matrix used to detect general-DC
//! violations (§4.2).
//!
//! Following the optimised theta-join of Okcan & Riedewald that the paper
//! adopts, the self cartesian product of the table is mapped to a matrix
//! whose rows and columns are ranges of the DC's *partition attribute* (the
//! numeric attribute of its first inequality predicate).  The matrix is
//! split into `√p × √p` blocks; a block pair is only checked when the
//! per-attribute boundary ranges of the two blocks can jointly satisfy every
//! predicate of the constraint (block pruning), and within a block pair the
//! candidate tuples are restricted by the same bounds (intra-partition
//! pruning).
//!
//! The matrix is **incremental**: the engine records which block pairs have
//! already been checked, so a query only pays for the sub-matrix formed by
//! its result's value range and the unseen part of the dataset (Fig. 1 and
//! Fig. 2 of the paper).
//!
//! Within a check, candidate pairs are enumerated by one of two kernels
//! (see [`DetectionMode`]): the classic **pairwise** nested loop over each
//! surviving block pair, or the **indexed** hash-equality / sort-sweep scan
//! of [`crate::index::ViolationIndex`] restricted to the not-yet-checked
//! block pairs.  Both kernels share the block bookkeeping (`checked`,
//! pruning, `support`) and emit identical, canonically ordered violations;
//! only `pairs_compared` — and the wall-clock time — differs.  The kernel is
//! picked per matrix from the [`DetectionStrategy`] knob and the detection
//! cost model ([`crate::cost::DetectionEstimate`]).

use std::collections::{HashMap, HashSet};

use daisy_common::{DaisyError, DetectionStrategy, Result, Schema, Value};
use daisy_exec::ExecContext;
use daisy_expr::{DenialConstraint, IndexPlan, Operand, Violation};
use daisy_storage::{ColumnSnapshot, Tuple};

use crate::cost::{planned_detection, DetectionEstimate, DetectionMode};
use crate::index::{canonicalize_violations, ViolationIndex};

/// Per-block bounds of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrBounds {
    /// Minimum value in the block.
    pub min: Value,
    /// Maximum value in the block.
    pub max: Value,
}

/// Row-path bounds of one attribute over a block's members: min/max under
/// the total value order, NULLs ignored.
fn block_bounds_rows(
    tuples: &[Tuple],
    members: &[usize],
    col: usize,
) -> Result<Option<AttrBounds>> {
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for &pos in members {
        let v = tuples[pos].value(col)?;
        if v.is_null() {
            continue;
        }
        min = Some(match min.take() {
            Some(m) => Value::min_of(m, v.clone()),
            None => v.clone(),
        });
        max = Some(match max.take() {
            Some(m) => Value::max_of(m, v),
            None => v,
        });
    }
    Ok(match (min, max) {
        (Some(min), Some(max)) => Some(AttrBounds { min, max }),
        _ => None,
    })
}

/// Columnar bounds: identical extrema computed over ordering codes, decoded
/// to values only once per block.  Ties keep the earliest member, exactly
/// like `Value::min_of` / `Value::max_of` do on the row path, so the
/// decoded bounds are byte-identical.
fn block_bounds_coded(snap: &ColumnSnapshot, members: &[usize], col: usize) -> Option<AttrBounds> {
    let mut min: Option<(daisy_storage::ColumnCode, usize)> = None;
    let mut max: Option<(daisy_storage::ColumnCode, usize)> = None;
    for &pos in members {
        let code = snap.ordering_code(pos, col);
        if code.is_null() {
            continue;
        }
        match &min {
            Some((m, _)) if m.cmp(&code) != std::cmp::Ordering::Greater => {}
            _ => min = Some((code, pos)),
        }
        match &max {
            Some((m, _)) if m.cmp(&code) != std::cmp::Ordering::Less => {}
            _ => max = Some((code, pos)),
        }
    }
    match (min, max) {
        (Some((_, min_pos)), Some((_, max_pos))) => Some(AttrBounds {
            min: snap.value(min_pos, col),
            max: snap.value(max_pos, col),
        }),
        _ => None,
    }
}

/// One block (partition) of the theta-join matrix.
#[derive(Debug, Clone)]
pub struct ThetaBlock {
    /// Positions (into the tuple vector the matrix was built over) of the
    /// tuples in this block, sorted by the partition attribute.
    pub members: Vec<usize>,
    /// Bounds of every DC attribute over the block's members, keyed by
    /// column index.
    pub bounds: HashMap<usize, AttrBounds>,
}

/// Statistics of one (possibly partial) theta-join check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThetaCheckStats {
    /// Block pairs examined by this call.
    pub blocks_checked: usize,
    /// Block pairs skipped thanks to boundary pruning.
    pub blocks_pruned: usize,
    /// Candidate tuple pairs actually compared: every pair of a surviving
    /// block pair under [`DetectionMode::Pairwise`], only the bindings that
    /// survive the equality partitioning and inequality sweep under
    /// [`DetectionMode::Indexed`].
    pub pairs_compared: usize,
}

impl ThetaCheckStats {
    /// Accumulates the statistics of another (per-partition) check into
    /// these.  All counters are order-independent sums, so merging partition
    /// results in any order yields the same totals as a sequential check.
    pub fn merge(&mut self, other: &ThetaCheckStats) {
        self.blocks_checked += other.blocks_checked;
        self.blocks_pruned += other.blocks_pruned;
        self.pairs_compared += other.pairs_compared;
    }
}

/// The partitioned cartesian-product matrix of one table under one DC.
#[derive(Debug, Clone)]
pub struct ThetaMatrix {
    /// The constraint the matrix was built for.
    pub constraint: DenialConstraint,
    /// Column index of the partition attribute.
    pub partition_column: usize,
    /// The blocks, ordered by ascending partition-attribute range.
    pub blocks: Vec<ThetaBlock>,
    /// Already-checked block pairs, stored as `(min, max)` so symmetric
    /// pairs are never re-checked.
    checked: HashSet<(usize, usize)>,
    /// Columns referenced by the constraint.
    dc_columns: Vec<usize>,
    /// The candidate-enumeration kernel resolved for this matrix.
    mode: DetectionMode,
    /// The constraint's index plan (present whenever it quantifies two
    /// tuples), consumed by the indexed kernel.
    plan: Option<IndexPlan>,
    /// Block id per tuple position, used to restrict the indexed kernel to
    /// the not-yet-checked block pairs.
    block_of: Vec<usize>,
    /// The coded violation index of the last snapshot revision the indexed
    /// kernel swept, keyed by [`ColumnSnapshot::revision`].  Consecutive
    /// checks within one request hit the same revision, so the index is
    /// built once and reused instead of rebuilt per call.
    index_cache: Option<(u64, ViolationIndex)>,
    /// How many violation-index builds this matrix has paid for — the
    /// counter the cache-reuse regression test pins.
    index_builds: u64,
}

impl ThetaMatrix {
    /// Builds the matrix over `tuples` with `blocks_per_side` partitions per
    /// axis, resolving the detection kernel from the [`DETECTION_ENV`]
    /// override (defaulting to [`DetectionStrategy::Auto`]).  The partition
    /// attribute is the column of the first predicate's left operand; it
    /// must be numeric for range pruning to be meaningful.
    ///
    /// [`DETECTION_ENV`]: daisy_common::DETECTION_ENV
    pub fn build(
        schema: &Schema,
        tuples: &[Tuple],
        constraint: &DenialConstraint,
        blocks_per_side: usize,
    ) -> Result<ThetaMatrix> {
        ThetaMatrix::build_with_strategy(
            schema,
            tuples,
            constraint,
            blocks_per_side,
            DetectionStrategy::from_env().unwrap_or_default(),
        )
    }

    /// Builds the matrix with an explicit [`DetectionStrategy`]: `Pairwise`
    /// and `Indexed` force their kernel (the latter falling back to pairwise
    /// when the constraint has no index plan), while `Auto` asks the
    /// detection cost model using the equality key's selectivity over
    /// `tuples`.
    pub fn build_with_strategy(
        schema: &Schema,
        tuples: &[Tuple],
        constraint: &DenialConstraint,
        blocks_per_side: usize,
        strategy: DetectionStrategy,
    ) -> Result<ThetaMatrix> {
        ThetaMatrix::build_with_strategy_snap(
            schema,
            tuples,
            constraint,
            blocks_per_side,
            strategy,
            None,
        )
    }

    /// [`ThetaMatrix::build_with_strategy`] over the columnar read path:
    /// when `snapshot` covers exactly `tuples` (row `i` = `tuples[i]`), the
    /// partition sort, the per-block attribute bounds and the `Auto`
    /// cost-model statistics are computed from column codes instead of
    /// cloned values, and the cost model accounts for the cheaper columnar
    /// index build.  A snapshot of the wrong length is ignored.
    pub fn build_with_strategy_snap(
        schema: &Schema,
        tuples: &[Tuple],
        constraint: &DenialConstraint,
        blocks_per_side: usize,
        strategy: DetectionStrategy,
        snapshot: Option<&ColumnSnapshot>,
    ) -> Result<ThetaMatrix> {
        let snapshot = snapshot.filter(|s| s.len() == tuples.len());
        let dc_columns: Vec<usize> = constraint
            .attributes()
            .iter()
            .map(|a| schema.index_of(a))
            .collect::<Result<_>>()?;
        let partition_attr = constraint
            .predicates
            .first()
            .and_then(|p| match &p.left {
                Operand::Attr { column, .. } => Some(column.clone()),
                _ => p.right.column().map(str::to_string),
            })
            .ok_or_else(|| {
                DaisyError::Plan(format!(
                    "constraint `{}` has no attribute to partition on",
                    constraint.name
                ))
            })?;
        let partition_column = schema.index_of(&partition_attr)?;

        // Sort tuple positions by the partition attribute and slice into
        // equal-size blocks.  The columnar sort compares `Copy` ordering
        // codes; both comparators realise the same total order, and the
        // sort is stable, so the resulting block layout is identical.
        let mut order: Vec<usize> = (0..tuples.len()).collect();
        match snapshot {
            Some(snap) => {
                let keys: Vec<daisy_storage::ColumnCode> = (0..tuples.len())
                    .map(|pos| snap.ordering_code(pos, partition_column))
                    .collect();
                order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
            }
            None => {
                let keys: Vec<Value> = tuples
                    .iter()
                    .map(|t| t.value(partition_column))
                    .collect::<Result<_>>()?;
                order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
            }
        }

        let blocks_per_side = blocks_per_side.max(1);
        let ranges = daisy_exec::chunk_ranges(order.len(), blocks_per_side);
        let mut blocks = Vec::with_capacity(ranges.len());
        for (start, end) in ranges {
            let members: Vec<usize> = order[start..end].to_vec();
            let mut bounds: HashMap<usize, AttrBounds> = HashMap::new();
            for &col in &dc_columns {
                let attr_bounds = match snapshot {
                    Some(snap) => block_bounds_coded(snap, &members, col),
                    None => block_bounds_rows(tuples, &members, col)?,
                };
                if let Some(b) = attr_bounds {
                    bounds.insert(col, b);
                }
            }
            blocks.push(ThetaBlock { members, bounds });
        }

        let mut block_of = vec![0usize; tuples.len()];
        for (b, block) in blocks.iter().enumerate() {
            for &pos in &block.members {
                block_of[pos] = b;
            }
        }
        let plan = constraint.index_plan();
        let mode = match planned_detection(constraint, strategy) {
            DetectionStrategy::Pairwise => DetectionMode::Pairwise,
            DetectionStrategy::Indexed => DetectionMode::Indexed,
            DetectionStrategy::Auto => {
                // `planned_detection` only leaves `Auto` standing when the
                // plan has an equality key; measure its selectivity and let
                // the cost model decide.  Both statistics paths count the
                // same composite keys; the snapshot one just skips the
                // per-cell clones, and its availability discounts the
                // projected index-build cost.
                let key_plan = plan.as_ref().expect("Auto implies an index plan");
                let key_columns: Vec<usize> = key_plan
                    .key
                    .iter()
                    .map(|(l, _)| schema.index_of(l))
                    .collect::<Result<_>>()?;
                let key_stats = match snapshot {
                    Some(snap) => snap.key_statistics(&key_columns),
                    None => daisy_storage::key_statistics(tuples, &key_columns)?,
                };
                DetectionEstimate::new(tuples.len(), key_stats)
                    .with_columnar(snapshot.is_some())
                    .recommend()
            }
        };

        Ok(ThetaMatrix {
            constraint: constraint.clone(),
            partition_column,
            blocks,
            checked: HashSet::new(),
            dc_columns,
            mode,
            plan,
            block_of,
            index_cache: None,
            index_builds: 0,
        })
    }

    /// The candidate-enumeration kernel this matrix resolved to.
    pub fn detection_mode(&self) -> DetectionMode {
        self.mode
    }

    /// How many violation-index builds the indexed kernel has paid for.
    /// Checks at an unchanged snapshot revision reuse the cached index, so
    /// this counter advances once per revision, not once per call.
    pub fn index_builds(&self) -> u64 {
        self.index_builds
    }

    /// Number of blocks per side.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of the upper-diagonal block pairs already checked (the
    /// *support* term of Algorithm 2).
    pub fn support(&self) -> f64 {
        let b = self.blocks.len();
        if b == 0 {
            return 1.0;
        }
        let total = b * (b + 1) / 2;
        self.checked.len() as f64 / total as f64
    }

    /// Conservatively decides whether a block pair could contain violations:
    /// some tuple orientation (`t1` drawn from the row block and `t2` from
    /// the column block, or vice versa) must be able to satisfy **every**
    /// predicate simultaneously within the blocks' bounds.
    pub fn blocks_can_violate(&self, row: usize, col: usize) -> bool {
        self.orientation_possible(row, col) || self.orientation_possible(col, row)
    }

    /// `true` when binding `t1` to block `a` and `t2` to block `b` leaves
    /// every predicate satisfiable by the blocks' bounds.
    fn orientation_possible(&self, a: usize, b: usize) -> bool {
        let (block_a, block_b) = (&self.blocks[a], &self.blocks[b]);
        for pred in &self.constraint.predicates {
            let (Some(lc), Some(rc)) = (pred.left.column(), pred.right.column()) else {
                // Predicates with constants cannot be pruned by pair bounds.
                continue;
            };
            let Ok(lc) = self.column_of(lc) else { continue };
            let Ok(rc) = self.column_of(rc) else { continue };
            let (left_tuple, right_tuple) = match (&pred.left, &pred.right) {
                (Operand::Attr { tuple: lt, .. }, Operand::Attr { tuple: rt, .. }) => (*lt, *rt),
                _ => continue,
            };
            let left_block = if left_tuple == 0 { block_a } else { block_b };
            let right_block = if right_tuple == 0 { block_a } else { block_b };
            let (Some(lb), Some(rb)) = (left_block.bounds.get(&lc), right_block.bounds.get(&rc))
            else {
                continue;
            };
            use daisy_expr::ComparisonOp::*;
            // Exists x ∈ [lb.min, lb.max], y ∈ [rb.min, rb.max] with x op y.
            let satisfiable = match pred.op {
                Lt => lb.min < rb.max,
                Le => lb.min <= rb.max,
                Gt => lb.max > rb.min,
                Ge => lb.max >= rb.min,
                Eq => lb.min <= rb.max && rb.min <= lb.max,
                Neq => !(lb.min == lb.max && rb.min == rb.max && lb.min == rb.min),
            };
            if !satisfiable {
                return false;
            }
        }
        true
    }

    /// Resolves a constraint attribute name to the column index recorded at
    /// build time (the attribute list and `dc_columns` are parallel vectors).
    fn column_of(&self, name: &str) -> Result<usize> {
        let attrs = self.constraint.attributes();
        let idx = attrs
            .iter()
            .position(|a| {
                a == name || name.ends_with(&format!(".{a}")) || a.ends_with(&format!(".{name}"))
            })
            .ok_or_else(|| DaisyError::Plan(format!("unknown constraint attribute `{name}`")))?;
        Ok(self.dc_columns[idx])
    }

    /// Checks the whole upper-diagonal matrix (full cleaning).  Violations
    /// are returned in canonical (sorted tuple id) form, de-duplicated.
    pub fn check_all(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        self.check_all_with(ctx, schema, tuples, None)
    }

    /// [`ThetaMatrix::check_all`] over the columnar read path: when
    /// `snapshot` covers exactly `tuples`, the indexed kernel builds and
    /// sweeps its violation index on column codes.  Results are
    /// byte-identical either way; mismatched snapshots are ignored.
    pub fn check_all_with(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        snapshot: Option<&ColumnSnapshot>,
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let rows: Vec<usize> = (0..self.blocks.len()).collect();
        self.check_blocks(ctx, schema, tuples, snapshot, &rows)
    }

    /// Incrementally checks the sub-matrix relevant to a query whose result
    /// spans `[low, high]` on the partition attribute: every block pair whose
    /// row block overlaps the range and that has not been checked before.
    pub fn check_range(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        self.check_range_with(ctx, schema, tuples, None, low, high)
    }

    /// [`ThetaMatrix::check_range`] over the columnar read path (see
    /// [`ThetaMatrix::check_all_with`]).
    pub fn check_range_with(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        snapshot: Option<&ColumnSnapshot>,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let rows: Vec<usize> = (0..self.blocks.len())
            .filter(|&i| {
                let Some(bounds) = self.blocks[i].bounds.get(&self.partition_column) else {
                    return false;
                };
                low.is_none_or(|l| &bounds.max >= l) && high.is_none_or(|h| &bounds.min <= h)
            })
            .collect();
        self.check_blocks(ctx, schema, tuples, snapshot, &rows)
    }

    /// Checks the not-yet-checked block pairs reachable from `rows`,
    /// partitioned over the execution context's workers.
    ///
    /// The pair keys are collected in deterministic row-major order and
    /// handed to the resolved detection kernel.  The pairwise kernel splits
    /// them into even contiguous partitions and prunes/checks each
    /// independently; the indexed kernel builds a
    /// [`ViolationIndex`] over `tuples` and sweeps it, admitting only
    /// bindings that fall in a surviving block pair.  Either way,
    /// per-partition violations are concatenated in partition order and then
    /// canonicalised by [`canonicalize_violations`], and per-partition
    /// [`ThetaCheckStats`] are merged, so the output is byte-identical for
    /// every worker count — and for either kernel.  Already-checked pairs
    /// (`checked` is global state shared between incremental and full calls)
    /// are never re-checked.
    fn check_blocks(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        snapshot: Option<&ColumnSnapshot>,
        rows: &[usize],
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let mut keys: Vec<(usize, usize)> = Vec::new();
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for &row in rows {
            for col in 0..self.blocks.len() {
                let key = (row.min(col), row.max(col));
                if self.checked.contains(&key) || !seen.insert(key) {
                    continue;
                }
                keys.push(key);
            }
        }

        let snapshot = snapshot.filter(|s| s.len() == tuples.len());
        let (violations, stats) = match self.mode {
            DetectionMode::Pairwise => self.check_keys_pairwise(ctx, schema, tuples, &keys)?,
            DetectionMode::Indexed => {
                self.check_keys_indexed(ctx, schema, tuples, snapshot, &keys)?
            }
        };
        self.checked.extend(keys);
        Ok((canonicalize_violations(violations), stats))
    }

    /// The pairwise kernel: every tuple pair of every surviving block pair.
    fn check_keys_pairwise(
        &self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        keys: &[(usize, usize)],
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let this: &ThetaMatrix = self;
        let partials: Vec<(Vec<Violation>, ThetaCheckStats)> =
            daisy_exec::par_flat_map_chunks(ctx, keys, |chunk| {
                let mut stats = ThetaCheckStats::default();
                let mut found: Vec<Violation> = Vec::new();
                for &(a, b) in chunk {
                    if !this.blocks_can_violate(a, b) {
                        stats.blocks_pruned += 1;
                        continue;
                    }
                    stats.blocks_checked += 1;
                    found.extend(this.check_block_pair(schema, tuples, a, b, &mut stats)?);
                }
                Ok::<_, DaisyError>(vec![(found, stats)])
            })?;

        let mut stats = ThetaCheckStats::default();
        let mut violations: Vec<Violation> = Vec::new();
        for (found, partial) in partials {
            violations.extend(found);
            stats.merge(&partial);
        }
        Ok((violations, stats))
    }

    /// The indexed kernel: one hash-equality / sort-sweep pass over the
    /// tuples of the surviving block pairs, admitting only bindings whose
    /// blocks form one of those pairs.
    ///
    /// On the columnar path the index is **cached per snapshot revision**:
    /// a snapshot is immutable between table revisions, so consecutive
    /// checks within one request (range check, then the rest; or one check
    /// per cleaning step) sweep the same build instead of rebuilding it
    /// per call — the admit predicate filters candidate bindings *before*
    /// the pair counter, so sweeping the full cached index emits exactly
    /// the violations and statistics of a fresh per-subset build.  The row
    /// path has no revision to validate against and keeps the per-call
    /// build over only the blocks still under consideration; either way
    /// the kernel always sees fresh expected values after earlier repairs
    /// turned cells probabilistic (stale snapshots are filtered out by the
    /// caller).
    fn check_keys_indexed(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        snapshot: Option<&ColumnSnapshot>,
        keys: &[(usize, usize)],
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let plan = self
            .plan
            .clone()
            .ok_or_else(|| DaisyError::Plan("indexed detection requires an index plan".into()))?;
        let mut stats = ThetaCheckStats::default();
        // The admit predicate runs once per candidate binding, so the
        // surviving-pair membership test must be a plain array index: a
        // `blocks × blocks` bitmap keyed by the canonical `(min, max)`
        // pair, not a hash lookup.
        let side = self.blocks.len();
        let mut allowed = vec![false; side * side];
        let mut survivors = 0usize;
        for &(a, b) in keys {
            if self.blocks_can_violate(a, b) {
                stats.blocks_checked += 1;
                allowed[a * side + b] = true;
                survivors += 1;
            } else {
                stats.blocks_pruned += 1;
            }
        }
        if survivors == 0 {
            return Ok((Vec::new(), stats));
        }
        let row_index;
        let index: &ViolationIndex = match snapshot {
            Some(snap) => {
                let current = self
                    .index_cache
                    .as_ref()
                    .is_some_and(|(rev, _)| *rev == snap.revision());
                if !current {
                    let all: Vec<usize> = (0..tuples.len()).collect();
                    let built = ViolationIndex::build_over_with(
                        ctx,
                        schema,
                        &self.constraint,
                        &plan,
                        tuples,
                        &all,
                        Some(snap),
                    )?;
                    self.index_builds += 1;
                    self.index_cache = Some((snap.revision(), built));
                }
                &self.index_cache.as_ref().expect("just cached").1
            }
            None => {
                // Only tuples of a block participating in some surviving
                // pair can appear in an admitted binding; index just those.
                let active_blocks: HashSet<usize> = keys
                    .iter()
                    .filter(|&&(a, b)| allowed[a * side + b])
                    .flat_map(|&(a, b)| [a, b])
                    .collect();
                let mut positions: Vec<usize> = active_blocks
                    .iter()
                    .flat_map(|&b| self.blocks[b].members.iter().copied())
                    .collect();
                positions.sort_unstable();
                row_index = ViolationIndex::build_over(
                    ctx,
                    schema,
                    &self.constraint,
                    &plan,
                    tuples,
                    &positions,
                )?;
                self.index_builds += 1;
                &row_index
            }
        };
        let block_of = &self.block_of;
        let allowed = &allowed;
        let (violations, pairs) =
            index.sweep_detect_with(ctx, schema, tuples, snapshot, |i, j| {
                let (a, b) = (block_of[i], block_of[j]);
                allowed[a.min(b) * side + a.max(b)]
            })?;
        stats.pairs_compared = pairs;
        Ok((violations, stats))
    }

    fn check_block_pair(
        &self,
        schema: &Schema,
        tuples: &[Tuple],
        a: usize,
        b: usize,
        stats: &mut ThetaCheckStats,
    ) -> Result<Vec<Violation>> {
        let mut out = Vec::new();
        let members_a = &self.blocks[a].members;
        let members_b = &self.blocks[b].members;
        for &pa in members_a {
            for &pb in members_b {
                if a == b && pb <= pa {
                    continue; // prune the symmetric half inside the diagonal
                }
                stats.pairs_compared += 1;
                let t1 = &tuples[pa];
                let t2 = &tuples[pb];
                if self.constraint.violated_by(schema, &[t1, t2])? {
                    out.push(Violation::pair(self.constraint.id, t1.id, t2.id));
                } else if self.constraint.violated_by(schema, &[t2, t1])? {
                    out.push(Violation::pair(self.constraint.id, t2.id, t1.id));
                }
            }
        }
        Ok(out)
    }

    /// Estimates, per row block, the number of violations its tuples
    /// participate in, from boundary overlaps only (the `Estimate_Errors`
    /// function of Algorithm 2).  No tuple pairs are compared.
    pub fn estimate_errors(&self) -> Vec<f64> {
        let b = self.blocks.len();
        let mut estimates = vec![0.0; b];
        for (i, estimate) in estimates.iter_mut().enumerate() {
            for j in 0..b {
                if i == j {
                    continue; // diagonal blocks are covered by the support term
                }
                if self.blocks_can_violate(i.min(j), i.max(j)) {
                    // Weight the pair by the overlap of the secondary
                    // attribute's ranges; when the ranges are disjoint but a
                    // violating orientation is still possible (fully inverted
                    // ranges), every pair of the blocks can violate, so the
                    // weight is 1.
                    let overlap = self.pair_overlap_fraction(i.min(j), i.max(j));
                    let weight = if overlap > 0.0 { overlap } else { 1.0 };
                    *estimate += weight * self.blocks[i].members.len() as f64;
                }
            }
        }
        estimates
    }

    /// Fraction of the secondary attribute's ranges that overlap between two
    /// blocks — the heuristic weight used by `estimate_errors`.
    fn pair_overlap_fraction(&self, a: usize, b: usize) -> f64 {
        // Use the last constraint attribute that differs from the partition
        // attribute as the "secondary" axis; fall back to full weight.
        let secondary = self
            .dc_columns
            .iter()
            .copied()
            .find(|&c| c != self.partition_column);
        let Some(col) = secondary else { return 1.0 };
        let (Some(ba), Some(bb)) = (
            self.blocks[a].bounds.get(&col),
            self.blocks[b].bounds.get(&col),
        ) else {
            return 1.0;
        };
        let (amin, amax) = (ba.min.as_float(), ba.max.as_float());
        let (bmin, bmax) = (bb.min.as_float(), bb.max.as_float());
        match (amin, amax, bmin, bmax) {
            (Some(amin), Some(amax), Some(bmin), Some(bmax)) => {
                let lo = amin.max(bmin);
                let hi = amax.min(bmax);
                let span = (amax - amin).max(bmax - bmin).max(f64::EPSILON);
                ((hi - lo).max(0.0) / span).min(1.0)
            }
            _ => 1.0,
        }
    }

    /// The indices of the row blocks overlapping a value range on the
    /// partition attribute (used by Algorithm 2 to find which estimates are
    /// relevant to a query answer).
    pub fn blocks_overlapping(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&i| {
                let Some(bounds) = self.blocks[i].bounds.get(&self.partition_column) else {
                    return false;
                };
                low.is_none_or(|l| &bounds.max >= l) && high.is_none_or(|h| &bounds.min <= h)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, TupleId};
    use daisy_storage::Table;

    fn salary_table(rows: &[(i64, f64)]) -> Table {
        Table::from_rows(
            "emp",
            Schema::from_pairs(&[("salary", DataType::Int), ("tax", DataType::Float)]).unwrap(),
            rows.iter()
                .map(|(s, t)| vec![Value::Int(*s), Value::Float(*t)])
                .collect(),
        )
        .unwrap()
    }

    fn dc() -> DenialConstraint {
        DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap()
    }

    fn ctx() -> ExecContext {
        ExecContext::new(4)
    }

    #[test]
    fn full_check_finds_paper_example_violation() {
        // Example 5: (1000, 0.1), (3000, 0.2), (2000, 0.3): the last two
        // violate (lower salary, higher tax).
        let table = salary_table(&[(1000, 0.1), (3000, 0.2), (2000, 0.3)]);
        let mut matrix = ThetaMatrix::build(table.schema(), table.tuples(), &dc(), 2).unwrap();
        let (violations, stats) = matrix
            .check_all(&ctx(), table.schema(), table.tuples())
            .unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].canonical().tuples,
            vec![TupleId::new(1), TupleId::new(2)]
        );
        assert!(stats.pairs_compared >= 1);
        assert!((matrix.support() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_check_matches_full_check() {
        // Monotone salaries with shuffled taxes: a brute-force reference
        // check must agree with the partitioned matrix.
        let rows: Vec<(i64, f64)> = (0..60)
            .map(|i| (1000 + i * 10, ((i * 37) % 60) as f64 / 100.0))
            .collect();
        let table = salary_table(&rows);
        let schema = table.schema();

        // Brute force reference.
        let constraint = dc();
        let mut expected = Vec::new();
        for a in table.tuples() {
            for b in table.tuples() {
                if a.id != b.id && constraint.violated_by(schema, &[a, b]).unwrap() {
                    expected.push(Violation::pair(constraint.id, a.id, b.id).canonical());
                }
            }
        }
        expected.sort_by(|a, b| a.tuples.cmp(&b.tuples));
        expected.dedup();

        let mut matrix = ThetaMatrix::build(schema, table.tuples(), &constraint, 4).unwrap();
        let (found, _) = matrix.check_all(&ctx(), schema, table.tuples()).unwrap();
        assert_eq!(found.len(), expected.len());

        // Incremental checking over two disjoint ranges also covers all
        // violations whose row block overlaps the ranges; checking the whole
        // domain in two steps finds the same set and never re-checks blocks.
        let mut incremental = ThetaMatrix::build(schema, table.tuples(), &constraint, 4).unwrap();
        let (first, s1) = incremental
            .check_range(
                &ctx(),
                schema,
                table.tuples(),
                Some(&Value::Int(1000)),
                Some(&Value::Int(1290)),
            )
            .unwrap();
        let (second, s2) = incremental
            .check_range(
                &ctx(),
                schema,
                table.tuples(),
                Some(&Value::Int(1300)),
                None,
            )
            .unwrap();
        let mut combined: Vec<Violation> = first.into_iter().chain(second).collect();
        combined = canonicalize_violations(combined);
        assert_eq!(combined.len(), expected.len());
        assert!(s1.blocks_checked + s1.blocks_pruned > 0);
        // The second pass skipped the block pairs the first pass covered.
        assert!(s2.blocks_checked + s2.blocks_pruned < 16);
    }

    #[test]
    fn pruning_skips_impossible_block_pairs() {
        // Taxes strictly increase with salary → no violations at all; every
        // off-diagonal block pair is prunable.
        let rows: Vec<(i64, f64)> = (0..40).map(|i| (1000 + i, i as f64)).collect();
        let table = salary_table(&rows);
        let mut matrix = ThetaMatrix::build(table.schema(), table.tuples(), &dc(), 4).unwrap();
        let (violations, stats) = matrix
            .check_all(&ctx(), table.schema(), table.tuples())
            .unwrap();
        assert!(violations.is_empty());
        assert!(stats.blocks_pruned > 0);
    }

    #[test]
    fn forced_strategies_find_identical_violations() {
        // An equality-bearing DC so the indexed kernel actually partitions:
        // same "department" (salary % 4), inverted salary/tax.
        let schema = Schema::from_pairs(&[
            ("dept", DataType::Int),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..90)
            .map(|i| {
                vec![
                    Value::Int(i % 4),
                    Value::Int(1000 + i * 10),
                    Value::Float(((i * 37) % 90) as f64 / 100.0),
                ]
            })
            .collect();
        let table = Table::from_rows("emp", schema, rows).unwrap();
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let run = |strategy: DetectionStrategy| {
            // 3 blocks per side deliberately misalign block boundaries with
            // the dept groups, so the pairwise kernel must cross-check
            // adjacent blocks while the indexed kernel still partitions
            // exactly on dept.
            let mut matrix =
                ThetaMatrix::build_with_strategy(table.schema(), table.tuples(), &dc, 3, strategy)
                    .unwrap();
            matrix
                .check_all(&ctx(), table.schema(), table.tuples())
                .unwrap()
        };
        let (pairwise, pairwise_stats) = run(DetectionStrategy::Pairwise);
        let (indexed, indexed_stats) = run(DetectionStrategy::Indexed);
        assert!(!pairwise.is_empty());
        assert_eq!(pairwise, indexed);
        // Block bookkeeping is shared; only the candidate count shrinks.
        assert_eq!(pairwise_stats.blocks_checked, indexed_stats.blocks_checked);
        assert_eq!(pairwise_stats.blocks_pruned, indexed_stats.blocks_pruned);
        assert!(indexed_stats.pairs_compared < pairwise_stats.pairs_compared);
    }

    #[test]
    fn snapshot_read_path_is_byte_identical_with_rows() {
        use daisy_storage::ColumnSnapshot;
        let schema = Schema::from_pairs(&[
            ("dept", DataType::Int),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..120)
            .map(|i| {
                vec![
                    if i % 17 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 5)
                    },
                    Value::Int(1000 + (i * 29) % 700),
                    Value::Float(((i * 37) % 120) as f64 / 100.0),
                ]
            })
            .collect();
        let table = Table::from_rows("emp", schema, rows).unwrap();
        let snap = ColumnSnapshot::build(&table).unwrap();
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let run = |snapshot: Option<&ColumnSnapshot>| {
            let mut matrix = ThetaMatrix::build_with_strategy_snap(
                table.schema(),
                table.tuples(),
                &dc,
                4,
                DetectionStrategy::Indexed,
                snapshot,
            )
            .unwrap();
            // Exercise the incremental flow too: a range, then the rest.
            let (first, s1) = matrix
                .check_range_with(
                    &ctx(),
                    table.schema(),
                    table.tuples(),
                    snapshot,
                    None,
                    Some(&Value::Int(2)),
                )
                .unwrap();
            let (second, s2) = matrix
                .check_all_with(&ctx(), table.schema(), table.tuples(), snapshot)
                .unwrap();
            (first, s1, second, s2)
        };
        let (rf, rs1, rsec, rs2) = run(None);
        let (cf, cs1, csec, cs2) = run(Some(&snap));
        assert_eq!(rf, cf);
        assert_eq!(rsec, csec);
        assert_eq!(rs1, cs1, "first-pass statistics must match");
        assert_eq!(rs2, cs2, "second-pass statistics must match");
        assert!(!rf.is_empty() || !rsec.is_empty());
    }

    #[test]
    fn unchanged_revision_reuses_the_cached_index() {
        use daisy_storage::ColumnSnapshot;
        // Regression: consecutive indexed checks in one request used to
        // rebuild the violation index per call even though the snapshot
        // revision never moved between them.
        let schema = Schema::from_pairs(&[
            ("dept", DataType::Int),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..80)
            .map(|i| {
                vec![
                    Value::Int(i % 4),
                    Value::Int(1000 + (i * 29) % 600),
                    Value::Float(((i * 37) % 80) as f64 / 100.0),
                ]
            })
            .collect();
        let table = Table::from_rows("emp", schema, rows).unwrap();
        let snap = ColumnSnapshot::build(&table).unwrap();
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let mut matrix = ThetaMatrix::build_with_strategy_snap(
            table.schema(),
            table.tuples(),
            &dc,
            4,
            DetectionStrategy::Indexed,
            Some(&snap),
        )
        .unwrap();
        assert_eq!(matrix.index_builds(), 0);
        let (first, _) = matrix
            .check_range_with(
                &ctx(),
                table.schema(),
                table.tuples(),
                Some(&snap),
                None,
                Some(&Value::Int(1)),
            )
            .unwrap();
        assert_eq!(matrix.index_builds(), 1);
        let (second, _) = matrix
            .check_all_with(&ctx(), table.schema(), table.tuples(), Some(&snap))
            .unwrap();
        assert_eq!(
            matrix.index_builds(),
            1,
            "an unchanged snapshot revision must reuse the cached index"
        );
        // The cached sweep finds exactly what a pairwise matrix finds.
        let mut pairwise = ThetaMatrix::build_with_strategy(
            table.schema(),
            table.tuples(),
            &dc,
            4,
            DetectionStrategy::Pairwise,
        )
        .unwrap();
        let (expected, _) = pairwise
            .check_all(&ctx(), table.schema(), table.tuples())
            .unwrap();
        let combined = canonicalize_violations(first.into_iter().chain(second).collect());
        assert_eq!(combined, expected);
        assert!(!combined.is_empty());
    }

    #[test]
    fn incremental_checks_agree_across_strategies() {
        let schema = Schema::from_pairs(&[
            ("dept", DataType::Int),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..70)
            .map(|i| {
                vec![
                    Value::Int(i % 3),
                    Value::Int((i * 13) % 500),
                    Value::Float(((i * 7) % 70) as f64),
                ]
            })
            .collect();
        let table = Table::from_rows("emp", schema, rows).unwrap();
        let dc = DenialConstraint::parse(
            "phi",
            "t1.dept = t2.dept & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let run = |strategy: DetectionStrategy| {
            let mut matrix =
                ThetaMatrix::build_with_strategy(table.schema(), table.tuples(), &dc, 4, strategy)
                    .unwrap();
            // The partition attribute is `dept` (first predicate): split the
            // domain, check the halves, and make sure nothing is re-checked.
            let (first, s1) = matrix
                .check_range(
                    &ctx(),
                    table.schema(),
                    table.tuples(),
                    None,
                    Some(&Value::Int(1)),
                )
                .unwrap();
            let (second, s2) = matrix
                .check_range(
                    &ctx(),
                    table.schema(),
                    table.tuples(),
                    Some(&Value::Int(1)),
                    None,
                )
                .unwrap();
            let mut stats = s1;
            stats.merge(&s2);
            (
                canonicalize_violations(first.into_iter().chain(second).collect()),
                stats,
            )
        };
        let (pairwise, _) = run(DetectionStrategy::Pairwise);
        let (indexed, _) = run(DetectionStrategy::Indexed);
        assert!(!pairwise.is_empty());
        assert_eq!(pairwise, indexed);
    }

    #[test]
    fn auto_mode_resolves_from_key_selectivity() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("a", DataType::Int)]).unwrap();
        let selective: Vec<Vec<Value>> = (0..400)
            .map(|i| vec![Value::Int(i % 100), Value::Int(i)])
            .collect();
        let table = Table::from_rows("t", schema.clone(), selective).unwrap();
        let with_eq = DenialConstraint::parse("phi", "t1.k = t2.k & t1.a < t2.a").unwrap();
        let matrix = ThetaMatrix::build_with_strategy(
            table.schema(),
            table.tuples(),
            &with_eq,
            4,
            DetectionStrategy::Auto,
        )
        .unwrap();
        assert_eq!(matrix.detection_mode(), DetectionMode::Indexed);

        // Tiny inputs and equality-free constraints stay pairwise.
        let tiny = Table::from_rows(
            "t",
            schema,
            (0..10)
                .map(|i| vec![Value::Int(i), Value::Int(i)])
                .collect(),
        )
        .unwrap();
        let matrix = ThetaMatrix::build_with_strategy(
            tiny.schema(),
            tiny.tuples(),
            &with_eq,
            2,
            DetectionStrategy::Auto,
        )
        .unwrap();
        assert_eq!(matrix.detection_mode(), DetectionMode::Pairwise);
        let no_eq = DenialConstraint::parse("phi", "t1.a < t2.a & t1.k > t2.k").unwrap();
        let matrix = ThetaMatrix::build_with_strategy(
            table.schema(),
            table.tuples(),
            &no_eq,
            4,
            DetectionStrategy::Auto,
        )
        .unwrap();
        assert_eq!(matrix.detection_mode(), DetectionMode::Pairwise);
    }

    #[test]
    fn estimate_errors_flags_overlapping_ranges() {
        let clean_rows: Vec<(i64, f64)> = (0..40).map(|i| (1000 + i, i as f64)).collect();
        let clean = salary_table(&clean_rows);
        let clean_matrix = ThetaMatrix::build(clean.schema(), clean.tuples(), &dc(), 4).unwrap();
        assert!(clean_matrix.estimate_errors().iter().sum::<f64>() < 1e-9);

        let dirty_rows: Vec<(i64, f64)> = (0..40)
            .map(|i| (1000 + i, ((i * 17) % 40) as f64))
            .collect();
        let dirty = salary_table(&dirty_rows);
        let dirty_matrix = ThetaMatrix::build(dirty.schema(), dirty.tuples(), &dc(), 4).unwrap();
        assert!(dirty_matrix.estimate_errors().iter().sum::<f64>() > 0.0);
        assert_eq!(
            dirty_matrix.blocks_overlapping(Some(&Value::Int(1000)), Some(&Value::Int(1005))),
            vec![0]
        );
    }
}
