//! The partitioned cartesian-product matrix used to detect general-DC
//! violations (§4.2).
//!
//! Following the optimised theta-join of Okcan & Riedewald that the paper
//! adopts, the self cartesian product of the table is mapped to a matrix
//! whose rows and columns are ranges of the DC's *partition attribute* (the
//! numeric attribute of its first inequality predicate).  The matrix is
//! split into `√p × √p` blocks; a block pair is only checked when the
//! per-attribute boundary ranges of the two blocks can jointly satisfy every
//! predicate of the constraint (block pruning), and within a block pair the
//! candidate tuples are restricted by the same bounds (intra-partition
//! pruning).
//!
//! The matrix is **incremental**: the engine records which block pairs have
//! already been checked, so a query only pays for the sub-matrix formed by
//! its result's value range and the unseen part of the dataset (Fig. 1 and
//! Fig. 2 of the paper).

use std::collections::{HashMap, HashSet};

use daisy_common::{DaisyError, Result, Schema, Value};
use daisy_exec::ExecContext;
use daisy_expr::{DenialConstraint, Operand, Violation};
use daisy_storage::Tuple;

/// Per-block bounds of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrBounds {
    /// Minimum value in the block.
    pub min: Value,
    /// Maximum value in the block.
    pub max: Value,
}

/// One block (partition) of the theta-join matrix.
#[derive(Debug, Clone)]
pub struct ThetaBlock {
    /// Positions (into the tuple vector the matrix was built over) of the
    /// tuples in this block, sorted by the partition attribute.
    pub members: Vec<usize>,
    /// Bounds of every DC attribute over the block's members, keyed by
    /// column index.
    pub bounds: HashMap<usize, AttrBounds>,
}

/// Statistics of one (possibly partial) theta-join check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThetaCheckStats {
    /// Block pairs examined by this call.
    pub blocks_checked: usize,
    /// Block pairs skipped thanks to boundary pruning.
    pub blocks_pruned: usize,
    /// Tuple pairs actually compared.
    pub pairs_compared: usize,
}

impl ThetaCheckStats {
    /// Accumulates the statistics of another (per-partition) check into
    /// these.  All counters are order-independent sums, so merging partition
    /// results in any order yields the same totals as a sequential check.
    pub fn merge(&mut self, other: &ThetaCheckStats) {
        self.blocks_checked += other.blocks_checked;
        self.blocks_pruned += other.blocks_pruned;
        self.pairs_compared += other.pairs_compared;
    }
}

/// The partitioned cartesian-product matrix of one table under one DC.
#[derive(Debug, Clone)]
pub struct ThetaMatrix {
    /// The constraint the matrix was built for.
    pub constraint: DenialConstraint,
    /// Column index of the partition attribute.
    pub partition_column: usize,
    /// The blocks, ordered by ascending partition-attribute range.
    pub blocks: Vec<ThetaBlock>,
    /// Already-checked block pairs, stored as `(min, max)` so symmetric
    /// pairs are never re-checked.
    checked: HashSet<(usize, usize)>,
    /// Columns referenced by the constraint.
    dc_columns: Vec<usize>,
}

impl ThetaMatrix {
    /// Builds the matrix over `tuples` with `blocks_per_side` partitions per
    /// axis.  The partition attribute is the column of the first predicate's
    /// left operand; it must be numeric for range pruning to be meaningful.
    pub fn build(
        schema: &Schema,
        tuples: &[Tuple],
        constraint: &DenialConstraint,
        blocks_per_side: usize,
    ) -> Result<ThetaMatrix> {
        let dc_columns: Vec<usize> = constraint
            .attributes()
            .iter()
            .map(|a| schema.index_of(a))
            .collect::<Result<_>>()?;
        let partition_attr = constraint
            .predicates
            .first()
            .and_then(|p| match &p.left {
                Operand::Attr { column, .. } => Some(column.clone()),
                _ => p.right.column().map(str::to_string),
            })
            .ok_or_else(|| {
                DaisyError::Plan(format!(
                    "constraint `{}` has no attribute to partition on",
                    constraint.name
                ))
            })?;
        let partition_column = schema.index_of(&partition_attr)?;

        // Sort tuple positions by the partition attribute and slice into
        // equal-size blocks.
        let mut order: Vec<usize> = (0..tuples.len()).collect();
        let keys: Vec<Value> = tuples
            .iter()
            .map(|t| t.value(partition_column))
            .collect::<Result<_>>()?;
        order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));

        let blocks_per_side = blocks_per_side.max(1);
        let ranges = daisy_exec::chunk_ranges(order.len(), blocks_per_side);
        let mut blocks = Vec::with_capacity(ranges.len());
        for (start, end) in ranges {
            let members: Vec<usize> = order[start..end].to_vec();
            let mut bounds: HashMap<usize, AttrBounds> = HashMap::new();
            for &col in &dc_columns {
                let mut min: Option<Value> = None;
                let mut max: Option<Value> = None;
                for &pos in &members {
                    let v = tuples[pos].value(col)?;
                    if v.is_null() {
                        continue;
                    }
                    min = Some(match min.take() {
                        Some(m) => Value::min_of(m, v.clone()),
                        None => v.clone(),
                    });
                    max = Some(match max.take() {
                        Some(m) => Value::max_of(m, v),
                        None => v,
                    });
                }
                if let (Some(min), Some(max)) = (min, max) {
                    bounds.insert(col, AttrBounds { min, max });
                }
            }
            blocks.push(ThetaBlock { members, bounds });
        }
        Ok(ThetaMatrix {
            constraint: constraint.clone(),
            partition_column,
            blocks,
            checked: HashSet::new(),
            dc_columns,
        })
    }

    /// Number of blocks per side.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of the upper-diagonal block pairs already checked (the
    /// *support* term of Algorithm 2).
    pub fn support(&self) -> f64 {
        let b = self.blocks.len();
        if b == 0 {
            return 1.0;
        }
        let total = b * (b + 1) / 2;
        self.checked.len() as f64 / total as f64
    }

    /// Conservatively decides whether a block pair could contain violations:
    /// some tuple orientation (`t1` drawn from the row block and `t2` from
    /// the column block, or vice versa) must be able to satisfy **every**
    /// predicate simultaneously within the blocks' bounds.
    pub fn blocks_can_violate(&self, row: usize, col: usize) -> bool {
        self.orientation_possible(row, col) || self.orientation_possible(col, row)
    }

    /// `true` when binding `t1` to block `a` and `t2` to block `b` leaves
    /// every predicate satisfiable by the blocks' bounds.
    fn orientation_possible(&self, a: usize, b: usize) -> bool {
        let (block_a, block_b) = (&self.blocks[a], &self.blocks[b]);
        for pred in &self.constraint.predicates {
            let (Some(lc), Some(rc)) = (pred.left.column(), pred.right.column()) else {
                // Predicates with constants cannot be pruned by pair bounds.
                continue;
            };
            let Ok(lc) = self.column_of(lc) else { continue };
            let Ok(rc) = self.column_of(rc) else { continue };
            let (left_tuple, right_tuple) = match (&pred.left, &pred.right) {
                (Operand::Attr { tuple: lt, .. }, Operand::Attr { tuple: rt, .. }) => (*lt, *rt),
                _ => continue,
            };
            let left_block = if left_tuple == 0 { block_a } else { block_b };
            let right_block = if right_tuple == 0 { block_a } else { block_b };
            let (Some(lb), Some(rb)) = (left_block.bounds.get(&lc), right_block.bounds.get(&rc))
            else {
                continue;
            };
            use daisy_expr::ComparisonOp::*;
            // Exists x ∈ [lb.min, lb.max], y ∈ [rb.min, rb.max] with x op y.
            let satisfiable = match pred.op {
                Lt => lb.min < rb.max,
                Le => lb.min <= rb.max,
                Gt => lb.max > rb.min,
                Ge => lb.max >= rb.min,
                Eq => lb.min <= rb.max && rb.min <= lb.max,
                Neq => !(lb.min == lb.max && rb.min == rb.max && lb.min == rb.min),
            };
            if !satisfiable {
                return false;
            }
        }
        true
    }

    /// Resolves a constraint attribute name to the column index recorded at
    /// build time (the attribute list and `dc_columns` are parallel vectors).
    fn column_of(&self, name: &str) -> Result<usize> {
        let attrs = self.constraint.attributes();
        let idx = attrs
            .iter()
            .position(|a| {
                a == name || name.ends_with(&format!(".{a}")) || a.ends_with(&format!(".{name}"))
            })
            .ok_or_else(|| DaisyError::Plan(format!("unknown constraint attribute `{name}`")))?;
        Ok(self.dc_columns[idx])
    }

    /// Checks the whole upper-diagonal matrix (full cleaning).  Violations
    /// are returned in canonical (sorted tuple id) form, de-duplicated.
    pub fn check_all(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let rows: Vec<usize> = (0..self.blocks.len()).collect();
        self.check_blocks(ctx, schema, tuples, &rows)
    }

    /// Incrementally checks the sub-matrix relevant to a query whose result
    /// spans `[low, high]` on the partition attribute: every block pair whose
    /// row block overlaps the range and that has not been checked before.
    pub fn check_range(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let rows: Vec<usize> = (0..self.blocks.len())
            .filter(|&i| {
                let Some(bounds) = self.blocks[i].bounds.get(&self.partition_column) else {
                    return false;
                };
                low.is_none_or(|l| &bounds.max >= l) && high.is_none_or(|h| &bounds.min <= h)
            })
            .collect();
        self.check_blocks(ctx, schema, tuples, &rows)
    }

    /// Checks the not-yet-checked block pairs reachable from `rows`,
    /// partitioned over the execution context's workers.
    ///
    /// The pair keys are collected in deterministic row-major order, split
    /// into even contiguous partitions, and each partition is pruned/checked
    /// independently (both `blocks_can_violate` and the pair comparison only
    /// read the matrix).  Per-partition violations are concatenated in
    /// partition order and then canonicalised by [`dedup_violations`], and
    /// per-partition [`ThetaCheckStats`] are merged, so the output is
    /// byte-identical for every worker count.  Already-checked pairs
    /// (`checked` is global state shared between incremental and full calls)
    /// are never re-checked.
    fn check_blocks(
        &mut self,
        ctx: &ExecContext,
        schema: &Schema,
        tuples: &[Tuple],
        rows: &[usize],
    ) -> Result<(Vec<Violation>, ThetaCheckStats)> {
        let mut keys: Vec<(usize, usize)> = Vec::new();
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for &row in rows {
            for col in 0..self.blocks.len() {
                let key = (row.min(col), row.max(col));
                if self.checked.contains(&key) || !seen.insert(key) {
                    continue;
                }
                keys.push(key);
            }
        }

        let this: &ThetaMatrix = self;
        let partials: Vec<(Vec<Violation>, ThetaCheckStats)> =
            daisy_exec::par_flat_map_chunks(ctx, &keys, |chunk| {
                let mut stats = ThetaCheckStats::default();
                let mut found: Vec<Violation> = Vec::new();
                for &(a, b) in chunk {
                    if !this.blocks_can_violate(a, b) {
                        stats.blocks_pruned += 1;
                        continue;
                    }
                    stats.blocks_checked += 1;
                    found.extend(this.check_block_pair(schema, tuples, a, b, &mut stats)?);
                }
                Ok::<_, DaisyError>(vec![(found, stats)])
            })?;

        let mut stats = ThetaCheckStats::default();
        let mut violations: Vec<Violation> = Vec::new();
        for (found, partial) in partials {
            violations.extend(found);
            stats.merge(&partial);
        }
        self.checked.extend(keys);
        Ok((dedup_violations(violations), stats))
    }

    fn check_block_pair(
        &self,
        schema: &Schema,
        tuples: &[Tuple],
        a: usize,
        b: usize,
        stats: &mut ThetaCheckStats,
    ) -> Result<Vec<Violation>> {
        let mut out = Vec::new();
        let members_a = &self.blocks[a].members;
        let members_b = &self.blocks[b].members;
        for &pa in members_a {
            for &pb in members_b {
                if a == b && pb <= pa {
                    continue; // prune the symmetric half inside the diagonal
                }
                stats.pairs_compared += 1;
                let t1 = &tuples[pa];
                let t2 = &tuples[pb];
                if self.constraint.violated_by(schema, &[t1, t2])? {
                    out.push(Violation::pair(self.constraint.id, t1.id, t2.id));
                } else if self.constraint.violated_by(schema, &[t2, t1])? {
                    out.push(Violation::pair(self.constraint.id, t2.id, t1.id));
                }
            }
        }
        Ok(out)
    }

    /// Estimates, per row block, the number of violations its tuples
    /// participate in, from boundary overlaps only (the `Estimate_Errors`
    /// function of Algorithm 2).  No tuple pairs are compared.
    pub fn estimate_errors(&self) -> Vec<f64> {
        let b = self.blocks.len();
        let mut estimates = vec![0.0; b];
        for (i, estimate) in estimates.iter_mut().enumerate() {
            for j in 0..b {
                if i == j {
                    continue; // diagonal blocks are covered by the support term
                }
                if self.blocks_can_violate(i.min(j), i.max(j)) {
                    // Weight the pair by the overlap of the secondary
                    // attribute's ranges; when the ranges are disjoint but a
                    // violating orientation is still possible (fully inverted
                    // ranges), every pair of the blocks can violate, so the
                    // weight is 1.
                    let overlap = self.pair_overlap_fraction(i.min(j), i.max(j));
                    let weight = if overlap > 0.0 { overlap } else { 1.0 };
                    *estimate += weight * self.blocks[i].members.len() as f64;
                }
            }
        }
        estimates
    }

    /// Fraction of the secondary attribute's ranges that overlap between two
    /// blocks — the heuristic weight used by `estimate_errors`.
    fn pair_overlap_fraction(&self, a: usize, b: usize) -> f64 {
        // Use the last constraint attribute that differs from the partition
        // attribute as the "secondary" axis; fall back to full weight.
        let secondary = self
            .dc_columns
            .iter()
            .copied()
            .find(|&c| c != self.partition_column);
        let Some(col) = secondary else { return 1.0 };
        let (Some(ba), Some(bb)) = (
            self.blocks[a].bounds.get(&col),
            self.blocks[b].bounds.get(&col),
        ) else {
            return 1.0;
        };
        let (amin, amax) = (ba.min.as_float(), ba.max.as_float());
        let (bmin, bmax) = (bb.min.as_float(), bb.max.as_float());
        match (amin, amax, bmin, bmax) {
            (Some(amin), Some(amax), Some(bmin), Some(bmax)) => {
                let lo = amin.max(bmin);
                let hi = amax.min(bmax);
                let span = (amax - amin).max(bmax - bmin).max(f64::EPSILON);
                ((hi - lo).max(0.0) / span).min(1.0)
            }
            _ => 1.0,
        }
    }

    /// The indices of the row blocks overlapping a value range on the
    /// partition attribute (used by Algorithm 2 to find which estimates are
    /// relevant to a query answer).
    pub fn blocks_overlapping(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&i| {
                let Some(bounds) = self.blocks[i].bounds.get(&self.partition_column) else {
                    return false;
                };
                low.is_none_or(|l| &bounds.max >= l) && high.is_none_or(|h| &bounds.min <= h)
            })
            .collect()
    }
}

fn dedup_violations(mut violations: Vec<Violation>) -> Vec<Violation> {
    for v in violations.iter_mut() {
        *v = v.canonical();
    }
    violations.sort_by(|a, b| a.tuples.cmp(&b.tuples));
    violations.dedup();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, TupleId};
    use daisy_storage::Table;

    fn salary_table(rows: &[(i64, f64)]) -> Table {
        Table::from_rows(
            "emp",
            Schema::from_pairs(&[("salary", DataType::Int), ("tax", DataType::Float)]).unwrap(),
            rows.iter()
                .map(|(s, t)| vec![Value::Int(*s), Value::Float(*t)])
                .collect(),
        )
        .unwrap()
    }

    fn dc() -> DenialConstraint {
        DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap()
    }

    fn ctx() -> ExecContext {
        ExecContext::new(4)
    }

    #[test]
    fn full_check_finds_paper_example_violation() {
        // Example 5: (1000, 0.1), (3000, 0.2), (2000, 0.3): the last two
        // violate (lower salary, higher tax).
        let table = salary_table(&[(1000, 0.1), (3000, 0.2), (2000, 0.3)]);
        let mut matrix = ThetaMatrix::build(table.schema(), table.tuples(), &dc(), 2).unwrap();
        let (violations, stats) = matrix
            .check_all(&ctx(), table.schema(), table.tuples())
            .unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].canonical().tuples,
            vec![TupleId::new(1), TupleId::new(2)]
        );
        assert!(stats.pairs_compared >= 1);
        assert!((matrix.support() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_check_matches_full_check() {
        // Monotone salaries with shuffled taxes: a brute-force reference
        // check must agree with the partitioned matrix.
        let rows: Vec<(i64, f64)> = (0..60)
            .map(|i| (1000 + i * 10, ((i * 37) % 60) as f64 / 100.0))
            .collect();
        let table = salary_table(&rows);
        let schema = table.schema();

        // Brute force reference.
        let constraint = dc();
        let mut expected = Vec::new();
        for a in table.tuples() {
            for b in table.tuples() {
                if a.id != b.id && constraint.violated_by(schema, &[a, b]).unwrap() {
                    expected.push(Violation::pair(constraint.id, a.id, b.id).canonical());
                }
            }
        }
        expected.sort_by(|a, b| a.tuples.cmp(&b.tuples));
        expected.dedup();

        let mut matrix = ThetaMatrix::build(schema, table.tuples(), &constraint, 4).unwrap();
        let (found, _) = matrix.check_all(&ctx(), schema, table.tuples()).unwrap();
        assert_eq!(found.len(), expected.len());

        // Incremental checking over two disjoint ranges also covers all
        // violations whose row block overlaps the ranges; checking the whole
        // domain in two steps finds the same set and never re-checks blocks.
        let mut incremental = ThetaMatrix::build(schema, table.tuples(), &constraint, 4).unwrap();
        let (first, s1) = incremental
            .check_range(
                &ctx(),
                schema,
                table.tuples(),
                Some(&Value::Int(1000)),
                Some(&Value::Int(1290)),
            )
            .unwrap();
        let (second, s2) = incremental
            .check_range(
                &ctx(),
                schema,
                table.tuples(),
                Some(&Value::Int(1300)),
                None,
            )
            .unwrap();
        let mut combined: Vec<Violation> = first.into_iter().chain(second).collect();
        combined = super::dedup_violations(combined);
        assert_eq!(combined.len(), expected.len());
        assert!(s1.blocks_checked + s1.blocks_pruned > 0);
        // The second pass skipped the block pairs the first pass covered.
        assert!(s2.blocks_checked + s2.blocks_pruned < 16);
    }

    #[test]
    fn pruning_skips_impossible_block_pairs() {
        // Taxes strictly increase with salary → no violations at all; every
        // off-diagonal block pair is prunable.
        let rows: Vec<(i64, f64)> = (0..40).map(|i| (1000 + i, i as f64)).collect();
        let table = salary_table(&rows);
        let mut matrix = ThetaMatrix::build(table.schema(), table.tuples(), &dc(), 4).unwrap();
        let (violations, stats) = matrix
            .check_all(&ctx(), table.schema(), table.tuples())
            .unwrap();
        assert!(violations.is_empty());
        assert!(stats.blocks_pruned > 0);
    }

    #[test]
    fn estimate_errors_flags_overlapping_ranges() {
        let clean_rows: Vec<(i64, f64)> = (0..40).map(|i| (1000 + i, i as f64)).collect();
        let clean = salary_table(&clean_rows);
        let clean_matrix = ThetaMatrix::build(clean.schema(), clean.tuples(), &dc(), 4).unwrap();
        assert!(clean_matrix.estimate_errors().iter().sum::<f64>() < 1e-9);

        let dirty_rows: Vec<(i64, f64)> = (0..40)
            .map(|i| (1000 + i, ((i * 17) % 40) as f64))
            .collect();
        let dirty = salary_table(&dirty_rows);
        let dirty_matrix = ThetaMatrix::build(dirty.schema(), dirty.tuples(), &dc(), 4).unwrap();
        assert!(dirty_matrix.estimate_errors().iter().sum::<f64>() > 0.0);
        assert_eq!(
            dirty_matrix.blocks_overlapping(Some(&Value::Int(1000)), Some(&Value::Int(1005))),
            vec![0]
        );
    }
}
