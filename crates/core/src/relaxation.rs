//! Query-result relaxation (Algorithm 1) and its analytical estimates
//! (Lemmas 1–3).
//!
//! Given a functional dependency `lhs → rhs` and a (dirty) query answer,
//! relaxation enhances the answer with the *correlated tuples* of the
//! dataset: the unvisited tuples that share an lhs or an rhs value with the
//! answer, computed transitively.  These extra tuples are exactly what is
//! needed to (a) detect the violations affecting the answer and (b) compute
//! the complete candidate-fix domains without traversing the dataset once
//! per erroneous value — the key efficiency claim behind Figs. 5 and 6.

use std::collections::HashSet;

use daisy_common::{Result, TupleId, Value};
use daisy_storage::{ColumnStatistics, Tuple};

use crate::fd_index::FdIndex;

/// Which side of the FD the query's filter restricts; decides how many
/// relaxation iterations are needed (Lemmas 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterTarget {
    /// The filter restricts the FD's rhs attribute: one iteration suffices
    /// (Lemma 1).
    Rhs,
    /// The filter restricts the FD's lhs attribute (or another attribute):
    /// the transitive closure may need several iterations (Lemma 2).
    Lhs,
    /// The query does not constrain either FD attribute; relaxation runs to
    /// fixpoint like the lhs case.
    Other,
}

/// The outcome of relaxing a query answer.
#[derive(Debug, Clone, Default)]
pub struct RelaxationOutcome {
    /// The correlated tuples added to the answer (cloned from the table).
    pub extra: Vec<Tuple>,
    /// Number of iterations of the while-loop of Algorithm 1.
    pub iterations: usize,
    /// Number of unvisited tuples examined (the `O(u)` cost term `e_i` of
    /// §5.2.2).
    pub scanned: usize,
}

/// Runs Algorithm 1: SP query-result relaxation for an FD.
///
/// `answer` holds the tuples of the (dirty) query answer; `unvisited_pool`
/// is the data subset that does not belong to the answer (typically the rest
/// of the base table, or only its not-yet-cleaned part when the engine
/// tracks visited tuples).  When `filter_on == FilterTarget::Rhs` a single
/// iteration is performed (Lemma 1); otherwise iterations continue until no
/// new correlated tuples are found or `max_iterations` is reached.
pub fn relax_fd(
    index: &FdIndex,
    answer: &[Tuple],
    unvisited_pool: &[Tuple],
    filter_on: FilterTarget,
    max_iterations: usize,
) -> Result<RelaxationOutcome> {
    // Seed the correlation values from the answer.  Cells that are already
    // probabilistic are skipped: they were produced by an earlier cleaning
    // pass that already pulled in their correlated cluster, so expanding from
    // their (most probable) value would only drag unrelated groups into the
    // relaxed result and break the "cleaned tuples need no extra checks"
    // property of §4.1.
    let mut lhs_values: HashSet<Value> = HashSet::new();
    let mut rhs_values: HashSet<Value> = HashSet::new();
    for tuple in answer {
        if lhs_is_determinate(index, tuple) {
            lhs_values.insert(index.lhs_key(tuple)?);
        }
        if rhs_is_determinate(index, tuple) {
            rhs_values.insert(index.rhs_value(tuple)?);
        }
    }
    let answer_ids: HashSet<TupleId> = answer.iter().map(|t| t.id).collect();

    let mut outcome = RelaxationOutcome::default();
    // `unvisited` holds indices into `unvisited_pool` still to be considered.
    let mut unvisited: Vec<usize> = (0..unvisited_pool.len())
        .filter(|&i| !answer_ids.contains(&unvisited_pool[i].id))
        .collect();

    let iteration_budget = match filter_on {
        FilterTarget::Rhs => 1,
        FilterTarget::Lhs | FilterTarget::Other => max_iterations.max(1),
    };

    for _ in 0..iteration_budget {
        if unvisited.is_empty() {
            break;
        }
        outcome.iterations += 1;
        let mut next_unvisited = Vec::with_capacity(unvisited.len());
        let mut added: Vec<usize> = Vec::new();
        for &pos in &unvisited {
            outcome.scanned += 1;
            let tuple = &unvisited_pool[pos];
            let lhs = index.lhs_key(tuple)?;
            let rhs = index.rhs_value(tuple)?;
            if lhs_values.contains(&lhs) || rhs_values.contains(&rhs) {
                added.push(pos);
            } else {
                next_unvisited.push(pos);
            }
        }
        if added.is_empty() {
            break;
        }
        for &pos in &added {
            let tuple = &unvisited_pool[pos];
            if lhs_is_determinate(index, tuple) {
                lhs_values.insert(index.lhs_key(tuple)?);
            }
            if rhs_is_determinate(index, tuple) {
                rhs_values.insert(index.rhs_value(tuple)?);
            }
            outcome.extra.push(tuple.clone());
        }
        unvisited = next_unvisited;
    }
    Ok(outcome)
}

/// `true` when every lhs cell of the tuple is determinate.
fn lhs_is_determinate(index: &FdIndex, tuple: &Tuple) -> bool {
    index.lhs_columns.iter().all(|&c| {
        tuple
            .cell(c)
            .map(|cell| !cell.is_probabilistic())
            .unwrap_or(false)
    })
}

/// `true` when the rhs cell of the tuple is determinate.
fn rhs_is_determinate(index: &FdIndex, tuple: &Tuple) -> bool {
    tuple
        .cell(index.rhs_column)
        .map(|cell| !cell.is_probabilistic())
        .unwrap_or(false)
}

/// Lemma 2: the probability that a relaxed answer of size `relaxed_size`
/// still contains at least one violation, estimated with the hypergeometric
/// distribution over a dataset of `n` tuples of which `violations`
/// participate in violations:
///
/// `Pr(≥1) = 1 − C(n − #vio, |AR|) / C(n, |AR|)`.
///
/// The engine uses this to predict whether another relaxation iteration is
/// worthwhile.
pub fn probability_more_violations(n: usize, violations: usize, relaxed_size: usize) -> f64 {
    if n == 0 || violations == 0 || relaxed_size == 0 {
        return 0.0;
    }
    if relaxed_size >= n || violations >= n {
        return 1.0;
    }
    // Pr(0) = prod_{i=0}^{|AR|-1} (n - vio - i) / (n - i), computed in log
    // space for numerical stability with large datasets.
    let mut log_pr0 = 0.0f64;
    for i in 0..relaxed_size {
        let numer = n as f64 - violations as f64 - i as f64;
        let denom = n as f64 - i as f64;
        if numer <= 0.0 {
            return 1.0;
        }
        log_pr0 += numer.ln() - denom.ln();
    }
    1.0 - log_pr0.exp()
}

/// Lemma 3: an upper bound on the relaxed-result size.
///
/// For each constrained attribute, the bound adds the dataset frequency of
/// every distinct value appearing in the answer minus the frequency already
/// present in the answer: `R = Σ_i (Σ_j D_ij − Σ_j Dq_ij)`.
pub fn relaxed_size_upper_bound(
    dataset_stats: &[&ColumnStatistics],
    answer_values_per_attr: &[Vec<Value>],
) -> usize {
    let mut bound = 0usize;
    for (stats, answer_values) in dataset_stats.iter().zip(answer_values_per_attr) {
        let mut distinct: Vec<&Value> = answer_values.iter().collect();
        distinct.sort();
        distinct.dedup();
        let dataset_freq: usize = distinct.iter().map(|v| stats.frequency(v)).sum();
        bound += dataset_freq.saturating_sub(answer_values.len());
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};
    use daisy_expr::FunctionalDependency;
    use daisy_storage::{Table, TableStatistics};

    fn cities() -> Table {
        Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap()
    }

    fn index(table: &Table) -> FdIndex {
        FdIndex::build(table, &FunctionalDependency::new(&["zip"], "city")).unwrap()
    }

    #[test]
    fn rhs_filter_uses_single_iteration_like_example_2() {
        // Query: zip of "Los Angeles" → answer is tuples 0 and 2.
        let table = cities();
        let idx = index(&table);
        let answer: Vec<Tuple> = table
            .tuples()
            .iter()
            .filter(|t| t.value(1).unwrap() == Value::from("Los Angeles"))
            .cloned()
            .collect();
        let out = relax_fd(&idx, &answer, table.tuples(), FilterTarget::Rhs, 16).unwrap();
        // Only the (9001, San Francisco) tuple is added (same lhs).
        assert_eq!(out.extra.len(), 1);
        assert_eq!(out.extra[0].id, TupleId::new(1));
        assert_eq!(out.iterations, 1);
        assert!(out.scanned <= 3);
    }

    #[test]
    fn lhs_filter_transitively_closes_like_example_3() {
        // Query: city with zip 9001 → answer is tuples 0, 1, 2.
        let table = cities();
        let idx = index(&table);
        let answer: Vec<Tuple> = table
            .tuples()
            .iter()
            .filter(|t| t.value(0).unwrap() == Value::Int(9001))
            .cloned()
            .collect();
        let out = relax_fd(&idx, &answer, table.tuples(), FilterTarget::Lhs, 16).unwrap();
        // (10001, San Francisco) joins via the shared rhs, then
        // (10001, New York) joins via the shared lhs 10001.
        let ids: Vec<TupleId> = out.extra.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![TupleId::new(3), TupleId::new(4)]);
        assert_eq!(out.iterations, 2);
    }

    #[test]
    fn clean_answer_adds_nothing() {
        let table = cities();
        let idx = index(&table);
        let answer: Vec<Tuple> = table
            .tuples()
            .iter()
            .filter(|t| t.value(1).unwrap() == Value::from("New York"))
            .cloned()
            .collect();
        // New York shares its lhs (10001) with the San Francisco tuple, so
        // relaxation pulls that in, and then stops: everything correlated is
        // covered in two iterations.
        let out = relax_fd(&idx, &answer, table.tuples(), FilterTarget::Lhs, 16).unwrap();
        assert!(out.iterations <= 3);
        // Relaxing an empty answer does nothing at all.
        let empty = relax_fd(&idx, &[], table.tuples(), FilterTarget::Lhs, 16).unwrap();
        assert!(empty.extra.is_empty());
    }

    #[test]
    fn max_iterations_bounds_the_closure() {
        let table = cities();
        let idx = index(&table);
        let answer: Vec<Tuple> = table.tuples()[..1].to_vec();
        let bounded = relax_fd(&idx, &answer, table.tuples(), FilterTarget::Lhs, 1).unwrap();
        assert!(bounded.iterations <= 1);
    }

    #[test]
    fn hypergeometric_probability_behaviour() {
        // No violations → probability 0.
        assert_eq!(probability_more_violations(1000, 0, 100), 0.0);
        // Sampling everything → probability 1 when any violation exists.
        assert_eq!(probability_more_violations(1000, 5, 1000), 1.0);
        // Monotone in the sample size.
        let p_small = probability_more_violations(1000, 50, 10);
        let p_large = probability_more_violations(1000, 50, 200);
        assert!(p_small < p_large);
        assert!(p_small > 0.0 && p_large < 1.0);
        // Degenerate inputs.
        assert_eq!(probability_more_violations(0, 0, 0), 0.0);
    }

    #[test]
    fn hypergeometric_probability_boundary_inputs() {
        // Zero violations: drawing any sample can never hit one.
        assert_eq!(probability_more_violations(100, 0, 1), 0.0);
        assert_eq!(probability_more_violations(100, 0, 100), 0.0);
        // Every tuple violates: any non-empty sample hits one.
        assert_eq!(probability_more_violations(100, 100, 1), 1.0);
        // More reported violations than tuples (degenerate caller input)
        // clamps to certainty rather than under- or overflowing.
        assert_eq!(probability_more_violations(100, 250, 1), 1.0);
        // An empty relaxed result cannot contain a violation.
        assert_eq!(probability_more_violations(100, 50, 0), 0.0);
        // Sampling the whole dataset (or more) is certain to include one.
        assert_eq!(probability_more_violations(10, 1, 10), 1.0);
        assert_eq!(probability_more_violations(10, 1, 25), 1.0);
        // An empty dataset has nothing to violate.
        assert_eq!(probability_more_violations(0, 0, 0), 0.0);
        assert_eq!(probability_more_violations(0, 5, 5), 0.0);
        // A single-tuple sample of a half-dirty dataset: exactly 1/2.
        let p = probability_more_violations(2, 1, 1);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relaxed_size_bound_boundary_inputs() {
        // No constrained attributes → nothing can be pulled in.
        assert_eq!(relaxed_size_upper_bound(&[], &[]), 0);

        let table = cities();
        let stats = TableStatistics::compute(&table).unwrap();
        let zip_stats = stats.column("zip").unwrap();

        // Empty answer: no values to correlate on, bound is zero.
        assert_eq!(relaxed_size_upper_bound(&[zip_stats], &[vec![]]), 0);

        // The answer already contains every tuple of its group: the
        // subtraction saturates at zero instead of wrapping.
        let answer = vec![Value::Int(9001), Value::Int(9001), Value::Int(9001)];
        assert_eq!(relaxed_size_upper_bound(&[zip_stats], &[answer]), 0);

        // An answer value absent from the dataset contributes zero
        // frequency, and the (over-counted) answer occurrences saturate.
        let answer = vec![Value::Int(424242)];
        assert_eq!(relaxed_size_upper_bound(&[zip_stats], &[answer]), 0);
    }

    #[test]
    fn relaxed_size_bound_matches_lemma3_shape() {
        let table = cities();
        let stats = TableStatistics::compute(&table).unwrap();
        let zip_stats = stats.column("zip").unwrap();
        let city_stats = stats.column("city").unwrap();
        // Answer = the two Los Angeles tuples (zip 9001).
        let answer_zip = vec![Value::Int(9001), Value::Int(9001)];
        let answer_city = vec![Value::from("Los Angeles"), Value::from("Los Angeles")];
        let bound = relaxed_size_upper_bound(&[zip_stats, city_stats], &[answer_zip, answer_city]);
        // zip 9001 appears 3 times (1 extra), Los Angeles appears 2 times
        // (0 extra) → bound 1, matching the single extra tuple of Example 2.
        assert_eq!(bound, 1);
    }
}
