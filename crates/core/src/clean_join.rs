//! The `clean⋈` operator (§4.4).
//!
//! A join result over dirty relations is cleaned by (a) extracting the
//! qualifying part of each joined relation through the result's lineage,
//! (b) cleaning each part and updating each relation separately, and then
//! (c) updating the join result.  Lemma 5 shows the updated join needs no
//! extra violation checks: the extra tuples produced by relaxing one side
//! can only match tuples already covered on the other side.
//!
//! The engine uses [`qualifying_part`] to implement step (a) and
//! [`incremental_join`] to implement step (c) without recomputing pairs that
//! cannot have changed; `tests` verify that the incremental update equals a
//! full recomputation (the Lemma 5 property).

use std::collections::HashSet;

use daisy_common::{Result, Schema, TupleId};
use daisy_exec::ExecContext;
use daisy_query::physical::{hash_join, JoinOutput};
use daisy_storage::Tuple;

/// Extracts the qualifying part of one joined relation from a join result's
/// lineage: the base tuples (of side `side`, 0 = left, 1 = right, …) that
/// participate in at least one output pair.
pub fn qualifying_part(join_result: &[Tuple], side: usize, base_tuples: &[Tuple]) -> Vec<Tuple> {
    let wanted: HashSet<TupleId> = join_result
        .iter()
        .filter_map(|t| t.lineage.get(side).copied())
        .collect();
    base_tuples
        .iter()
        .filter(|t| wanted.contains(&t.id))
        .cloned()
        .collect()
}

/// Incrementally updates a join after cleaning added or changed tuples on
/// both sides.
///
/// * `prior` — the pairs computed before cleaning (still valid: cleaning
///   only widens candidate sets, it never removes the original value from a
///   cell, so previously matching pairs keep matching),
/// * `left_changed` / `right_changed` — the left/right tuples that gained
///   candidates or were added by relaxation,
/// * `left_all` / `right_all` — the full (cleaned) sides.
///
/// The result is `prior ∪ (left_changed ⋈ right_all) ∪ (left_all ⋈
/// right_changed)`, de-duplicated by lineage, with fresh sequential ids.
#[allow(clippy::too_many_arguments)]
pub fn incremental_join(
    ctx: &ExecContext,
    left_schema: &Schema,
    right_schema: &Schema,
    prior: &JoinOutput,
    left_changed: &[Tuple],
    right_changed: &[Tuple],
    left_all: &[Tuple],
    right_all: &[Tuple],
    left_key: &str,
    right_key: &str,
) -> Result<JoinOutput> {
    let from_new_left = hash_join(
        ctx,
        left_schema,
        left_changed,
        right_schema,
        right_all,
        left_key,
        right_key,
    )?;
    let from_new_right = hash_join(
        ctx,
        left_schema,
        left_all,
        right_schema,
        right_changed,
        left_key,
        right_key,
    )?;

    let mut seen: HashSet<Vec<TupleId>> = HashSet::new();
    let mut tuples: Vec<Tuple> = Vec::new();
    for source in [&prior.tuples, &from_new_left.tuples, &from_new_right.tuples] {
        for tuple in source.iter() {
            if seen.insert(tuple.lineage.clone()) {
                let mut t = tuple.clone();
                t.id = TupleId::new(tuples.len() as u64);
                tuples.push(t);
            }
        }
    }
    let matched: HashSet<TupleId> = tuples
        .iter()
        .filter_map(|t| t.lineage.first().copied())
        .collect();
    Ok(JoinOutput {
        schema: prior.schema.clone(),
        tuples,
        matched_left: matched.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Value};
    use daisy_storage::{Candidate, Cell};

    fn left_schema() -> Schema {
        Schema::from_pairs(&[("l.zip", DataType::Int), ("l.city", DataType::Str)]).unwrap()
    }

    fn right_schema() -> Schema {
        Schema::from_pairs(&[("r.zip", DataType::Int), ("r.name", DataType::Str)]).unwrap()
    }

    fn left() -> Vec<Tuple> {
        vec![
            Tuple::from_values(TupleId::new(0), vec![Value::Int(9001), Value::from("LA")]),
            Tuple::from_values(TupleId::new(1), vec![Value::Int(9001), Value::from("SF")]),
        ]
    }

    fn right() -> Vec<Tuple> {
        vec![
            Tuple::from_values(
                TupleId::new(0),
                vec![Value::Int(9001), Value::from("Peter")],
            ),
            Tuple::from_values(
                TupleId::new(1),
                vec![Value::Int(10001), Value::from("Mary")],
            ),
        ]
    }

    #[test]
    fn qualifying_part_follows_lineage() {
        let ctx = ExecContext::sequential();
        let join = hash_join(
            &ctx,
            &left_schema(),
            &left(),
            &right_schema(),
            &right(),
            "l.zip",
            "r.zip",
        )
        .unwrap();
        assert_eq!(join.tuples.len(), 2);
        let right_part = qualifying_part(&join.tuples, 1, &right());
        assert_eq!(right_part.len(), 1);
        assert_eq!(right_part[0].id, TupleId::new(0));
        let left_part = qualifying_part(&join.tuples, 0, &left());
        assert_eq!(left_part.len(), 2);
    }

    #[test]
    fn incremental_join_equals_full_recomputation_lemma_5() {
        // Mirrors Table 4 of the paper: after cleaning, the left tuple with
        // zip {9001, 10001} matches Mary as well; the incremental update and
        // a full re-join must agree.
        let ctx = ExecContext::sequential();
        let dirty_left = left();
        let prior = hash_join(
            &ctx,
            &left_schema(),
            &dirty_left,
            &right_schema(),
            &right(),
            "l.zip",
            "r.zip",
        )
        .unwrap();

        // Cleaning turns the second left tuple's zip probabilistic.
        let mut cleaned_left = dirty_left.clone();
        cleaned_left[1].cells[0] = Cell::probabilistic(vec![
            Candidate::exact(Value::Int(9001), 0.5),
            Candidate::exact(Value::Int(10001), 0.5),
        ]);
        let changed = vec![cleaned_left[1].clone()];

        let incremental = incremental_join(
            &ctx,
            &left_schema(),
            &right_schema(),
            &prior,
            &changed,
            &[],
            &cleaned_left,
            &right(),
            "l.zip",
            "r.zip",
        )
        .unwrap();
        let full = hash_join(
            &ctx,
            &left_schema(),
            &cleaned_left,
            &right_schema(),
            &right(),
            "l.zip",
            "r.zip",
        )
        .unwrap();
        let lineages = |o: &JoinOutput| -> HashSet<Vec<TupleId>> {
            o.tuples.iter().map(|t| t.lineage.clone()).collect()
        };
        assert_eq!(lineages(&incremental), lineages(&full));
        assert_eq!(incremental.tuples.len(), 3);
    }

    #[test]
    fn incremental_join_with_new_right_tuples() {
        let ctx = ExecContext::sequential();
        let prior = hash_join(
            &ctx,
            &left_schema(),
            &left(),
            &right_schema(),
            &right(),
            "l.zip",
            "r.zip",
        )
        .unwrap();
        // A relaxation extra appears on the right side with a matching key.
        let extra = vec![Tuple::from_values(
            TupleId::new(7),
            vec![Value::Int(9001), Value::from("Jane")],
        )];
        let mut right_all = right();
        right_all.extend(extra.clone());
        let updated = incremental_join(
            &ctx,
            &left_schema(),
            &right_schema(),
            &prior,
            &[],
            &extra,
            &left(),
            &right_all,
            "l.zip",
            "r.zip",
        )
        .unwrap();
        assert_eq!(updated.tuples.len(), prior.tuples.len() + 2);
    }
}
