//! A small DPLL SAT solver.
//!
//! For denial constraints with more than two atoms, Daisy "maps the dirty
//! formula involving the conditions of the conflicting tuples to a SAT
//! formula, where a subset of atoms must become false (invert their
//! condition) in order to satisfy the formula.  Then, a SAT solver can
//! decide on which atoms must remain true or need to invert their
//! conditions" (§4.2).
//!
//! The formulas involved are tiny (one variable per DC atom, a handful of
//! clauses), so a straightforward DPLL procedure with unit propagation is
//! more than sufficient.  Variables are 0-based indices; a [`Literal`] is a
//! variable plus a polarity.

use serde::{Deserialize, Serialize};

/// A literal: a propositional variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Self {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    fn satisfied_by(self, assignment: &[Option<bool>]) -> Option<bool> {
        assignment[self.var].map(|v| v == self.positive)
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Literal>;

/// A DPLL SAT solver over CNF formulas.
#[derive(Debug, Clone, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    num_vars: usize,
}

impl SatSolver {
    /// Creates a solver for `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        SatSolver {
            clauses: Vec::new(),
            num_vars,
        }
    }

    /// Adds a clause (a disjunction of literals).  An empty clause makes the
    /// formula trivially unsatisfiable.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in &clause {
            assert!(
                lit.var < self.num_vars,
                "literal references variable {} out of {}",
                lit.var,
                self.num_vars
            );
        }
        self.clauses.push(clause);
    }

    /// Number of clauses added so far.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Finds a satisfying assignment, or `None` if the formula is
    /// unsatisfiable.  The returned vector has one boolean per variable.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            Some(
                assignment
                    .into_iter()
                    // Unconstrained variables default to true ("keep the atom").
                    .map(|v| v.unwrap_or(true))
                    .collect(),
            )
        } else {
            None
        }
    }

    /// Finds a satisfying assignment that minimises the number of variables
    /// set to `false`.
    ///
    /// In the repair encoding, variable `i` being `false` means "invert atom
    /// `i`" i.e. change a cell; minimising falses yields a minimal repair in
    /// the spirit of cardinality-minimal cleaning.  The formulas are tiny so
    /// an exhaustive search over the number of flips is affordable.
    pub fn solve_minimal_false(&self) -> Option<Vec<bool>> {
        // Try assignments with k falses for increasing k.
        for k in 0..=self.num_vars {
            if let Some(solution) = self.solve_with_exact_false(k) {
                return Some(solution);
            }
        }
        None
    }

    fn solve_with_exact_false(&self, k: usize) -> Option<Vec<bool>> {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        self.search_false_subsets(0, k, &mut chosen)
    }

    fn search_false_subsets(
        &self,
        start: usize,
        remaining: usize,
        chosen: &mut Vec<usize>,
    ) -> Option<Vec<bool>> {
        if remaining == 0 {
            let assignment: Vec<bool> = (0..self.num_vars).map(|v| !chosen.contains(&v)).collect();
            if self.is_satisfied(&assignment) {
                return Some(assignment);
            }
            return None;
        }
        for v in start..self.num_vars {
            chosen.push(v);
            if let Some(sol) = self.search_false_subsets(v + 1, remaining - 1, chosen) {
                chosen.pop();
                return Some(sol);
            }
            chosen.pop();
        }
        None
    }

    /// Checks a complete assignment against all clauses.
    pub fn is_satisfied(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment.get(lit.var).copied() == Some(lit.positive))
        })
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation.
        loop {
            let mut propagated = false;
            for clause in &self.clauses {
                let mut unassigned: Option<Literal> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for lit in clause {
                    match lit.satisfied_by(assignment) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(*lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => return false, // conflict
                    1 => {
                        let lit = unassigned.expect("one unassigned literal");
                        assignment[lit.var] = Some(lit.positive);
                        propagated = true;
                    }
                    _ => {}
                }
            }
            if !propagated {
                break;
            }
        }
        // Pick a branching variable.
        let next = match assignment.iter().position(Option::is_none) {
            Some(v) => v,
            None => return self.all_clauses_satisfied(assignment),
        };
        for value in [true, false] {
            let mut trial = assignment.clone();
            trial[next] = Some(value);
            if self.dpll(&mut trial) {
                *assignment = trial;
                return true;
            }
        }
        false
    }

    fn all_clauses_satisfied(&self, assignment: &[Option<bool>]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| lit.satisfied_by(assignment) == Some(true))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfiable_formula_yields_model() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2)
        let mut solver = SatSolver::new(3);
        solver.add_clause(vec![Literal::pos(0), Literal::pos(1)]);
        solver.add_clause(vec![Literal::neg(0), Literal::pos(1)]);
        solver.add_clause(vec![Literal::neg(1), Literal::pos(2)]);
        let model = solver.solve().expect("satisfiable");
        assert!(solver.is_satisfied(&model));
        assert!(model[1] && model[2]);
    }

    #[test]
    fn unsatisfiable_formula_detected() {
        // x0 ∧ ¬x0
        let mut solver = SatSolver::new(1);
        solver.add_clause(vec![Literal::pos(0)]);
        solver.add_clause(vec![Literal::neg(0)]);
        assert!(solver.solve().is_none());
        assert!(solver.solve_minimal_false().is_none());
    }

    #[test]
    fn empty_clause_is_unsatisfiable() {
        let mut solver = SatSolver::new(2);
        solver.add_clause(vec![]);
        assert!(solver.solve().is_none());
    }

    #[test]
    fn repair_encoding_minimises_inverted_atoms() {
        // Denial constraint with 3 atoms that all currently hold: the repair
        // must invert at least one atom.  Encode "not all atoms stay true"
        // as the clause (¬x0 ∨ ¬x1 ∨ ¬x2).
        let mut solver = SatSolver::new(3);
        solver.add_clause(vec![Literal::neg(0), Literal::neg(1), Literal::neg(2)]);
        let model = solver.solve_minimal_false().expect("satisfiable");
        let flips = model.iter().filter(|b| !**b).count();
        assert_eq!(flips, 1, "a single inverted atom suffices");
        assert!(solver.is_satisfied(&model));
    }

    #[test]
    fn minimal_false_respects_hard_constraints() {
        // Atom 0 must stay true (e.g. the user trusts that cell), so the
        // repair must invert one of the other two atoms.
        let mut solver = SatSolver::new(3);
        solver.add_clause(vec![Literal::neg(0), Literal::neg(1), Literal::neg(2)]);
        solver.add_clause(vec![Literal::pos(0)]);
        let model = solver.solve_minimal_false().expect("satisfiable");
        assert!(model[0]);
        assert_eq!(model.iter().filter(|b| !**b).count(), 1);
    }

    #[test]
    fn unconstrained_variables_default_to_true() {
        let solver = SatSolver::new(3);
        let model = solver.solve().unwrap();
        assert_eq!(model, vec![true, true, true]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_literal_panics() {
        let mut solver = SatSolver::new(1);
        solver.add_clause(vec![Literal::pos(3)]);
    }
}
