//! Filter expressions over single tuples.
//!
//! These expressions implement the WHERE clause of the paper's query
//! template (`<col><op><val>` combined with AND/OR).  Evaluation has two
//! modes:
//!
//! * [`BoolExpr::eval_expected`] — evaluates over the expected
//!   (most-probable) value of each cell; this is what a query over the
//!   *dirty* data sees before cleaning.
//! * [`BoolExpr::eval_possible`] — the probabilistic semantics of §4: the
//!   tuple qualifies if at least one candidate value of each referenced cell
//!   could satisfy the predicate.  Daisy uses this after cleaning so that
//!   tuples whose candidate fixes may fall in the query range are retained
//!   (e.g. Table 3's `{9001 50%, 10001 50%}` tuple qualifies `zip = 9001`).

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use daisy_common::{DaisyError, Result, Schema, Value};
use daisy_storage::Tuple;

use crate::operators::ComparisonOp;

/// A scalar expression: a column reference or a literal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarExpr {
    /// A column referenced by name.
    Column(String),
    /// A constant.
    Literal(Value),
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(name: impl Into<String>) -> Self {
        ScalarExpr::Column(name.into())
    }

    /// Shorthand for a literal.
    pub fn lit(value: impl Into<Value>) -> Self {
        ScalarExpr::Literal(value.into())
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
        }
    }
}

/// A boolean filter expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoolExpr {
    /// `column op literal` (or `column op column`).
    Compare {
        /// Left operand.
        left: ScalarExpr,
        /// Comparison operator.
        op: ComparisonOp,
        /// Right operand.
        right: ScalarExpr,
    },
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Always true (used for queries without a WHERE clause).
    True,
}

impl BoolExpr {
    /// Builds `column op literal`.
    pub fn cmp(column: impl Into<String>, op: ComparisonOp, value: impl Into<Value>) -> Self {
        BoolExpr::Compare {
            left: ScalarExpr::Column(column.into()),
            op,
            right: ScalarExpr::Literal(value.into()),
        }
    }

    /// Builds `column = literal`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        BoolExpr::cmp(column, ComparisonOp::Eq, value)
    }

    /// Builds `low <= column AND column <= high`.
    pub fn between(
        column: impl Into<String> + Clone,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Self {
        BoolExpr::And(
            Box::new(BoolExpr::cmp(column.clone(), ComparisonOp::Ge, low)),
            Box::new(BoolExpr::cmp(column, ComparisonOp::Le, high)),
        )
    }

    /// Conjunction helper.
    pub fn and(self, other: BoolExpr) -> Self {
        BoolExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: BoolExpr) -> Self {
        BoolExpr::Or(Box::new(self), Box::new(other))
    }

    /// The set of column names referenced by the expression.
    pub fn columns(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut HashSet<String>) {
        match self {
            BoolExpr::Compare { left, right, .. } => {
                if let ScalarExpr::Column(c) = left {
                    out.insert(c.clone());
                }
                if let ScalarExpr::Column(c) = right {
                    out.insert(c.clone());
                }
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            BoolExpr::Not(e) => e.collect_columns(out),
            BoolExpr::True => {}
        }
    }

    /// Evaluates over the expected (most probable) value of each cell.
    pub fn eval_expected(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        match self {
            BoolExpr::True => Ok(true),
            BoolExpr::Not(e) => Ok(!e.eval_expected(schema, tuple)?),
            BoolExpr::And(a, b) => {
                Ok(a.eval_expected(schema, tuple)? && b.eval_expected(schema, tuple)?)
            }
            BoolExpr::Or(a, b) => {
                Ok(a.eval_expected(schema, tuple)? || b.eval_expected(schema, tuple)?)
            }
            BoolExpr::Compare { left, op, right } => {
                let l = resolve_expected(left, schema, tuple)?;
                let r = resolve_expected(right, schema, tuple)?;
                Ok(op.eval(&l, &r))
            }
        }
    }

    /// Evaluates with possible-world semantics (§4): the tuple qualifies iff
    /// there is an assignment of one candidate value per referenced
    /// probabilistic cell under which the whole predicate is true.
    ///
    /// For exact (point) candidates the possible worlds of the referenced
    /// cells are enumerated (their number is bounded by `MAX_WORLDS`); this
    /// makes conjunctions over the same cell sound — `{3, 17}` does *not*
    /// satisfy `x >= 5 AND x <= 10` even though each conjunct is satisfied by
    /// some candidate.  When a referenced cell carries range candidates (the
    /// holistic fixes of general DCs) or the world count explodes, evaluation
    /// falls back to the optimistic per-comparison check, which
    /// over-approximates but never loses qualifying tuples.
    pub fn eval_possible(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        /// Bound on the number of enumerated candidate combinations.
        const MAX_WORLDS: usize = 4096;

        // Referenced columns whose cell is probabilistic, deduplicated by
        // ordinal (qualified and unqualified names may resolve to the same
        // cell).
        let mut probabilistic: Vec<(usize, Vec<Value>)> = Vec::new();
        let mut only_exact_candidates = true;
        for name in self.columns() {
            let idx = schema.index_of(&name)?;
            if probabilistic.iter().any(|(i, _)| *i == idx) {
                continue;
            }
            let cell = tuple.cell(idx)?;
            if cell.is_probabilistic() {
                let exact: Vec<Value> = cell
                    .candidates()
                    .iter()
                    .filter_map(|c| c.value.as_exact().cloned())
                    .collect();
                if exact.len() != cell.candidate_count() {
                    only_exact_candidates = false;
                }
                probabilistic.push((idx, exact));
            }
        }
        if probabilistic.is_empty() {
            return self.eval_expected(schema, tuple);
        }
        let worlds: usize = probabilistic
            .iter()
            .map(|(_, values)| values.len().max(1))
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX);
        if !only_exact_candidates || worlds > MAX_WORLDS {
            return self.eval_possible_optimistic(schema, tuple);
        }
        let mut assignment: HashMap<usize, Value> = HashMap::new();
        self.any_world_satisfies(schema, tuple, &probabilistic, &mut assignment)
    }

    /// Recursively enumerates one candidate per probabilistic column and
    /// checks whether any combination satisfies the predicate.
    fn any_world_satisfies(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        remaining: &[(usize, Vec<Value>)],
        assignment: &mut HashMap<usize, Value>,
    ) -> Result<bool> {
        let Some(((column, values), rest)) = remaining.split_first() else {
            return self.eval_assigned(schema, tuple, assignment);
        };
        for value in values {
            assignment.insert(*column, value.clone());
            if self.any_world_satisfies(schema, tuple, rest, assignment)? {
                assignment.remove(column);
                return Ok(true);
            }
        }
        assignment.remove(column);
        Ok(false)
    }

    /// Evaluates the expression with probabilistic cells pinned to the values
    /// chosen in `assignment` (one possible world).
    fn eval_assigned(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        assignment: &HashMap<usize, Value>,
    ) -> Result<bool> {
        match self {
            BoolExpr::True => Ok(true),
            BoolExpr::Not(e) => Ok(!e.eval_assigned(schema, tuple, assignment)?),
            BoolExpr::And(a, b) => Ok(a.eval_assigned(schema, tuple, assignment)?
                && b.eval_assigned(schema, tuple, assignment)?),
            BoolExpr::Or(a, b) => Ok(a.eval_assigned(schema, tuple, assignment)?
                || b.eval_assigned(schema, tuple, assignment)?),
            BoolExpr::Compare { left, op, right } => {
                let l = resolve_assigned(left, schema, tuple, assignment)?;
                let r = resolve_assigned(right, schema, tuple, assignment)?;
                Ok(op.eval(&l, &r))
            }
        }
    }

    /// The optimistic per-comparison evaluation: each comparison holds if
    /// *some* candidate value of its referenced cell could satisfy it.
    fn eval_possible_optimistic(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        match self {
            BoolExpr::True => Ok(true),
            BoolExpr::Not(e) => Ok(!e.eval_possible_optimistic(schema, tuple)?),
            BoolExpr::And(a, b) => Ok(a.eval_possible_optimistic(schema, tuple)?
                && b.eval_possible_optimistic(schema, tuple)?),
            BoolExpr::Or(a, b) => Ok(a.eval_possible_optimistic(schema, tuple)?
                || b.eval_possible_optimistic(schema, tuple)?),
            BoolExpr::Compare { left, op, right } => match (left, right) {
                (ScalarExpr::Column(col), ScalarExpr::Literal(lit)) => {
                    let idx = schema.index_of(col)?;
                    let cell = tuple.cell(idx)?;
                    Ok(cell_possibly_satisfies(cell, *op, lit))
                }
                (ScalarExpr::Literal(lit), ScalarExpr::Column(col)) => {
                    let idx = schema.index_of(col)?;
                    let cell = tuple.cell(idx)?;
                    Ok(cell_possibly_satisfies(cell, op.flip(), lit))
                }
                _ => {
                    // column-to-column or literal-to-literal comparisons fall
                    // back to expected values.
                    let l = resolve_expected(left, schema, tuple)?;
                    let r = resolve_expected(right, schema, tuple)?;
                    Ok(op.eval(&l, &r))
                }
            },
        }
    }

    /// Extracts, when the expression is a simple range over `column`
    /// (conjunctions of comparisons against literals), the implied closed
    /// interval `[low, high]`.  Returns `None` when the expression does not
    /// constrain the column or is not a pure conjunction.
    ///
    /// Used by the theta-join partial-matrix construction (§4.2) to know
    /// which value range a query touches.
    pub fn range_of(&self, column: &str) -> Option<(Option<Value>, Option<Value>)> {
        match self {
            BoolExpr::Compare {
                left: ScalarExpr::Column(c),
                op,
                right: ScalarExpr::Literal(v),
            } if column_matches(c, column) => match op {
                ComparisonOp::Eq => Some((Some(v.clone()), Some(v.clone()))),
                ComparisonOp::Ge => Some((Some(v.clone()), None)),
                ComparisonOp::Gt => Some((Some(v.clone()), None)),
                ComparisonOp::Le => Some((None, Some(v.clone()))),
                ComparisonOp::Lt => Some((None, Some(v.clone()))),
                ComparisonOp::Neq => None,
            },
            BoolExpr::Compare {
                left: ScalarExpr::Literal(v),
                op,
                right: ScalarExpr::Column(c),
            } if column_matches(c, column) => BoolExpr::Compare {
                left: ScalarExpr::Column(c.clone()),
                op: op.flip(),
                right: ScalarExpr::Literal(v.clone()),
            }
            .range_of(column),
            BoolExpr::And(a, b) => {
                let ra = a.range_of(column);
                let rb = b.range_of(column);
                match (ra, rb) {
                    (Some((lo_a, hi_a)), Some((lo_b, hi_b))) => Some((
                        merge_bound(lo_a, lo_b, true),
                        merge_bound(hi_a, hi_b, false),
                    )),
                    (Some(r), None) | (None, Some(r)) => Some(r),
                    (None, None) => None,
                }
            }
            _ => None,
        }
    }
}

fn column_matches(expr_col: &str, target: &str) -> bool {
    expr_col == target
        || expr_col.ends_with(&format!(".{target}"))
        || target.ends_with(&format!(".{expr_col}"))
}

fn merge_bound(a: Option<Value>, b: Option<Value>, is_lower: bool) -> Option<Value> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if is_lower {
            Value::max_of(x, y)
        } else {
            Value::min_of(x, y)
        }),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

fn resolve_assigned(
    expr: &ScalarExpr,
    schema: &Schema,
    tuple: &Tuple,
    assignment: &HashMap<usize, Value>,
) -> Result<Value> {
    match expr {
        ScalarExpr::Literal(v) => Ok(v.clone()),
        ScalarExpr::Column(name) => {
            let idx = schema.index_of(name)?;
            if let Some(v) = assignment.get(&idx) {
                return Ok(v.clone());
            }
            tuple
                .cell(idx)
                .map(|c| c.expected_value())
                .map_err(|_| DaisyError::Execution(format!("missing cell for column `{name}`")))
        }
    }
}

fn resolve_expected(expr: &ScalarExpr, schema: &Schema, tuple: &Tuple) -> Result<Value> {
    match expr {
        ScalarExpr::Literal(v) => Ok(v.clone()),
        ScalarExpr::Column(name) => {
            let idx = schema.index_of(name)?;
            tuple
                .cell(idx)
                .map(|c| c.expected_value())
                .map_err(|_| DaisyError::Execution(format!("missing cell for column `{name}`")))
        }
    }
}

/// `true` if some candidate value of `cell` could satisfy `op literal`.
fn cell_possibly_satisfies(cell: &daisy_storage::Cell, op: ComparisonOp, lit: &Value) -> bool {
    match cell {
        daisy_storage::Cell::Determinate(v) => op.eval(v, lit),
        daisy_storage::Cell::Probabilistic(cands) => cands
            .iter()
            .any(|c| candidate_possibly_satisfies(&c.value, op, lit)),
    }
}

/// `true` if the candidate value domain contains some value satisfying
/// `op literal`.  Range domains are treated as dense.
fn candidate_possibly_satisfies(
    domain: &daisy_storage::CandidateValue,
    op: ComparisonOp,
    lit: &Value,
) -> bool {
    use daisy_storage::CandidateValue as Cv;
    match domain {
        Cv::Exact(v) => op.eval(v, lit),
        Cv::LessThan(bound) => match op {
            ComparisonOp::Eq => lit < bound,
            ComparisonOp::Neq => true,
            ComparisonOp::Lt | ComparisonOp::Le => true,
            ComparisonOp::Gt | ComparisonOp::Ge => lit < bound,
        },
        Cv::GreaterThan(bound) => match op {
            ComparisonOp::Eq => lit > bound,
            ComparisonOp::Neq => true,
            ComparisonOp::Gt | ComparisonOp::Ge => true,
            ComparisonOp::Lt | ComparisonOp::Le => lit > bound,
        },
        Cv::Between(lo, hi) => match op {
            ComparisonOp::Eq => lit >= lo && lit <= hi,
            ComparisonOp::Neq => true,
            ComparisonOp::Lt => lo < lit,
            ComparisonOp::Le => lo <= lit,
            ComparisonOp::Gt => hi > lit,
            ComparisonOp::Ge => hi >= lit,
        },
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::True => write!(f, "TRUE"),
            BoolExpr::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            BoolExpr::And(a, b) => write!(f, "({a} AND {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            BoolExpr::Not(e) => write!(f, "NOT ({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, TupleId};
    use daisy_storage::{Candidate, Cell};

    fn schema() -> Schema {
        Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap()
    }

    fn clean_tuple() -> Tuple {
        Tuple::from_values(
            TupleId::new(0),
            vec![Value::Int(9001), Value::from("Los Angeles")],
        )
    }

    fn dirty_tuple() -> Tuple {
        // zip is probabilistic: {9001 50%, 10001 50%}
        Tuple::from_cells(
            TupleId::new(1),
            vec![
                Cell::probabilistic(vec![
                    Candidate::exact(Value::Int(9001), 0.5),
                    Candidate::exact(Value::Int(10001), 0.5),
                ]),
                Cell::Determinate(Value::from("San Francisco")),
            ],
        )
    }

    #[test]
    fn expected_evaluation_over_clean_tuple() {
        let s = schema();
        let t = clean_tuple();
        assert!(BoolExpr::eq("zip", 9001).eval_expected(&s, &t).unwrap());
        assert!(!BoolExpr::eq("zip", 10001).eval_expected(&s, &t).unwrap());
        assert!(BoolExpr::eq("city", "Los Angeles")
            .and(BoolExpr::cmp("zip", ComparisonOp::Lt, 10000))
            .eval_expected(&s, &t)
            .unwrap());
        assert!(BoolExpr::eq("city", "X")
            .or(BoolExpr::eq("zip", 9001))
            .eval_expected(&s, &t)
            .unwrap());
        assert!(BoolExpr::True.eval_expected(&s, &t).unwrap());
        assert!(!BoolExpr::Not(Box::new(BoolExpr::True))
            .eval_expected(&s, &t)
            .unwrap());
    }

    #[test]
    fn possible_evaluation_keeps_candidate_worlds() {
        // Table 3 of the paper: the {9001, 10001} tuple qualifies zip = 9001.
        let s = schema();
        let t = dirty_tuple();
        assert!(BoolExpr::eq("zip", 9001).eval_possible(&s, &t).unwrap());
        assert!(BoolExpr::eq("zip", 10001).eval_possible(&s, &t).unwrap());
        assert!(!BoolExpr::eq("zip", 10002).eval_possible(&s, &t).unwrap());
        // Under expected-value semantics only the most probable (first max)
        // candidate is visible.
        let visible = BoolExpr::eq("zip", 9001).eval_expected(&s, &t).unwrap()
            ^ BoolExpr::eq("zip", 10001).eval_expected(&s, &t).unwrap();
        assert!(
            visible,
            "exactly one world is visible to expected evaluation"
        );
    }

    #[test]
    fn possible_range_predicates_consider_all_candidates() {
        let s = schema();
        let t = dirty_tuple();
        assert!(BoolExpr::cmp("zip", ComparisonOp::Ge, 10000)
            .eval_possible(&s, &t)
            .unwrap());
        assert!(BoolExpr::cmp("zip", ComparisonOp::Lt, 9500)
            .eval_possible(&s, &t)
            .unwrap());
        assert!(!BoolExpr::cmp("zip", ComparisonOp::Gt, 20000)
            .eval_possible(&s, &t)
            .unwrap());
        assert!(BoolExpr::cmp("zip", ComparisonOp::Neq, 9001)
            .eval_possible(&s, &t)
            .unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let t = clean_tuple();
        assert!(BoolExpr::eq("state", "CA").eval_expected(&s, &t).is_err());
        assert!(BoolExpr::eq("state", "CA").eval_possible(&s, &t).is_err());
    }

    #[test]
    fn possible_conjunctions_over_one_cell_need_a_single_world() {
        // A zip cell {9001, 10001} must NOT satisfy 9500 <= zip <= 9900: no
        // single candidate lies in the range even though each bound is
        // individually satisfiable by some candidate.
        let s = schema();
        let t = dirty_tuple();
        assert!(!BoolExpr::between("zip", 9500, 9900)
            .eval_possible(&s, &t)
            .unwrap());
        assert!(BoolExpr::between("zip", 9000, 9500)
            .eval_possible(&s, &t)
            .unwrap());
        assert!(BoolExpr::between("zip", 10000, 11000)
            .eval_possible(&s, &t)
            .unwrap());
        // Disjunctions may mix worlds: zip = 9001 OR zip = 10001 holds.
        assert!(BoolExpr::eq("zip", 9001)
            .or(BoolExpr::eq("zip", 10001))
            .eval_possible(&s, &t)
            .unwrap());
        // A conjunction across two different cells picks one world per cell.
        assert!(BoolExpr::eq("zip", 10001)
            .and(BoolExpr::eq("city", "San Francisco"))
            .eval_possible(&s, &t)
            .unwrap());
    }

    #[test]
    fn possible_evaluation_falls_back_for_range_candidates() {
        // Range candidates (general-DC fixes) use the optimistic evaluation.
        let s = Schema::from_pairs(&[("salary", DataType::Int)]).unwrap();
        let t = Tuple::from_cells(
            TupleId::new(0),
            vec![Cell::probabilistic(vec![
                Candidate::range(
                    daisy_storage::CandidateValue::LessThan(Value::Int(2000)),
                    0.5,
                ),
                Candidate::exact(Value::Int(3000), 0.5),
            ])],
        );
        assert!(BoolExpr::between("salary", 1000, 1500)
            .eval_possible(&s, &t)
            .unwrap());
        assert!(!BoolExpr::cmp("salary", ComparisonOp::Gt, 5000)
            .eval_possible(&s, &t)
            .unwrap());
    }

    #[test]
    fn columns_are_collected() {
        let e = BoolExpr::eq("zip", 9001).and(BoolExpr::eq("city", "LA"));
        let cols = e.columns();
        assert!(cols.contains("zip") && cols.contains("city"));
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn range_extraction_from_conjunctions() {
        let e = BoolExpr::between("zip", 1000, 2000);
        assert_eq!(
            e.range_of("zip"),
            Some((Some(Value::Int(1000)), Some(Value::Int(2000))))
        );
        assert_eq!(e.range_of("city"), None);

        let eq = BoolExpr::eq("zip", 9001);
        assert_eq!(
            eq.range_of("zip"),
            Some((Some(Value::Int(9001)), Some(Value::Int(9001))))
        );

        // Intersection of two constraints on the same column.
        let narrow =
            BoolExpr::cmp("zip", ComparisonOp::Ge, 1500).and(BoolExpr::between("zip", 1000, 2000));
        assert_eq!(
            narrow.range_of("zip"),
            Some((Some(Value::Int(1500)), Some(Value::Int(2000))))
        );

        // Disjunctions do not yield a single range.
        let disj = BoolExpr::eq("zip", 1).or(BoolExpr::eq("zip", 2));
        assert_eq!(disj.range_of("zip"), None);
    }

    #[test]
    fn qualified_columns_match_in_range_extraction() {
        let e = BoolExpr::between("lineorder.orderkey", 10, 20);
        assert!(e.range_of("orderkey").is_some());
        let e2 = BoolExpr::between("orderkey", 10, 20);
        assert!(e2.range_of("lineorder.orderkey").is_some());
    }

    #[test]
    fn display_forms() {
        let e = BoolExpr::eq("city", "LA").and(BoolExpr::cmp("zip", ComparisonOp::Le, 99));
        assert_eq!(e.to_string(), "(city = 'LA' AND zip <= 99)");
    }
}
