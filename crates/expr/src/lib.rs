//! # daisy-expr
//!
//! The rule and expression layer of Daisy:
//!
//! * [`scalar::ScalarExpr`] / [`scalar::BoolExpr`] — filter expressions over
//!   single tuples with the paper's probabilistic semantics ("a tuple
//!   qualifies iff at least one candidate value qualifies", §4),
//! * [`constraint::DenialConstraint`] — universally quantified denial
//!   constraints `∀ t1,…,tk ¬(p1 ∧ … ∧ pm)` with arbitrary comparison
//!   predicates between tuple attributes,
//! * [`constraint::FunctionalDependency`] — the FD special case `X → Y`,
//!   with conversion to/from two-tuple DCs,
//! * [`violation::Violation`] — detected constraint violations,
//! * [`sat`] — a small DPLL SAT solver used to decide which subset of DC
//!   atoms must invert their condition to repair a multi-atom violation
//!   (§4.2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod columnar;
pub mod constraint;
pub mod operators;
pub mod sat;
pub mod scalar;
pub mod violation;

pub use columnar::{resolve_predicates, CodedPredicate, CodedScalarPredicate};
pub use constraint::{
    ConstraintSet, DcPredicate, DenialConstraint, FunctionalDependency, IndexPlan, Operand,
    PredicateKind,
};
pub use operators::ComparisonOp;
pub use sat::{Clause, Literal, SatSolver};
pub use scalar::{BoolExpr, ScalarExpr};
pub use violation::Violation;
