//! Comparison operators shared by query predicates and denial constraints.

use std::fmt;

use serde::{Deserialize, Serialize};

use daisy_common::Value;

/// A binary comparison operator (`=`, `≠`, `<`, `≤`, `>`, `≥`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComparisonOp {
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl ComparisonOp {
    /// Evaluates the operator over two values using the total value order.
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        self.eval_parts(left.is_null(), right.is_null(), || left.total_cmp(right))
    }

    /// The shared evaluation core of the row path and the columnar path:
    /// NULL handling from the operands' null flags, then the ordering (only
    /// computed when both operands are non-NULL).
    ///
    /// Comparisons against NULL are false, except `≠` which follows the
    /// "dirty data is still data" convention: NULL ≠ v holds when v is
    /// non-NULL so that FD violations involving a NULL rhs are detectable.
    /// Routing both read paths through this one function is what keeps
    /// their results byte-identical.
    pub fn eval_parts<F>(self, left_null: bool, right_null: bool, ord: F) -> bool
    where
        F: FnOnce() -> std::cmp::Ordering,
    {
        if left_null || right_null {
            return match self {
                ComparisonOp::Neq => left_null != right_null,
                ComparisonOp::Eq => left_null && right_null,
                _ => false,
            };
        }
        let ord = ord();
        match self {
            ComparisonOp::Eq => ord == std::cmp::Ordering::Equal,
            ComparisonOp::Neq => ord != std::cmp::Ordering::Equal,
            ComparisonOp::Lt => ord == std::cmp::Ordering::Less,
            ComparisonOp::Le => ord != std::cmp::Ordering::Greater,
            ComparisonOp::Gt => ord == std::cmp::Ordering::Greater,
            ComparisonOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }

    /// The negated operator: repairing a DC atom means making the atom
    /// false, i.e. enforcing the inverse condition (§4.2).
    pub fn negate(self) -> ComparisonOp {
        match self {
            ComparisonOp::Eq => ComparisonOp::Neq,
            ComparisonOp::Neq => ComparisonOp::Eq,
            ComparisonOp::Lt => ComparisonOp::Ge,
            ComparisonOp::Le => ComparisonOp::Gt,
            ComparisonOp::Gt => ComparisonOp::Le,
            ComparisonOp::Ge => ComparisonOp::Lt,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> ComparisonOp {
        match self {
            ComparisonOp::Lt => ComparisonOp::Gt,
            ComparisonOp::Le => ComparisonOp::Ge,
            ComparisonOp::Gt => ComparisonOp::Lt,
            ComparisonOp::Ge => ComparisonOp::Le,
            other => other,
        }
    }

    /// `true` for `<`, `≤`, `>`, `≥`.
    pub fn is_inequality(self) -> bool {
        !matches!(self, ComparisonOp::Eq | ComparisonOp::Neq)
    }

    /// Parses the textual form used in constraint definitions and queries.
    pub fn parse(text: &str) -> Option<ComparisonOp> {
        match text {
            "=" | "==" => Some(ComparisonOp::Eq),
            "!=" | "<>" | "≠" => Some(ComparisonOp::Neq),
            "<" => Some(ComparisonOp::Lt),
            "<=" | "≤" => Some(ComparisonOp::Le),
            ">" => Some(ComparisonOp::Gt),
            ">=" | "≥" => Some(ComparisonOp::Ge),
            _ => None,
        }
    }
}

impl fmt::Display for ComparisonOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComparisonOp::Eq => "=",
            ComparisonOp::Neq => "!=",
            ComparisonOp::Lt => "<",
            ComparisonOp::Le => "<=",
            ComparisonOp::Gt => ">",
            ComparisonOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_covers_all_operators() {
        let a = Value::Int(1);
        let b = Value::Int(2);
        assert!(ComparisonOp::Lt.eval(&a, &b));
        assert!(ComparisonOp::Le.eval(&a, &a));
        assert!(ComparisonOp::Gt.eval(&b, &a));
        assert!(ComparisonOp::Ge.eval(&b, &b));
        assert!(ComparisonOp::Eq.eval(&a, &a));
        assert!(ComparisonOp::Neq.eval(&a, &b));
        assert!(!ComparisonOp::Eq.eval(&a, &b));
    }

    #[test]
    fn null_comparisons() {
        assert!(!ComparisonOp::Lt.eval(&Value::Null, &Value::Int(1)));
        assert!(!ComparisonOp::Eq.eval(&Value::Null, &Value::Int(1)));
        assert!(ComparisonOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(ComparisonOp::Neq.eval(&Value::Null, &Value::Int(1)));
        assert!(!ComparisonOp::Neq.eval(&Value::Null, &Value::Null));
    }

    #[test]
    fn negate_is_logical_complement() {
        let vals = [Value::Int(1), Value::Int(2), Value::Int(2)];
        for op in [
            ComparisonOp::Eq,
            ComparisonOp::Neq,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ] {
            for a in &vals {
                for b in &vals {
                    assert_ne!(op.eval(a, b), op.negate().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn flip_swaps_operands() {
        let a = Value::Int(1);
        let b = Value::Int(2);
        for op in [
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ] {
            assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a));
        }
        assert_eq!(ComparisonOp::Eq.flip(), ComparisonOp::Eq);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["=", "!=", "<", "<=", ">", ">="] {
            let op = ComparisonOp::parse(text).unwrap();
            assert_eq!(ComparisonOp::parse(&op.to_string()), Some(op));
        }
        assert_eq!(ComparisonOp::parse("<>"), Some(ComparisonOp::Neq));
        assert_eq!(ComparisonOp::parse("~"), None);
    }

    #[test]
    fn inequality_classification() {
        assert!(ComparisonOp::Lt.is_inequality());
        assert!(ComparisonOp::Ge.is_inequality());
        assert!(!ComparisonOp::Eq.is_inequality());
        assert!(!ComparisonOp::Neq.is_inequality());
    }
}
