//! Detected constraint violations.

use std::fmt;

use serde::{Deserialize, Serialize};

use daisy_common::{RuleId, TupleId};

/// A single detected violation: a rule plus the tuples whose simultaneous
/// values deny it.
///
/// For functional dependencies the participating tuples share an lhs value
/// and disagree on the rhs; for general DCs they jointly satisfy every atom
/// of the constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The violated rule.
    pub rule: RuleId,
    /// The participating tuples, in quantifier order (`t1`, `t2`, …).
    pub tuples: Vec<TupleId>,
}

impl Violation {
    /// Creates a violation.
    pub fn new(rule: RuleId, tuples: Vec<TupleId>) -> Self {
        Violation { rule, tuples }
    }

    /// Creates a pairwise violation (the common two-tuple case).
    pub fn pair(rule: RuleId, a: TupleId, b: TupleId) -> Self {
        Violation {
            rule,
            tuples: vec![a, b],
        }
    }

    /// `true` if the violation involves the given tuple.
    pub fn involves(&self, tuple: TupleId) -> bool {
        self.tuples.contains(&tuple)
    }

    /// A canonical form where the tuple list is sorted; useful for
    /// de-duplicating symmetric pairs produced by different detection paths.
    pub fn canonical(&self) -> Violation {
        let mut tuples = self.tuples.clone();
        tuples.sort_unstable();
        Violation {
            rule: self.rule,
            tuples,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rule)?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Summary statistics over a collection of violations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ViolationSummary {
    /// Total number of violations.
    pub count: usize,
    /// Number of distinct tuples participating in at least one violation.
    pub dirty_tuples: usize,
}

impl ViolationSummary {
    /// Computes the summary of a violation list.
    pub fn of(violations: &[Violation]) -> Self {
        let mut tuples: Vec<TupleId> = violations
            .iter()
            .flat_map(|v| v.tuples.iter().copied())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        ViolationSummary {
            count: violations.len(),
            dirty_tuples: tuples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_tuples() {
        let v = Violation::pair(RuleId::new(0), TupleId::new(5), TupleId::new(2));
        assert_eq!(v.canonical().tuples, vec![TupleId::new(2), TupleId::new(5)]);
        assert!(v.involves(TupleId::new(5)));
        assert!(!v.involves(TupleId::new(7)));
    }

    #[test]
    fn summary_counts_distinct_dirty_tuples() {
        let vs = vec![
            Violation::pair(RuleId::new(0), TupleId::new(1), TupleId::new(2)),
            Violation::pair(RuleId::new(0), TupleId::new(2), TupleId::new(3)),
        ];
        let s = ViolationSummary::of(&vs);
        assert_eq!(s.count, 2);
        assert_eq!(s.dirty_tuples, 3);
        assert_eq!(ViolationSummary::of(&[]).dirty_tuples, 0);
    }

    #[test]
    fn display_form() {
        let v = Violation::pair(RuleId::new(1), TupleId::new(3), TupleId::new(4));
        assert_eq!(v.to_string(), "r1(t3, t4)");
    }
}
