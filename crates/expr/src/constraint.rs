//! Denial constraints and functional dependencies.
//!
//! A denial constraint (DC) is a universally quantified sentence
//! `∀ t1,…,tk ¬(p1 ∧ p2 ∧ … ∧ pm)` where each predicate `p_i` compares
//! attributes of the quantified tuples (or constants).  A set of tuples
//! *violates* the constraint when **all** predicates hold simultaneously.
//!
//! Functional dependencies `X → Y` are the special case
//! `∀ t1,t2 ¬(t1.X = t2.X ∧ t1.Y ≠ t2.Y)`; Daisy treats them specially
//! because error detection reduces to a group-by instead of a theta-join and
//! because the relaxation algorithm (Algorithm 1) is defined on lhs/rhs
//! correlations.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use daisy_common::{DaisyError, Result, RuleId, Schema, Value};
use daisy_storage::Tuple;

use crate::operators::ComparisonOp;

/// One side of a DC predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// An attribute of the `tuple`-th quantified tuple (0-based).
    Attr {
        /// Index of the quantified tuple (0 for `t1`, 1 for `t2`, …).
        tuple: usize,
        /// Attribute name.
        column: String,
    },
    /// A constant.
    Const(Value),
}

impl Operand {
    /// Attribute operand shorthand.
    pub fn attr(tuple: usize, column: impl Into<String>) -> Self {
        Operand::Attr {
            tuple,
            column: column.into(),
        }
    }

    /// The referenced column name, if the operand is an attribute.
    pub fn column(&self) -> Option<&str> {
        match self {
            Operand::Attr { column, .. } => Some(column),
            Operand::Const(_) => None,
        }
    }

    fn resolve(&self, schema: &Schema, tuples: &[&Tuple]) -> Result<Value> {
        match self {
            Operand::Const(v) => Ok(v.clone()),
            Operand::Attr { tuple, column } => {
                let t = tuples.get(*tuple).ok_or_else(|| {
                    DaisyError::Plan(format!(
                        "constraint references tuple t{} but only {} tuples are bound",
                        tuple + 1,
                        tuples.len()
                    ))
                })?;
                let idx = schema.index_of(column)?;
                t.value(idx)
            }
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr { tuple, column } => write!(f, "t{}.{column}", tuple + 1),
            Operand::Const(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
        }
    }
}

/// How a predicate participates in index-based violation detection.
///
/// The classification follows the standard decomposition of DC evaluation:
/// cross-tuple equalities become the hash-partitioning key, one cross-tuple
/// order comparison becomes the sort-based sweep, and everything else is
/// checked per candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateKind {
    /// A cross-tuple `=` — usable as (part of) a hash-partitioning key.
    EqualityKey,
    /// A cross-tuple order comparison (`<`, `≤`, `>`, `≥`) — usable as the
    /// sort-based sweep predicate.
    InequalitySweep,
    /// Everything else: same-tuple comparisons, predicates with constants,
    /// and cross-tuple `≠` — checked per candidate pair.
    Residual,
}

/// One predicate (atom) of a denial constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcPredicate {
    /// Left operand.
    pub left: Operand,
    /// Comparison operator.
    pub op: ComparisonOp,
    /// Right operand.
    pub right: Operand,
}

impl DcPredicate {
    /// Builds a predicate.
    pub fn new(left: Operand, op: ComparisonOp, right: Operand) -> Self {
        DcPredicate { left, op, right }
    }

    /// Evaluates the predicate over a binding of the quantified tuples,
    /// using expected (most-probable) values.
    pub fn eval(&self, schema: &Schema, tuples: &[&Tuple]) -> Result<bool> {
        let l = self.left.resolve(schema, tuples)?;
        let r = self.right.resolve(schema, tuples)?;
        Ok(self.op.eval(&l, &r))
    }

    /// The columns referenced by the predicate.
    pub fn columns(&self) -> Vec<&str> {
        [self.left.column(), self.right.column()]
            .into_iter()
            .flatten()
            .collect()
    }

    /// Classifies the predicate for index-based detection (see
    /// [`PredicateKind`]).  Classification is orientation-independent: the
    /// predicate is [`normalized`](DcPredicate::normalized) first, so
    /// `t2.a = t1.b` classifies like `t1.b = t2.a`.
    pub fn kind(&self) -> PredicateKind {
        let n = self.normalized();
        match (&n.left, &n.right) {
            (Operand::Attr { tuple: lt, .. }, Operand::Attr { tuple: rt, .. }) if lt != rt => {
                match n.op {
                    ComparisonOp::Eq => PredicateKind::EqualityKey,
                    op if op.is_inequality() => PredicateKind::InequalitySweep,
                    _ => PredicateKind::Residual,
                }
            }
            _ => PredicateKind::Residual,
        }
    }

    /// A canonical copy of the predicate: when both operands are attributes
    /// the lower-indexed tuple goes on the left (flipping the operator), and
    /// a constant never sits left of an attribute.  Semantics are unchanged
    /// (`a < b` ⇔ `b > a`); normalization just gives index planning and
    /// duplicate detection a single spelling per predicate.
    pub fn normalized(&self) -> DcPredicate {
        let swap = match (&self.left, &self.right) {
            (Operand::Attr { tuple: lt, .. }, Operand::Attr { tuple: rt, .. }) => lt > rt,
            (Operand::Const(_), Operand::Attr { .. }) => true,
            _ => false,
        };
        if swap {
            DcPredicate::new(self.right.clone(), self.op.flip(), self.left.clone())
        } else {
            self.clone()
        }
    }

    /// `true` when both operands reference the same attribute name on
    /// different tuples (the "conditions over the same attribute" case the
    /// paper's theta-join analysis focuses on).
    pub fn is_same_attribute(&self) -> bool {
        match (&self.left, &self.right) {
            (
                Operand::Attr {
                    tuple: t1,
                    column: c1,
                },
                Operand::Attr {
                    tuple: t2,
                    column: c2,
                },
            ) => c1 == c2 && t1 != t2,
            _ => false,
        }
    }
}

impl fmt::Display for DcPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A denial constraint `∀ t1,…,tk ¬(p1 ∧ … ∧ pm)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenialConstraint {
    /// Identifier within a [`ConstraintSet`].
    pub id: RuleId,
    /// Human-readable name (e.g. `phi1`).
    pub name: String,
    /// Number of quantified tuples `k` (1 or more; 2 for FDs).
    pub tuple_count: usize,
    /// The conjunctive predicates whose simultaneous satisfaction is denied.
    pub predicates: Vec<DcPredicate>,
}

impl DenialConstraint {
    /// Builds a constraint; the id is assigned when added to a
    /// [`ConstraintSet`].
    pub fn new(name: impl Into<String>, tuple_count: usize, predicates: Vec<DcPredicate>) -> Self {
        DenialConstraint {
            id: RuleId::new(0),
            name: name.into(),
            tuple_count,
            predicates,
        }
    }

    /// Parses the compact textual form used throughout the examples and
    /// benchmarks:
    ///
    /// ```text
    /// t1.zip = t2.zip & t1.city != t2.city
    /// t1.salary < t2.salary & t1.tax > t2.tax
    /// t1.rate > 0.5
    /// ```
    ///
    /// Each atom is `operand op operand`, atoms are separated by `&`, an
    /// operand is `tN.column`, a number, or a single-quoted string.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self> {
        let mut predicates = Vec::new();
        let mut max_tuple = 0usize;
        for atom in text.split('&') {
            let atom = atom.trim();
            if atom.is_empty() {
                return Err(DaisyError::Parse(format!(
                    "empty atom in constraint `{text}`"
                )));
            }
            let (left_text, op, right_text) = split_atom(atom)?;
            let left = parse_operand(left_text, &mut max_tuple)?;
            let right = parse_operand(right_text, &mut max_tuple)?;
            predicates.push(DcPredicate::new(left, op, right));
        }
        if predicates.is_empty() {
            return Err(DaisyError::Parse(format!(
                "constraint `{text}` has no atoms"
            )));
        }
        Ok(DenialConstraint::new(name, max_tuple, predicates))
    }

    /// All attribute names referenced by the constraint, sorted.
    pub fn attributes(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .predicates
            .iter()
            .flat_map(|p| p.columns())
            .map(str::to_string)
            .collect();
        set.into_iter().collect()
    }

    /// `true` if the constraint references attribute `column` (tolerating
    /// qualification differences).
    pub fn references(&self, column: &str) -> bool {
        self.attributes().iter().any(|a| {
            a == column || column.ends_with(&format!(".{a}")) || a.ends_with(&format!(".{column}"))
        })
    }

    /// `true` if any predicate uses an order comparison (`<`, `≤`, `>`, `≥`).
    pub fn has_inequality(&self) -> bool {
        self.predicates.iter().any(|p| p.op.is_inequality())
    }

    /// Evaluates whether the bound tuples violate the constraint (all
    /// predicates hold).  The number of bound tuples must equal
    /// [`DenialConstraint::tuple_count`].
    pub fn violated_by(&self, schema: &Schema, tuples: &[&Tuple]) -> Result<bool> {
        if tuples.len() != self.tuple_count {
            return Err(DaisyError::Plan(format!(
                "constraint `{}` quantifies {} tuples but {} were bound",
                self.name,
                self.tuple_count,
                tuples.len()
            )));
        }
        for p in &self.predicates {
            if !p.eval(schema, tuples)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Recognises the FD pattern: two quantified tuples, every predicate
    /// compares the *same* attribute across the two tuples, all but one are
    /// equalities and exactly one is an inequality (`≠`).  Returns the
    /// equivalent `X → Y`.
    pub fn as_fd(&self) -> Option<FunctionalDependency> {
        if self.tuple_count != 2 {
            return None;
        }
        let mut lhs = Vec::new();
        let mut rhs = Vec::new();
        for p in &self.predicates {
            if !p.is_same_attribute() {
                return None;
            }
            let column = p.left.column()?.to_string();
            match p.op {
                ComparisonOp::Eq => lhs.push(column),
                ComparisonOp::Neq => rhs.push(column),
                _ => return None,
            }
        }
        if lhs.is_empty() || rhs.len() != 1 {
            return None;
        }
        Some(FunctionalDependency {
            lhs,
            rhs: rhs.into_iter().next().expect("checked length"),
        })
    }

    /// Derives the index plan for hash-equality / sort-sweep violation
    /// detection: the cross-tuple equality predicates become the
    /// hash-partitioning key, the first cross-tuple order comparison becomes
    /// the sweep predicate, and every remaining predicate is residual.
    ///
    /// Returns `None` for constraints that do not quantify exactly two
    /// tuples — those always fall back to pairwise detection.  Duplicate
    /// equality predicates contribute a single key column pair.
    pub fn index_plan(&self) -> Option<IndexPlan> {
        if self.tuple_count != 2 {
            return None;
        }
        let mut key: Vec<(String, String)> = Vec::new();
        let mut sweep: Option<DcPredicate> = None;
        let mut residual: Vec<DcPredicate> = Vec::new();
        for pred in &self.predicates {
            let n = pred.normalized();
            match pred.kind() {
                PredicateKind::EqualityKey => {
                    let (Some(l), Some(r)) = (n.left.column(), n.right.column()) else {
                        return None; // unreachable for EqualityKey, but stay safe
                    };
                    let pair = (l.to_string(), r.to_string());
                    if !key.contains(&pair) {
                        key.push(pair);
                    }
                }
                PredicateKind::InequalitySweep if sweep.is_none() => sweep = Some(n),
                _ => residual.push(n),
            }
        }
        // A canonical key-column order keeps partition keys deterministic
        // regardless of how the constraint spelled its predicates.
        key.sort();
        Some(IndexPlan {
            key,
            sweep,
            residual,
        })
    }
}

/// The decomposition of a two-tuple denial constraint for index-based
/// violation detection (produced by [`DenialConstraint::index_plan`]).
///
/// A candidate pair `(t1, t2)` violates the constraint iff `t1`'s key-left
/// values equal `t2`'s key-right values, the sweep predicate holds, and every
/// residual predicate holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexPlan {
    /// `(tuple-1 column, tuple-2 column)` pairs of the hash-partitioning
    /// key, in canonical (sorted) order.  For same-attribute equalities the
    /// two names coincide.
    pub key: Vec<(String, String)>,
    /// The normalized sort-sweep predicate (a cross-tuple `<`, `≤`, `>` or
    /// `≥` with tuple 1 on the left), when the constraint has one.
    pub sweep: Option<DcPredicate>,
    /// Normalized predicates checked per candidate pair.
    pub residual: Vec<DcPredicate>,
}

impl IndexPlan {
    /// `true` when the plan has at least one equality key column — the case
    /// where hash partitioning shrinks the candidate space.
    pub fn has_equality_key(&self) -> bool {
        !self.key.is_empty()
    }

    /// `true` when every key pair compares the same attribute on both
    /// tuples, so one grouping pass serves both binding roles.
    pub fn symmetric_key(&self) -> bool {
        self.key.iter().all(|(l, r)| l == r)
    }

    /// The column names whose values determine a tuple's placement in the
    /// index — every key column of either role plus the sweep attributes.
    /// A cell update outside this set leaves the tuple's partition and sort
    /// position untouched, so a maintained index only has to re-place a
    /// tuple when one of these columns changes (residual predicates read
    /// the tuples directly at detection time).  Sorted and de-duplicated.
    pub fn maintenance_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = Vec::new();
        for (l, r) in &self.key {
            cols.push(l.clone());
            cols.push(r.clone());
        }
        if let Some(sweep) = &self.sweep {
            for operand in [&sweep.left, &sweep.right] {
                if let Some(name) = operand.column() {
                    cols.push(name.to_string());
                }
            }
        }
        cols.sort();
        cols.dedup();
        cols
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ¬(", self.name)?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

fn split_atom(atom: &str) -> Result<(&str, ComparisonOp, &str)> {
    // Two-character operators must be tried first.
    for op_text in ["!=", "<>", "<=", ">=", "==", "=", "<", ">"] {
        if let Some(pos) = atom.find(op_text) {
            let left = atom[..pos].trim();
            let right = atom[pos + op_text.len()..].trim();
            if left.is_empty() || right.is_empty() {
                return Err(DaisyError::Parse(format!("malformed atom `{atom}`")));
            }
            let op = ComparisonOp::parse(op_text)
                .ok_or_else(|| DaisyError::Parse(format!("unknown operator in `{atom}`")))?;
            return Ok((left, op, right));
        }
    }
    Err(DaisyError::Parse(format!(
        "no comparison operator in atom `{atom}`"
    )))
}

fn parse_operand(text: &str, max_tuple: &mut usize) -> Result<Operand> {
    let text = text.trim();
    if let Some(stripped) = text.strip_prefix('\'') {
        let inner = stripped
            .strip_suffix('\'')
            .ok_or_else(|| DaisyError::Parse(format!("unterminated string literal `{text}`")))?;
        return Ok(Operand::Const(Value::Str(inner.to_string())));
    }
    // tN.column
    if let Some(rest) = text.strip_prefix('t') {
        if let Some((idx_text, column)) = rest.split_once('.') {
            if let Ok(idx) = idx_text.parse::<usize>() {
                if idx == 0 {
                    return Err(DaisyError::Parse(format!(
                        "tuple references are 1-based, got `{text}`"
                    )));
                }
                *max_tuple = (*max_tuple).max(idx);
                return Ok(Operand::attr(idx - 1, column.trim()));
            }
        }
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Operand::Const(Value::Int(i)));
    }
    if let Ok(x) = text.parse::<f64>() {
        return Ok(Operand::Const(Value::Float(x)));
    }
    Err(DaisyError::Parse(format!(
        "cannot parse operand `{text}` (expected tN.column, number, or 'string')"
    )))
}

/// A functional dependency `X → Y` with a single rhs attribute.
///
/// A dependency with multiple rhs attributes is normalised into several
/// single-rhs FDs (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalDependency {
    /// Determining attributes.
    pub lhs: Vec<String>,
    /// Determined attribute.
    pub rhs: String,
}

impl FunctionalDependency {
    /// Builds an FD.
    pub fn new(lhs: &[&str], rhs: &str) -> Self {
        FunctionalDependency {
            lhs: lhs.iter().map(|s| s.to_string()).collect(),
            rhs: rhs.to_string(),
        }
    }

    /// All attributes (lhs then rhs).
    pub fn attributes(&self) -> Vec<String> {
        let mut all = self.lhs.clone();
        all.push(self.rhs.clone());
        all
    }

    /// Converts to the equivalent two-tuple denial constraint
    /// `¬(t1.X = t2.X ∧ t1.Y ≠ t2.Y)`.
    pub fn to_dc(&self, name: impl Into<String>) -> DenialConstraint {
        let mut predicates: Vec<DcPredicate> = self
            .lhs
            .iter()
            .map(|c| {
                DcPredicate::new(
                    Operand::attr(0, c.clone()),
                    ComparisonOp::Eq,
                    Operand::attr(1, c.clone()),
                )
            })
            .collect();
        predicates.push(DcPredicate::new(
            Operand::attr(0, self.rhs.clone()),
            ComparisonOp::Neq,
            Operand::attr(1, self.rhs.clone()),
        ));
        DenialConstraint::new(name, 2, predicates)
    }

    /// `true` when two tuples violate the FD (equal lhs, different rhs).
    pub fn violated_by(&self, schema: &Schema, a: &Tuple, b: &Tuple) -> Result<bool> {
        for c in &self.lhs {
            let idx = schema.index_of(c)?;
            if a.value(idx)? != b.value(idx)? {
                return Ok(false);
            }
        }
        let idx = schema.index_of(&self.rhs)?;
        Ok(a.value(idx)? != b.value(idx)?)
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs.join(","), self.rhs)
    }
}

/// An ordered collection of denial constraints with stable [`RuleId`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    rules: Vec<DenialConstraint>,
}

impl ConstraintSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a constraint, assigning it the next [`RuleId`]; returns the id.
    pub fn add(&mut self, mut dc: DenialConstraint) -> RuleId {
        let id = RuleId::new(self.rules.len() as u64);
        dc.id = id;
        self.rules.push(dc);
        id
    }

    /// Adds a functional dependency.
    pub fn add_fd(&mut self, fd: &FunctionalDependency, name: impl Into<String>) -> RuleId {
        self.add(fd.to_dc(name))
    }

    /// All rules.
    pub fn rules(&self) -> &[DenialConstraint] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Looks up a rule by id.
    pub fn rule(&self, id: RuleId) -> Option<&DenialConstraint> {
        self.rules.get(id.index())
    }

    /// The rules that reference any of the given attributes — these are the
    /// rules that "affect query correctness" for a query touching those
    /// attributes (§4.1).
    pub fn rules_over<'a>(
        &self,
        attributes: impl IntoIterator<Item = &'a str>,
    ) -> Vec<&DenialConstraint> {
        let attrs: Vec<&str> = attributes.into_iter().collect();
        self.rules
            .iter()
            .filter(|r| attrs.iter().any(|a| r.references(a)))
            .collect()
    }

    /// The rules recognisable as functional dependencies, paired with their
    /// FD form.
    pub fn fds(&self) -> Vec<(&DenialConstraint, FunctionalDependency)> {
        self.rules
            .iter()
            .filter_map(|r| r.as_fd().map(|fd| (r, fd)))
            .collect()
    }

    /// The rules that are *not* plain FDs (general denial constraints).
    pub fn general_dcs(&self) -> Vec<&DenialConstraint> {
        self.rules.iter().filter(|r| r.as_fd().is_none()).collect()
    }

    /// Pairs of distinct rules that share at least one attribute; candidate
    /// fixes for cells under such rules must be merged (§4.3).
    pub fn overlapping_pairs(&self) -> Vec<(RuleId, RuleId)> {
        let mut pairs = Vec::new();
        for (i, a) in self.rules.iter().enumerate() {
            for b in self.rules.iter().skip(i + 1) {
                let attrs_a = a.attributes();
                if b.attributes().iter().any(|x| attrs_a.contains(x)) {
                    pairs.push((a.id, b.id));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, TupleId};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("zip", DataType::Int),
            ("city", DataType::Str),
            ("salary", DataType::Int),
            ("tax", DataType::Float),
        ])
        .unwrap()
    }

    fn tuple(id: u64, zip: i64, city: &str, salary: i64, tax: f64) -> Tuple {
        Tuple::from_values(
            TupleId::new(id),
            vec![
                Value::Int(zip),
                Value::from(city),
                Value::Int(salary),
                Value::Float(tax),
            ],
        )
    }

    #[test]
    fn parse_fd_shaped_constraint() {
        let dc = DenialConstraint::parse("phi1", "t1.zip = t2.zip & t1.city != t2.city").unwrap();
        assert_eq!(dc.tuple_count, 2);
        assert_eq!(dc.predicates.len(), 2);
        assert_eq!(dc.attributes(), vec!["city".to_string(), "zip".to_string()]);
        let fd = dc.as_fd().unwrap();
        assert_eq!(fd, FunctionalDependency::new(&["zip"], "city"));
        assert!(!dc.has_inequality());
    }

    #[test]
    fn parse_inequality_dc_and_constants() {
        let dc = DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap();
        assert!(dc.has_inequality());
        assert!(dc.as_fd().is_none());

        let with_const = DenialConstraint::parse("c", "t1.tax > 0.5 & t1.city = 'LA'").unwrap();
        assert_eq!(with_const.tuple_count, 1);
        assert!(with_const.as_fd().is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(DenialConstraint::parse("x", "").is_err());
        assert!(DenialConstraint::parse("x", "t1.zip ~ t2.zip").is_err());
        assert!(DenialConstraint::parse("x", "t1.zip =").is_err());
        assert!(DenialConstraint::parse("x", "t0.zip = t1.zip").is_err());
        assert!(DenialConstraint::parse("x", "t1.city = 'unterminated").is_err());
    }

    #[test]
    fn fd_violation_detection() {
        let s = schema();
        let fd = FunctionalDependency::new(&["zip"], "city");
        let a = tuple(0, 9001, "Los Angeles", 100, 0.1);
        let b = tuple(1, 9001, "San Francisco", 200, 0.2);
        let c = tuple(2, 10001, "New York", 300, 0.3);
        assert!(fd.violated_by(&s, &a, &b).unwrap());
        assert!(!fd.violated_by(&s, &a, &c).unwrap());
        assert!(!fd.violated_by(&s, &a, &a).unwrap());

        // Same semantics through the DC form.
        let dc = fd.to_dc("phi");
        assert!(dc.violated_by(&s, &[&a, &b]).unwrap());
        assert!(!dc.violated_by(&s, &[&a, &c]).unwrap());
        assert_eq!(dc.as_fd().unwrap(), fd);
    }

    #[test]
    fn inequality_dc_violation_detection() {
        // Example 5: ¬(t1.salary < t2.salary ∧ t1.tax > t2.tax).
        let s = schema();
        let dc = DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap();
        let t2 = tuple(1, 1, "a", 3000, 0.2);
        let t3 = tuple(2, 1, "a", 2000, 0.3);
        // t3 has lower salary but higher tax than t2 → binding (t3, t2) violates.
        assert!(dc.violated_by(&s, &[&t3, &t2]).unwrap());
        assert!(!dc.violated_by(&s, &[&t2, &t3]).unwrap());
        // Arity mismatch is an error.
        assert!(dc.violated_by(&s, &[&t2]).is_err());
    }

    #[test]
    fn references_is_qualification_tolerant() {
        let dc = DenialConstraint::parse("phi", "t1.zip = t2.zip & t1.city != t2.city").unwrap();
        assert!(dc.references("zip"));
        assert!(dc.references("cities.zip"));
        assert!(!dc.references("salary"));
    }

    #[test]
    fn constraint_set_assigns_ids_and_filters() {
        let mut set = ConstraintSet::new();
        let id1 = set
            .add(DenialConstraint::parse("phi1", "t1.zip = t2.zip & t1.city != t2.city").unwrap());
        let id2 = set.add_fd(&FunctionalDependency::new(&["phone"], "zip"), "phi2");
        let id3 = set
            .add(DenialConstraint::parse("dc", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap());
        assert_eq!(id1, RuleId::new(0));
        assert_eq!(id2, RuleId::new(1));
        assert_eq!(id3, RuleId::new(2));
        assert_eq!(set.len(), 3);
        assert_eq!(set.fds().len(), 2);
        assert_eq!(set.general_dcs().len(), 1);
        assert_eq!(set.rules_over(["zip"]).len(), 2);
        assert_eq!(set.rules_over(["tax"]).len(), 1);
        assert_eq!(set.rules_over(["nothing"]).len(), 0);
        // phi1 and phi2 share the `zip` attribute.
        assert_eq!(set.overlapping_pairs(), vec![(id1, id2)]);
        assert_eq!(set.rule(id3).unwrap().name, "dc");
        assert!(set.rule(RuleId::new(9)).is_none());
    }

    #[test]
    fn multi_attribute_lhs_fd_roundtrip() {
        let fd = FunctionalDependency::new(&["county_code", "state_code"], "county_name");
        let dc = fd.to_dc("phi");
        assert_eq!(dc.predicates.len(), 3);
        assert_eq!(dc.as_fd().unwrap(), fd);
        assert_eq!(fd.attributes().len(), 3);
        assert_eq!(fd.to_string(), "county_code,state_code -> county_name");
    }

    #[test]
    fn display_forms() {
        let dc = DenialConstraint::parse("phi", "t1.zip = t2.zip & t1.city != t2.city").unwrap();
        assert_eq!(
            dc.to_string(),
            "phi: ¬(t1.zip = t2.zip ∧ t1.city != t2.city)"
        );
    }

    #[test]
    fn parse_tolerates_surrounding_whitespace() {
        let dc = DenialConstraint::parse(
            "phi",
            "   t1.zip   =   t2.zip   &   t1.city  !=  t2.city   ",
        )
        .unwrap();
        assert_eq!(dc.predicates.len(), 2);
        assert_eq!(
            dc.as_fd().unwrap(),
            FunctionalDependency::new(&["zip"], "city")
        );
    }

    #[test]
    fn parse_accepts_reversed_operands_and_normalizes_them() {
        // `t2.a = t1.b` is legal input; normalization puts tuple 1 (`t1`)
        // back on the left with the operator flipped.
        let dc = DenialConstraint::parse("phi", "t2.salary > t1.tax").unwrap();
        assert_eq!(dc.tuple_count, 2);
        let n = dc.predicates[0].normalized();
        assert_eq!(n.left, Operand::attr(0, "tax"));
        assert_eq!(n.op, ComparisonOp::Lt);
        assert_eq!(n.right, Operand::attr(1, "salary"));
        // Normalizing an already-normalized predicate is a no-op.
        assert_eq!(n.normalized(), n);
        // Constants never sit left of an attribute after normalization.
        let c = DenialConstraint::parse("c", "t1.tax < 0.5").unwrap();
        let flipped = DcPredicate::new(
            Operand::Const(Value::Float(0.5)),
            ComparisonOp::Gt,
            Operand::attr(0, "tax"),
        );
        assert_eq!(flipped.normalized(), c.predicates[0]);
    }

    #[test]
    fn parse_duplicate_predicates_dedup_in_index_plan() {
        let dc = DenialConstraint::parse(
            "phi",
            "t1.zip = t2.zip & t1.zip = t2.zip & t1.city != t2.city",
        )
        .unwrap();
        assert_eq!(dc.predicates.len(), 3);
        let plan = dc.index_plan().unwrap();
        assert_eq!(plan.key, vec![("zip".to_string(), "zip".to_string())]);
        assert!(plan.sweep.is_none());
        assert_eq!(plan.residual.len(), 1);
    }

    #[test]
    fn parse_unsupported_operators_return_errors_not_panics() {
        for text in [
            "t1.zip ~ t2.zip",
            "t1.zip =",
            "= t2.zip",
            "t1.zip ! t2.zip",
            "t1.zip LIKE t2.zip",
        ] {
            let err = DenialConstraint::parse("x", text).unwrap_err();
            assert!(
                matches!(err, DaisyError::Parse(_)),
                "`{text}` must yield a parse error, got {err:?}"
            );
        }
        // Double-equals is accepted as a spelling of equality.
        let dc = DenialConstraint::parse("x", "t1.zip == t2.zip & t1.city != t2.city").unwrap();
        assert_eq!(dc.predicates[0].op, ComparisonOp::Eq);
    }

    #[test]
    fn predicate_kinds_classify_by_role() {
        let dc = DenialConstraint::parse(
            "phi",
            "t1.zip = t2.zip & t1.salary < t2.salary & t1.city != t2.city & t1.tax > 0.5",
        )
        .unwrap();
        let kinds: Vec<PredicateKind> = dc.predicates.iter().map(|p| p.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                PredicateKind::EqualityKey,
                PredicateKind::InequalitySweep,
                PredicateKind::Residual,
                PredicateKind::Residual,
            ]
        );
        // Reversed spelling classifies identically.
        let rev = DenialConstraint::parse("phi", "t2.zip = t1.zip").unwrap();
        assert_eq!(rev.predicates[0].kind(), PredicateKind::EqualityKey);
    }

    #[test]
    fn index_plan_decomposes_key_sweep_and_residual() {
        let dc = DenialConstraint::parse(
            "phi",
            "t1.zip = t2.zip & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        assert!(plan.has_equality_key());
        assert!(plan.symmetric_key());
        assert_eq!(plan.key, vec![("zip".to_string(), "zip".to_string())]);
        let sweep = plan.sweep.as_ref().unwrap();
        assert_eq!(sweep.left, Operand::attr(0, "salary"));
        assert_eq!(sweep.op, ComparisonOp::Lt);
        // The second inequality stays residual (one sweep per plan).
        assert_eq!(plan.residual.len(), 1);
        assert_eq!(plan.residual[0].left, Operand::attr(0, "tax"));

        // Asymmetric equality keys are supported and not symmetric.
        let asym = DenialConstraint::parse("phi", "t1.zip = t2.salary").unwrap();
        let plan = asym.index_plan().unwrap();
        assert_eq!(plan.key, vec![("zip".to_string(), "salary".to_string())]);
        assert!(!plan.symmetric_key());

        // Single-tuple constraints have no plan; equality-free two-tuple
        // constraints have a plan with an empty key.
        assert!(DenialConstraint::parse("c", "t1.tax > 0.5")
            .unwrap()
            .index_plan()
            .is_none());
        let no_eq = DenialConstraint::parse("c", "t1.salary < t2.salary & t1.tax > t2.tax")
            .unwrap()
            .index_plan()
            .unwrap();
        assert!(!no_eq.has_equality_key());
        assert!(no_eq.sweep.is_some());
    }

    #[test]
    fn maintenance_columns_cover_keys_and_sweep_only() {
        let dc = DenialConstraint::parse(
            "phi",
            "t1.zip = t2.zip & t1.salary < t2.salary & t1.tax > t2.tax",
        )
        .unwrap();
        let plan = dc.index_plan().unwrap();
        // `tax` is residual: updating it never moves a tuple in the index.
        assert_eq!(plan.maintenance_columns(), vec!["salary", "zip"]);

        // Asymmetric keys and sweeps contribute both roles' columns.
        let asym = DenialConstraint::parse("phi", "t1.zip = t2.city & t1.lo < t2.hi").unwrap();
        let plan = asym.index_plan().unwrap();
        assert_eq!(plan.maintenance_columns(), vec!["city", "hi", "lo", "zip"]);

        // Equality-free plans still cover their sweep attribute.
        let no_eq = DenialConstraint::parse("c", "t1.salary < t2.salary")
            .unwrap()
            .index_plan()
            .unwrap();
        assert_eq!(no_eq.maintenance_columns(), vec!["salary"]);
    }
}
