//! Columnar predicate evaluation: DC and query predicates over snapshot
//! column codes.
//!
//! The row path evaluates a [`DcPredicate`] by resolving each operand's
//! column name through the schema and cloning a
//! [`Value`] out of a tuple — per candidate pair, per
//! predicate.  When detection runs over a
//! [`ColumnSnapshot`], a predicate is instead resolved **once** into a
//! [`CodedPredicate`]: column names become column indices, constants become
//! dictionary-resolved [`ConstProbe`]s, and each evaluation is a pair of
//! array reads plus a scalar comparison.
//!
//! The same trick applies to query WHERE clauses: a [`BoolExpr`] resolves
//! into a [`CodedScalarPredicate`] — one coded comparison tree evaluated
//! per *row* instead of per tuple pair — which is what the vectorized
//! filter kernel of `daisy-query` runs over selection vectors.
//!
//! Semantics are byte-identical with the row path by construction: the
//! NULL rules come from the shared [`ComparisonOp::eval_parts`] core, and
//! [`ColumnCode`]'s total order mirrors
//! [`Value::total_cmp`](daisy_common::Value::total_cmp) (including
//! NaN-sorts-last and int/float coercion).
//!
//! A `CodedPredicate` / `CodedScalarPredicate` borrows nothing but is only
//! meaningful against the snapshot it was resolved for (probes cache
//! dictionary ranks); resolve per pass, immediately before use.

use std::cmp::Ordering;

use daisy_common::{DaisyError, Result, Schema, Value};
use daisy_storage::{ColumnCode, ColumnSnapshot, ConstProbe, Tuple};

use crate::constraint::{DcPredicate, Operand};
use crate::operators::ComparisonOp;
use crate::scalar::{BoolExpr, ScalarExpr};

/// One operand of a [`CodedPredicate`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum CodedOperand {
    /// An attribute of the `tuple`-th bound tuple, resolved to its column.
    Cell {
        /// 0 for `t1`, 1 for `t2`.
        tuple: usize,
        /// Column index in the snapshot.
        column: usize,
    },
    /// A constant, resolved against the snapshot dictionary.
    Const(ConstProbe),
}

/// A DC predicate resolved for evaluation over one snapshot's column codes.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedPredicate {
    op: ComparisonOp,
    left: CodedOperand,
    right: CodedOperand,
    /// Pre-evaluated result when both operands are constants (the predicate
    /// is then row-independent and probes cannot express inexact-vs-inexact
    /// string comparisons faithfully).
    const_result: Option<bool>,
    /// The original constant operand values, kept so the overlay-aware read
    /// path ([`CodedPredicate::eval_overlay`]) can fall back to exact
    /// `Value` comparisons for patched cells.
    left_const: Option<Value>,
    right_const: Option<Value>,
}

impl CodedPredicate {
    /// Resolves a predicate against a schema and snapshot.  Fails for
    /// operands referencing tuples beyond `t2` (the index kernels bind
    /// exactly two tuples) or unknown columns.
    pub fn resolve(
        pred: &DcPredicate,
        schema: &Schema,
        snapshot: &ColumnSnapshot,
    ) -> Result<CodedPredicate> {
        let resolve_operand = |operand: &Operand| -> Result<CodedOperand> {
            match operand {
                Operand::Attr { tuple, column } => {
                    if *tuple > 1 {
                        return Err(DaisyError::Plan(format!(
                            "columnar evaluation binds two tuples but `{pred}` references t{}",
                            tuple + 1
                        )));
                    }
                    Ok(CodedOperand::Cell {
                        tuple: *tuple,
                        column: schema.index_of(column)?,
                    })
                }
                Operand::Const(v) => Ok(CodedOperand::Const(snapshot.probe_value(v))),
            }
        };
        let left = resolve_operand(&pred.left)?;
        let right = resolve_operand(&pred.right)?;
        let const_result = match (&pred.left, &pred.right) {
            (Operand::Const(l), Operand::Const(r)) => Some(pred.op.eval(l, r)),
            _ => None,
        };
        let const_value = |operand: &Operand| match operand {
            Operand::Const(v) => Some(v.clone()),
            Operand::Attr { .. } => None,
        };
        Ok(CodedPredicate {
            op: pred.op,
            left,
            right,
            const_result,
            left_const: const_value(&pred.left),
            right_const: const_value(&pred.right),
        })
    }

    /// Evaluates the predicate for the binding `(t1 = rows[0], t2 =
    /// rows[1])` over the snapshot it was resolved for.
    pub fn eval(&self, snapshot: &ColumnSnapshot, rows: [usize; 2]) -> bool {
        if let Some(fixed) = self.const_result {
            return fixed;
        }
        let fetch = |operand: &CodedOperand| -> Fetched {
            match operand {
                CodedOperand::Cell { tuple, column } => {
                    Fetched::Cell(snapshot.ordering_code(rows[*tuple], *column))
                }
                CodedOperand::Const(probe) => Fetched::Const(*probe),
            }
        };
        let left = fetch(&self.left);
        let right = fetch(&self.right);
        self.op
            .eval_parts(left.is_null(), right.is_null(), || left.cmp_fetched(right))
    }

    /// Evaluates the predicate for the binding `(t1 = rows[0], t2 =
    /// rows[1])` over the snapshot, with an **uncommitted overlay** on top:
    /// `patched(binding, column)` returns the staged expected value of a
    /// cell when a pending delta overrides it (e.g. via
    /// [`DeltaOverlay::expected_value`](daisy_storage::DeltaOverlay::expected_value)),
    /// `None` to read the snapshot.
    ///
    /// Clean bindings take the coded fast path ([`CodedPredicate::eval`]);
    /// as soon as a referenced cell is patched the evaluation falls back to
    /// exact `Value` comparisons ([`ComparisonOp::eval`]) for that pair —
    /// the two paths share their NULL/ordering semantics, so the result is
    /// byte-identical to rebuilding the snapshot with the overlay applied
    /// (pinned down by the differential test in this module).
    pub fn eval_overlay(
        &self,
        snapshot: &ColumnSnapshot,
        rows: [usize; 2],
        patched: &dyn Fn(usize, usize) -> Option<Value>,
    ) -> bool {
        if let Some(fixed) = self.const_result {
            return fixed;
        }
        let patch_of = |operand: &CodedOperand| match operand {
            CodedOperand::Cell { tuple, column } => patched(*tuple, *column),
            CodedOperand::Const(_) => None,
        };
        let (left_patch, right_patch) = (patch_of(&self.left), patch_of(&self.right));
        if left_patch.is_none() && right_patch.is_none() {
            return self.eval(snapshot, rows);
        }
        let value_of =
            |operand: &CodedOperand, patch: Option<Value>, side: &Option<Value>| match operand {
                CodedOperand::Cell { tuple, column } => {
                    patch.unwrap_or_else(|| snapshot.value(rows[*tuple], *column))
                }
                CodedOperand::Const(_) => side
                    .clone()
                    .expect("const operands store their value at resolve"),
            };
        let l = value_of(&self.left, left_patch, &self.left_const);
        let r = value_of(&self.right, right_patch, &self.right_const);
        self.op.eval(&l, &r)
    }
}

/// A fetched operand: a cell code or a constant probe.
#[derive(Clone, Copy)]
enum Fetched {
    Cell(ColumnCode),
    Const(ConstProbe),
}

impl Fetched {
    fn is_null(self) -> bool {
        match self {
            Fetched::Cell(code) => code.is_null(),
            Fetched::Const(probe) => probe.is_null(),
        }
    }

    /// `self.cmp(other)` mirroring `Value::total_cmp` on the underlying
    /// values.  Const/const never reaches here (pre-evaluated at resolve).
    fn cmp_fetched(self, other: Fetched) -> Ordering {
        match (self, other) {
            (Fetched::Cell(a), Fetched::Cell(b)) => a.total_cmp(b),
            (Fetched::Cell(cell), Fetched::Const(probe)) => probe.cmp_cell(cell),
            (Fetched::Const(probe), Fetched::Cell(cell)) => probe.cmp_cell(cell).reverse(),
            (Fetched::Const(_), Fetched::Const(_)) => {
                unreachable!("const/const predicates are pre-evaluated")
            }
        }
    }
}

/// One operand of a coded scalar comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CodedScalar {
    /// A column of the filtered table, resolved to its snapshot index.
    Column(usize),
    /// A literal, resolved against the snapshot dictionary.
    Const(ConstProbe),
}

/// A query WHERE predicate ([`BoolExpr`]) resolved for evaluation over one
/// snapshot's column codes — the single-tuple counterpart of
/// [`CodedPredicate`].
///
/// Evaluation over a **clean** row (no probabilistic referenced cell) is
/// byte-identical to [`BoolExpr::eval_expected`] *and*
/// [`BoolExpr::eval_possible`] by construction: a current snapshot stores
/// exactly the expected value of every cell, comparisons run through the
/// shared [`ComparisonOp::eval_parts`] core, and possible-world semantics
/// collapse to expected semantics when no referenced cell is relaxed.  Rows
/// where [`CodedScalarPredicate::references_probabilistic`] holds must fall
/// back to exact per-tuple evaluation under `Possible` mode (the vectorized
/// filter kernel does; under `Expected` mode the coded path already reads
/// the expected values and no fallback is needed).
#[derive(Debug, Clone, PartialEq)]
pub struct CodedScalarPredicate {
    node: CodedExpr,
    /// Referenced column ordinals, deduplicated and sorted.
    columns: Vec<usize>,
}

/// The coded form of a [`BoolExpr`] node.
#[derive(Debug, Clone, PartialEq)]
enum CodedExpr {
    True,
    Not(Box<CodedExpr>),
    And(Box<CodedExpr>, Box<CodedExpr>),
    Or(Box<CodedExpr>, Box<CodedExpr>),
    Compare {
        op: ComparisonOp,
        left: CodedScalar,
        right: CodedScalar,
        /// Pre-evaluated result when both operands are literals (probes
        /// cannot order two strings absent from the dictionary).
        const_result: Option<bool>,
    },
}

impl CodedScalarPredicate {
    /// Resolves a WHERE predicate against a schema and snapshot.  Fails for
    /// unknown columns — the same up-front validation the row-path filter
    /// kernel performs.
    pub fn resolve(
        expr: &BoolExpr,
        schema: &Schema,
        snapshot: &ColumnSnapshot,
    ) -> Result<CodedScalarPredicate> {
        let node = Self::compile(expr, schema, snapshot)?;
        let mut columns: Vec<usize> = expr
            .columns()
            .iter()
            .map(|name| schema.index_of(name))
            .collect::<Result<Vec<usize>>>()?;
        columns.sort_unstable();
        columns.dedup();
        Ok(CodedScalarPredicate { node, columns })
    }

    fn compile(expr: &BoolExpr, schema: &Schema, snapshot: &ColumnSnapshot) -> Result<CodedExpr> {
        let scalar = |operand: &ScalarExpr| -> Result<CodedScalar> {
            match operand {
                ScalarExpr::Column(name) => Ok(CodedScalar::Column(schema.index_of(name)?)),
                ScalarExpr::Literal(v) => Ok(CodedScalar::Const(snapshot.probe_value(v))),
            }
        };
        Ok(match expr {
            BoolExpr::True => CodedExpr::True,
            BoolExpr::Not(e) => CodedExpr::Not(Box::new(Self::compile(e, schema, snapshot)?)),
            BoolExpr::And(a, b) => CodedExpr::And(
                Box::new(Self::compile(a, schema, snapshot)?),
                Box::new(Self::compile(b, schema, snapshot)?),
            ),
            BoolExpr::Or(a, b) => CodedExpr::Or(
                Box::new(Self::compile(a, schema, snapshot)?),
                Box::new(Self::compile(b, schema, snapshot)?),
            ),
            BoolExpr::Compare { left, op, right } => {
                let const_result = match (left, right) {
                    (ScalarExpr::Literal(l), ScalarExpr::Literal(r)) => Some(op.eval(l, r)),
                    _ => None,
                };
                CodedExpr::Compare {
                    op: *op,
                    left: scalar(left)?,
                    right: scalar(right)?,
                    const_result,
                }
            }
        })
    }

    /// Evaluates the predicate for one snapshot row.
    pub fn eval(&self, snapshot: &ColumnSnapshot, row: usize) -> bool {
        self.node.eval(snapshot, row)
    }

    /// The referenced column ordinals (deduplicated, sorted).
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// `true` when some referenced cell of `tuple` is probabilistic — the
    /// rows that must take the exact per-tuple fallback under
    /// possible-world semantics.
    pub fn references_probabilistic(&self, tuple: &Tuple) -> bool {
        self.columns
            .iter()
            .any(|&c| tuple.cell(c).is_ok_and(|cell| cell.is_probabilistic()))
    }
}

impl CodedExpr {
    fn eval(&self, snapshot: &ColumnSnapshot, row: usize) -> bool {
        match self {
            CodedExpr::True => true,
            CodedExpr::Not(e) => !e.eval(snapshot, row),
            CodedExpr::And(a, b) => a.eval(snapshot, row) && b.eval(snapshot, row),
            CodedExpr::Or(a, b) => a.eval(snapshot, row) || b.eval(snapshot, row),
            CodedExpr::Compare {
                op,
                left,
                right,
                const_result,
            } => {
                if let Some(fixed) = const_result {
                    return *fixed;
                }
                let fetch = |operand: &CodedScalar| -> Fetched {
                    match operand {
                        CodedScalar::Column(column) => {
                            Fetched::Cell(snapshot.ordering_code(row, *column))
                        }
                        CodedScalar::Const(probe) => Fetched::Const(*probe),
                    }
                };
                let l = fetch(left);
                let r = fetch(right);
                op.eval_parts(l.is_null(), r.is_null(), || l.cmp_fetched(r))
            }
        }
    }
}

/// Resolves every predicate of a list (helper for the index kernels).
pub fn resolve_predicates(
    predicates: &[DcPredicate],
    schema: &Schema,
    snapshot: &ColumnSnapshot,
) -> Result<Vec<CodedPredicate>> {
    predicates
        .iter()
        .map(|p| CodedPredicate::resolve(p, schema, snapshot))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Value};
    use daisy_storage::Table;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("zip", DataType::Int),
            ("city", DataType::Str),
            ("rate", DataType::Float),
        ])
        .unwrap();
        Table::from_rows(
            "t",
            schema,
            vec![
                vec![
                    Value::Int(9001),
                    Value::from("Los Angeles"),
                    Value::Float(0.5),
                ],
                vec![
                    Value::Int(9001),
                    Value::from("San Francisco"),
                    Value::Float(f64::NAN),
                ],
                vec![Value::Null, Value::from("Aachen"), Value::Float(0.25)],
                vec![Value::Int(10001), Value::Null, Value::Float(0.5)],
                vec![Value::Int(2), Value::from("Aachen"), Value::Null],
            ],
        )
        .unwrap()
    }

    /// Every operator × operand shape × row pair must agree with the row
    /// path exactly — including NULLs, NaN, int/float coercion and string
    /// constants absent from the dictionary.
    #[test]
    fn coded_eval_matches_row_eval_everywhere() {
        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let schema = table.schema();
        let ops = [
            ComparisonOp::Eq,
            ComparisonOp::Neq,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ];
        let operands = [
            Operand::attr(0, "zip"),
            Operand::attr(0, "city"),
            Operand::attr(0, "rate"),
            Operand::attr(1, "zip"),
            Operand::attr(1, "city"),
            Operand::attr(1, "rate"),
            Operand::Const(Value::Int(9001)),
            Operand::Const(Value::Float(0.5)),
            Operand::Const(Value::from("Los Angeles")), // present in dict
            Operand::Const(Value::from("Miami")),       // absent from dict
            Operand::Const(Value::from("Aachen!")),     // absent, after "Aachen"
            Operand::Const(Value::Null),
        ];
        for left in &operands {
            for right in &operands {
                for op in ops {
                    let pred = DcPredicate::new(left.clone(), op, right.clone());
                    let coded = CodedPredicate::resolve(&pred, schema, &snapshot).unwrap();
                    for i in 0..table.len() {
                        for j in 0..table.len() {
                            let t1 = &table.tuples()[i];
                            let t2 = &table.tuples()[j];
                            let row = pred.eval(schema, &[t1, t2]).unwrap();
                            let col = coded.eval(&snapshot, [i, j]);
                            assert_eq!(row, col, "`{pred}` diverged on rows ({i}, {j})");
                        }
                    }
                }
            }
        }
    }

    /// Overlay-aware reads must be byte-identical to materialising the
    /// patched table and rebuilding its snapshot — including patches that
    /// intern strings the base dictionary has never seen, NULL out a cell,
    /// or change a value's type-coercion class.
    #[test]
    fn overlay_eval_matches_materialised_snapshot() {
        let base = table();
        let snapshot = ColumnSnapshot::build(&base).unwrap();
        let schema = base.schema();
        // Staged (uncommitted) cell patches: (row, column) → new value.
        let patches: Vec<((usize, usize), Value)> = vec![
            ((0, 1), Value::from("Miami")), // new dictionary string
            ((1, 2), Value::Float(0.75)),   // NaN → finite
            ((2, 0), Value::Int(9001)),     // NULL → value
            ((3, 1), Value::Null),          // value → NULL
        ];
        // Ground truth: a materialised table with the patches applied.
        let mut patched_table = base.clone();
        for ((row, col), value) in &patches {
            let id = patched_table.tuples()[*row].id;
            *patched_table.tuple_mut(id).unwrap().cell_mut(*col).unwrap() =
                daisy_storage::Cell::Determinate(value.clone());
        }
        let patched_snapshot = ColumnSnapshot::build(&patched_table).unwrap();

        let ops = [
            ComparisonOp::Eq,
            ComparisonOp::Neq,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ];
        let operands = [
            Operand::attr(0, "zip"),
            Operand::attr(0, "city"),
            Operand::attr(1, "rate"),
            Operand::attr(1, "city"),
            Operand::Const(Value::from("Miami")),
            Operand::Const(Value::Int(9001)),
            Operand::Const(Value::Null),
        ];
        for left in &operands {
            for right in &operands {
                for op in ops {
                    let pred = DcPredicate::new(left.clone(), op, right.clone());
                    let coded = CodedPredicate::resolve(&pred, schema, &snapshot).unwrap();
                    let truth = CodedPredicate::resolve(&pred, schema, &patched_snapshot).unwrap();
                    for i in 0..base.len() {
                        for j in 0..base.len() {
                            let overlay_read = |binding: usize, column: usize| {
                                let row = [i, j][binding];
                                patches
                                    .iter()
                                    .find(|((r, c), _)| *r == row && *c == column)
                                    .map(|(_, v)| v.clone())
                            };
                            assert_eq!(
                                coded.eval_overlay(&snapshot, [i, j], &overlay_read),
                                truth.eval(&patched_snapshot, [i, j]),
                                "`{pred}` diverged on rows ({i}, {j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn const_const_predicates_are_pre_evaluated() {
        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        // Both absent from the dictionary: probes alone could not order
        // them, the resolve-time evaluation must.
        let pred = DcPredicate::new(
            Operand::Const(Value::from("absent-a")),
            ComparisonOp::Lt,
            Operand::Const(Value::from("absent-b")),
        );
        let coded = CodedPredicate::resolve(&pred, table.schema(), &snapshot).unwrap();
        assert!(coded.eval(&snapshot, [0, 0]));
        let pred = DcPredicate::new(
            Operand::Const(Value::Int(5)),
            ComparisonOp::Gt,
            Operand::Const(Value::Int(7)),
        );
        let coded = CodedPredicate::resolve(&pred, table.schema(), &snapshot).unwrap();
        assert!(!coded.eval(&snapshot, [0, 0]));
    }

    #[test]
    fn resolve_rejects_bad_references() {
        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let three_tuples = DcPredicate::new(
            Operand::attr(2, "zip"),
            ComparisonOp::Eq,
            Operand::attr(0, "zip"),
        );
        assert!(CodedPredicate::resolve(&three_tuples, table.schema(), &snapshot).is_err());
        let unknown = DcPredicate::new(
            Operand::attr(0, "nope"),
            ComparisonOp::Eq,
            Operand::attr(1, "zip"),
        );
        assert!(CodedPredicate::resolve(&unknown, table.schema(), &snapshot).is_err());
    }

    /// Every operator × scalar-operand shape × boolean connective must agree
    /// with `eval_expected` exactly on every row — including NULLs, NaN,
    /// int/float coercion and string literals absent from the dictionary.
    /// Probabilistic cells are included: a current snapshot stores their
    /// expected value, so the coded path still mirrors `eval_expected`.
    #[test]
    fn coded_scalar_eval_matches_expected_eval_everywhere() {
        use daisy_storage::{Candidate, Cell};

        let mut table = table();
        // Relax one zip cell: {9001, 10001}, expected 9001.
        let id = table.tuples()[0].id;
        *table.tuple_mut(id).unwrap().cell_mut(0).unwrap() = Cell::probabilistic(vec![
            Candidate::exact(Value::Int(9001), 0.6),
            Candidate::exact(Value::Int(10001), 0.4),
        ]);
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let schema = table.schema();
        let ops = [
            ComparisonOp::Eq,
            ComparisonOp::Neq,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ];
        let scalars = [
            ScalarExpr::col("zip"),
            ScalarExpr::col("city"),
            ScalarExpr::col("rate"),
            ScalarExpr::lit(Value::Int(9001)),
            ScalarExpr::lit(Value::Float(0.5)),
            ScalarExpr::lit(Value::Float(f64::NAN)),
            ScalarExpr::lit(Value::from("Los Angeles")), // present in dict
            ScalarExpr::lit(Value::from("Miami")),       // absent from dict
            ScalarExpr::lit(Value::from("Aachen!")),     // absent, after "Aachen"
            ScalarExpr::lit(Value::Null),
        ];
        let mut exprs: Vec<BoolExpr> = vec![BoolExpr::True];
        for left in &scalars {
            for right in &scalars {
                for op in ops {
                    exprs.push(BoolExpr::Compare {
                        left: left.clone(),
                        op,
                        right: right.clone(),
                    });
                }
            }
        }
        // Boolean connectives over a few representative comparisons.
        let a = BoolExpr::cmp("zip", ComparisonOp::Ge, 9001);
        let b = BoolExpr::eq("city", "Aachen");
        let c = BoolExpr::cmp("rate", ComparisonOp::Lt, 0.5);
        exprs.push(a.clone().and(b.clone()));
        exprs.push(a.clone().or(c.clone()));
        exprs.push(BoolExpr::Not(Box::new(a.clone())).and(b.or(c)));
        for expr in &exprs {
            let coded = CodedScalarPredicate::resolve(expr, schema, &snapshot).unwrap();
            for (i, tuple) in table.tuples().iter().enumerate() {
                let row = expr.eval_expected(schema, tuple).unwrap();
                let col = coded.eval(&snapshot, i);
                assert_eq!(row, col, "`{expr}` diverged on row {i}");
            }
        }
    }

    #[test]
    fn coded_scalar_tracks_probabilistic_references() {
        use daisy_storage::{Candidate, Cell};

        let mut table = table();
        let id = table.tuples()[1].id;
        *table.tuple_mut(id).unwrap().cell_mut(2).unwrap() = Cell::probabilistic(vec![
            Candidate::exact(Value::Float(0.5), 0.5),
            Candidate::exact(Value::Float(0.9), 0.5),
        ]);
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let on_rate = CodedScalarPredicate::resolve(
            &BoolExpr::cmp("rate", ComparisonOp::Gt, 0.1),
            table.schema(),
            &snapshot,
        )
        .unwrap();
        assert_eq!(on_rate.columns(), &[2]);
        assert!(on_rate.references_probabilistic(&table.tuples()[1]));
        assert!(!on_rate.references_probabilistic(&table.tuples()[0]));
        let on_zip =
            CodedScalarPredicate::resolve(&BoolExpr::eq("zip", 9001), table.schema(), &snapshot)
                .unwrap();
        assert!(!on_zip.references_probabilistic(&table.tuples()[1]));
        // Literal-only predicates reference nothing.
        let trivial = CodedScalarPredicate::resolve(
            &BoolExpr::Compare {
                left: ScalarExpr::lit(1),
                op: ComparisonOp::Lt,
                right: ScalarExpr::lit(2),
            },
            table.schema(),
            &snapshot,
        )
        .unwrap();
        assert!(trivial.columns().is_empty());
        assert!(!trivial.references_probabilistic(&table.tuples()[0]));
        assert!(trivial.eval(&snapshot, 0));
    }

    #[test]
    fn coded_scalar_resolve_rejects_unknown_columns() {
        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let expr = BoolExpr::eq("nope", 1).or(BoolExpr::eq("zip", 9001));
        assert!(CodedScalarPredicate::resolve(&expr, table.schema(), &snapshot).is_err());
    }

    #[test]
    fn resolve_batch_maps_every_predicate() {
        let table = table();
        let snapshot = ColumnSnapshot::build(&table).unwrap();
        let preds = vec![
            DcPredicate::new(
                Operand::attr(0, "zip"),
                ComparisonOp::Eq,
                Operand::attr(1, "zip"),
            ),
            DcPredicate::new(
                Operand::attr(0, "rate"),
                ComparisonOp::Gt,
                Operand::attr(1, "rate"),
            ),
        ];
        let coded = resolve_predicates(&preds, table.schema(), &snapshot).unwrap();
        assert_eq!(coded.len(), 2);
        // Rows 0 and 1 share zip 9001.
        assert!(coded[0].eval(&snapshot, [0, 1]));
        assert!(!coded[0].eval(&snapshot, [0, 3]));
    }
}
