//! Repair-quality metrics: precision, recall, F1 against a ground truth.
//!
//! The paper measures "precision (correct updates / total updates) and
//! recall (correct updates / total errors)" (§7) on the hospital dataset,
//! whose clean version exists.  Here the ground truth is a clean copy of the
//! dirty table with identical tuple ids.

use serde::{Deserialize, Serialize};

use daisy_common::{Result, TupleId, Value};
use daisy_storage::Table;

/// Precision / recall / F1 of a set of repairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairQuality {
    /// Correct updates / total updates.
    pub precision: f64,
    /// Correct updates / total errors in the dirty table.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of repairs proposed.
    pub updates: usize,
    /// Number of erroneous cells in the dirty table.
    pub errors: usize,
}

impl RepairQuality {
    fn compute(correct: usize, updates: usize, errors: usize) -> RepairQuality {
        let precision = if updates == 0 {
            // No updates proposed: vacuously precise.
            1.0
        } else {
            correct as f64 / updates as f64
        };
        let recall = if errors == 0 {
            1.0
        } else {
            correct as f64 / errors as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        RepairQuality {
            precision,
            recall,
            f1,
            updates,
            errors,
        }
    }
}

/// Evaluates repairs `(tuple, column, new value)` produced for `dirty`
/// against the clean `truth` table (same tuple ids, same schema).
///
/// * an *error* is a cell whose dirty value differs from the truth,
/// * an update is *correct* when it targets an erroneous cell and restores
///   the true value.
pub fn evaluate_repairs(
    dirty: &Table,
    truth: &Table,
    repairs: &[(TupleId, usize, Value)],
) -> Result<RepairQuality> {
    let mut errors = 0usize;
    for tuple in dirty.tuples() {
        let Some(clean) = truth.tuple(tuple.id) else {
            continue;
        };
        for (column, _) in tuple.cells.iter().enumerate() {
            let dirty_value = dirty
                .tuple(tuple.id)
                .expect("tuple present")
                .value(column)?;
            // A cell is erroneous w.r.t. the ORIGINAL dirty data; repairs may
            // have been applied to `dirty` in place, so prefer the recorded
            // original when counting errors is the caller's responsibility.
            let true_value = clean.value(column)?;
            if dirty_value != true_value {
                errors += 1;
            }
        }
    }
    // Deduplicate by cell: several rules may propose the same repair for the
    // same cell (e.g. a zip error reachable through both ϕ2 and ϕ3); it is
    // still a single update of a single cell.
    let mut seen: std::collections::HashSet<(TupleId, usize)> = std::collections::HashSet::new();
    let mut updates = 0usize;
    let mut correct = 0usize;
    for (tuple_id, column, value) in repairs {
        if !seen.insert((*tuple_id, *column)) {
            continue;
        }
        updates += 1;
        let Some(clean) = truth.tuple(*tuple_id) else {
            continue;
        };
        if clean.value(*column)? == *value {
            // Only count it if the dirty cell actually needed fixing.
            if let Some(dirty_tuple) = dirty.tuple(*tuple_id) {
                if dirty_tuple.value(*column)? != *value {
                    correct += 1;
                }
            }
        }
    }
    Ok(RepairQuality::compute(correct, updates, errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema};

    fn tables() -> (Table, Table) {
        let schema =
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let truth = Table::from_rows(
            "truth",
            schema.clone(),
            vec![
                vec![Value::Int(9001), Value::from("LA")],
                vec![Value::Int(9001), Value::from("LA")],
                vec![Value::Int(10001), Value::from("NY")],
            ],
        )
        .unwrap();
        let dirty = Table::from_rows(
            "dirty",
            schema,
            vec![
                vec![Value::Int(9001), Value::from("LA")],
                vec![Value::Int(9001), Value::from("SF")], // error
                vec![Value::Int(10001), Value::from("NY")],
            ],
        )
        .unwrap();
        (dirty, truth)
    }

    #[test]
    fn perfect_repair_scores_one() {
        let (dirty, truth) = tables();
        let repairs = vec![(TupleId::new(1), 1usize, Value::from("LA"))];
        let q = evaluate_repairs(&dirty, &truth, &repairs).unwrap();
        assert_eq!(q.errors, 1);
        assert_eq!(q.updates, 1);
        assert!((q.precision - 1.0).abs() < 1e-12);
        assert!((q.recall - 1.0).abs() < 1e-12);
        assert!((q.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_and_useless_repairs_hurt_precision() {
        let (dirty, truth) = tables();
        let repairs = vec![
            (TupleId::new(1), 1usize, Value::from("Boston")), // wrong value
            (TupleId::new(0), 1usize, Value::from("LA")),     // already clean
        ];
        let q = evaluate_repairs(&dirty, &truth, &repairs).unwrap();
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn missed_errors_hurt_recall_only() {
        let (dirty, truth) = tables();
        let q = evaluate_repairs(&dirty, &truth, &[]).unwrap();
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.errors, 1);
    }
}
