//! # daisy-offline
//!
//! The baselines of the Daisy evaluation (§7):
//!
//! * [`full`] — the optimised offline ("Full Cleaning") implementation the
//!   paper compares against: FD error detection by group-by, DC error
//!   detection by a pairwise theta check, probabilistic repairs computed by
//!   traversing the dataset per erroneous group, applied over the whole
//!   dataset before any query runs,
//! * [`holoclean`] — a simplified HoloClean-like repairer: candidate domains
//!   from value co-occurrence statistics, inference by weighted voting of
//!   co-occurrence and constraint-violation evidence,
//! * [`metrics`] — precision / recall / F1 against a ground-truth table.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod full;
pub mod holoclean;
pub mod metrics;

pub use full::{offline_clean_dc, offline_clean_fd, OfflineOutcome};
pub use holoclean::{holoclean_repair, HoloCleanOutcome};
pub use metrics::{evaluate_repairs, RepairQuality};
