//! The offline "Full Cleaning" baseline.
//!
//! This is the paper's own scale-out offline implementation (§7, Experimental
//! Setup): it combines the error-detection optimisations of BigDansing (a
//! group-by instead of a self-join for FDs, a partitioned theta check for
//! DCs) with probabilistic repairs whose candidate domains come from value
//! co-occurrences.  Crucially — and this is what Daisy's relaxation avoids —
//! the repair phase **traverses the dataset once per erroneous group** to
//! collect the candidate values and their frequencies, which makes its cost
//! `O(ε·n)` and explains the gap in Figs. 5–9 and Table 8.

use std::collections::HashMap;

use daisy_common::{ColumnId, Result, Value, WorldId};
use daisy_expr::{DenialConstraint, FunctionalDependency, Violation};
use daisy_storage::{Candidate, Cell, Delta, Table};

/// The outcome of one offline cleaning pass.
#[derive(Debug, Clone, Default)]
pub struct OfflineOutcome {
    /// Number of cells that received candidate fixes.
    pub errors_repaired: usize,
    /// Number of dataset traversals performed by the repair phase.
    pub traversals: usize,
    /// Tuple pairs compared during detection (DCs only).
    pub pairs_compared: usize,
    /// The violations detected (DCs only; FD violations are group-level).
    pub violations: Vec<Violation>,
}

/// Offline cleaning of one FD over the whole table.
///
/// Detection groups the table by the FD's lhs (hash group-by, `O(n)`).  For
/// every dirty group, the repair phase scans the dataset to collect the rhs
/// candidates of the group and, for every ambiguous rhs value, the lhs
/// candidates — one traversal per dirty group, mirroring the baseline the
/// paper describes.  The repairs are applied in place.
pub fn offline_clean_fd(table: &mut Table, fd: &FunctionalDependency) -> Result<OfflineOutcome> {
    let lhs_columns: Vec<usize> = fd
        .lhs
        .iter()
        .map(|c| table.column_index(c))
        .collect::<Result<_>>()?;
    let rhs_column = table.column_index(&fd.rhs)?;

    // Detection: group by lhs.
    let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
    for (pos, tuple) in table.tuples().iter().enumerate() {
        let key = daisy_storage::statistics::composite_key(tuple, &lhs_columns)?;
        groups.entry(key).or_default().push(pos);
    }
    let mut dirty_groups: Vec<(Value, Vec<usize>)> = groups
        .into_iter()
        .filter(|(_, members)| {
            let mut first: Option<Value> = None;
            members.iter().any(|&pos| {
                let v = table.tuples()[pos].value(rhs_column).unwrap_or(Value::Null);
                match &first {
                    None => {
                        first = Some(v);
                        false
                    }
                    Some(f) => *f != v,
                }
            })
        })
        .collect();
    dirty_groups.sort_by(|a, b| a.0.cmp(&b.0));

    let mut outcome = OfflineOutcome::default();
    let mut delta = Delta::new();
    let single_lhs = lhs_columns.len() == 1;

    for (lhs_value, members) in &dirty_groups {
        // One dataset traversal per dirty group: collect the rhs candidates
        // of the group and the lhs candidates of every rhs value seen in it.
        outcome.traversals += 1;
        let mut rhs_counts: HashMap<Value, usize> = HashMap::new();
        let mut lhs_counts_per_rhs: HashMap<Value, HashMap<Value, usize>> = HashMap::new();
        let member_rhs: Vec<Value> = members
            .iter()
            .map(|&pos| table.tuples()[pos].value(rhs_column))
            .collect::<Result<_>>()?;
        for tuple in table.tuples() {
            let key = daisy_storage::statistics::composite_key(tuple, &lhs_columns)?;
            let rhs = tuple.value(rhs_column)?;
            if key == *lhs_value {
                *rhs_counts.entry(rhs.clone()).or_insert(0) += 1;
            }
            if member_rhs.contains(&rhs) {
                *lhs_counts_per_rhs
                    .entry(rhs)
                    .or_default()
                    .entry(key)
                    .or_insert(0) += 1;
            }
        }
        let rhs_total: usize = rhs_counts.values().sum();
        let mut rhs_candidates: Vec<(Value, usize)> = rhs_counts.into_iter().collect();
        rhs_candidates.sort_by(|a, b| a.0.cmp(&b.0));

        for (&pos, rhs) in members.iter().zip(&member_rhs) {
            let tuple_id = table.tuples()[pos].id;
            // rhs repair.
            let world = WorldId::new(tuple_id.raw() * 2);
            let candidates: Vec<Candidate> = rhs_candidates
                .iter()
                .map(|(v, c)| {
                    Candidate::exact_in_world(v.clone(), *c as f64 / rhs_total as f64, world)
                })
                .collect();
            if candidates.len() > 1 {
                delta.push_update(
                    tuple_id,
                    ColumnId::new(rhs_column as u64),
                    Cell::probabilistic(candidates),
                );
                outcome.errors_repaired += 1;
            }
            // lhs repair for ambiguous rhs values.
            if single_lhs {
                if let Some(lhs_counts) = lhs_counts_per_rhs.get(rhs) {
                    if lhs_counts.len() > 1 {
                        let total: usize = lhs_counts.values().sum();
                        let mut cands: Vec<(Value, usize)> =
                            lhs_counts.iter().map(|(v, c)| (v.clone(), *c)).collect();
                        cands.sort_by(|a, b| a.0.cmp(&b.0));
                        let world = WorldId::new(tuple_id.raw() * 2 + 1);
                        delta.push_update(
                            tuple_id,
                            ColumnId::new(lhs_columns[0] as u64),
                            Cell::probabilistic(
                                cands
                                    .into_iter()
                                    .map(|(v, c)| {
                                        Candidate::exact_in_world(v, c as f64 / total as f64, world)
                                    })
                                    .collect(),
                            ),
                        );
                        outcome.errors_repaired += 1;
                    }
                }
            }
        }
    }
    table.apply_delta(&delta)?;
    Ok(outcome)
}

/// Offline cleaning of one general DC over the whole table: the full
/// upper-diagonal pairwise check followed by holistic candidate-range fixes
/// (shared with Daisy through `daisy-core`'s repair routine would create a
/// dependency cycle, so the fix computation is re-implemented here in its
/// simplest form: one range candidate per violated atom per side plus the
/// original value).
pub fn offline_clean_dc(table: &mut Table, dc: &DenialConstraint) -> Result<OfflineOutcome> {
    let schema = table.schema().clone();
    let mut outcome = OfflineOutcome::default();
    let tuples = table.tuples().to_vec();
    let mut violations = Vec::new();
    for (i, a) in tuples.iter().enumerate() {
        for b in tuples.iter().skip(i + 1) {
            outcome.pairs_compared += 1;
            if dc.violated_by(&schema, &[a, b])? {
                violations.push(Violation::pair(dc.id, a.id, b.id));
            } else if dc.violated_by(&schema, &[b, a])? {
                violations.push(Violation::pair(dc.id, b.id, a.id));
            }
        }
    }
    let mut delta = Delta::new();
    let mut touched: HashMap<(daisy_common::TupleId, usize), Vec<Candidate>> = HashMap::new();
    let share = 1.0 / dc.predicates.len().max(1) as f64;
    for violation in &violations {
        let bound: Vec<&daisy_storage::Tuple> = violation
            .tuples
            .iter()
            .filter_map(|id| tuples.iter().find(|t| t.id == *id))
            .collect();
        if bound.len() != dc.tuple_count {
            continue;
        }
        for pred in &dc.predicates {
            for (target, other, op) in [
                (&pred.left, &pred.right, pred.op),
                (&pred.right, &pred.left, pred.op.flip()),
            ] {
                let (
                    daisy_expr::Operand::Attr {
                        tuple: ti,
                        column: tc,
                    },
                    daisy_expr::Operand::Attr {
                        tuple: oi,
                        column: oc,
                    },
                ) = (target, other)
                else {
                    continue;
                };
                let (Some(tt), Some(ot)) = (bound.get(*ti), bound.get(*oi)) else {
                    continue;
                };
                let col = schema.index_of(tc)?;
                let ocol = schema.index_of(oc)?;
                let other_value = ot.value(ocol)?;
                let fix = match op.negate() {
                    daisy_expr::ComparisonOp::Lt | daisy_expr::ComparisonOp::Le => {
                        daisy_storage::CandidateValue::LessThan(other_value)
                    }
                    daisy_expr::ComparisonOp::Gt | daisy_expr::ComparisonOp::Ge => {
                        daisy_storage::CandidateValue::GreaterThan(other_value)
                    }
                    daisy_expr::ComparisonOp::Eq => {
                        daisy_storage::CandidateValue::Exact(other_value)
                    }
                    daisy_expr::ComparisonOp::Neq => continue,
                };
                let current = tt.value(col)?;
                if fix.could_equal(&current) {
                    continue;
                }
                touched
                    .entry((tt.id, col))
                    .or_default()
                    .push(Candidate::range(fix, share));
            }
        }
    }
    let mut keys: Vec<_> = touched.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let mut candidates = touched.remove(&key).expect("listed");
        let original = tuples
            .iter()
            .find(|t| t.id == key.0)
            .and_then(|t| t.value(key.1).ok())
            .unwrap_or(Value::Null);
        let range_mass: f64 = candidates.iter().map(|c| c.probability).sum();
        let avg = range_mass / candidates.len().max(1) as f64;
        candidates.push(Candidate::exact(original, (1.0 - range_mass).max(avg)));
        delta.push_update(
            key.0,
            ColumnId::new(key.1 as u64),
            Cell::probabilistic(candidates),
        );
        outcome.errors_repaired += 1;
    }
    table.apply_delta(&delta)?;
    outcome.violations = violations;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, TupleId};

    fn cities() -> Table {
        Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("San Francisco")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn fd_full_cleaning_repairs_every_dirty_group() {
        let mut table = cities();
        let outcome =
            offline_clean_fd(&mut table, &FunctionalDependency::new(&["zip"], "city")).unwrap();
        // Both dirty groups (9001 and 10001) are repaired — unlike Daisy,
        // which only repairs the groups the queries touch.
        assert_eq!(outcome.traversals, 2);
        assert!(outcome.errors_repaired >= 5);
        assert_eq!(table.probabilistic_tuple_count(), 5);
        // The probabilities match Daisy's frequency-based fixes.
        let cell = table.tuple(TupleId::new(0)).unwrap().cell(1).unwrap();
        let la = cell
            .candidates()
            .iter()
            .find(|c| c.value.could_equal(&Value::from("Los Angeles")))
            .unwrap();
        assert!((la.probability - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn clean_table_needs_no_repairs() {
        let mut table = Table::from_rows(
            "t",
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        let outcome =
            offline_clean_fd(&mut table, &FunctionalDependency::new(&["a"], "b")).unwrap();
        assert_eq!(outcome.errors_repaired, 0);
        assert_eq!(outcome.traversals, 0);
        assert_eq!(table.probabilistic_tuple_count(), 0);
    }

    #[test]
    fn dc_full_cleaning_detects_and_repairs_inequality_violations() {
        let mut table = Table::from_rows(
            "emp",
            Schema::from_pairs(&[("salary", DataType::Int), ("tax", DataType::Float)]).unwrap(),
            vec![
                vec![Value::Int(1000), Value::Float(0.1)],
                vec![Value::Int(3000), Value::Float(0.2)],
                vec![Value::Int(2000), Value::Float(0.3)],
            ],
        )
        .unwrap();
        let dc = DenialConstraint::parse("phi", "t1.salary < t2.salary & t1.tax > t2.tax").unwrap();
        let outcome = offline_clean_dc(&mut table, &dc).unwrap();
        assert_eq!(outcome.violations.len(), 1);
        assert_eq!(outcome.pairs_compared, 3);
        assert!(outcome.errors_repaired >= 2);
        assert!(table.tuple(TupleId::new(1)).unwrap().is_probabilistic());
    }
}
