//! A simplified HoloClean-like baseline.
//!
//! HoloClean repairs cells with probabilistic inference over features built
//! from integrity constraints, co-occurrence statistics and (when available)
//! master data.  Reproducing its factor-graph learning is out of scope and
//! unnecessary for the paper's comparison; what Tables 5–7 exercise is
//!
//! * **domain generation** — which candidate values a dirty cell may take
//!   (HoloClean prunes the domain with a co-occurrence threshold, which is
//!   why its recall drops when few rules are known, and why it wins on ϕ1
//!   alone where its quantitative statistics compensate), and
//! * **inference cost** — HoloClean traverses the dataset per dirty group to
//!   build its features, so its runtime grows much faster than Daisy's.
//!
//! This module implements that behaviour: the candidate domain of a dirty
//! cell is the set of values co-occurring with the tuple's other attributes
//! above a pruning threshold, and inference picks the candidate with the
//! highest co-occurrence vote.  When handed Daisy's domains instead
//! (`DaisyH` in Table 5), the same inference runs over the candidate sets a
//! `DaisyEngine` computed.

use std::collections::HashMap;

use daisy_common::{Result, Value};
use daisy_expr::FunctionalDependency;
use daisy_storage::{Cell, Table};

/// The outcome of a HoloClean-like repair pass.
#[derive(Debug, Clone, Default)]
pub struct HoloCleanOutcome {
    /// The inferred repairs: (tuple id, column index, repaired value).
    pub repairs: Vec<(daisy_common::TupleId, usize, Value)>,
    /// Number of candidate values considered across all dirty cells.
    pub domain_size: usize,
    /// Number of dataset traversals performed while building features.
    pub traversals: usize,
}

/// Runs the baseline over a table for a set of FDs.
///
/// `domain_pruning` is the co-occurrence-count threshold below which a
/// candidate is dropped from a cell's domain (HoloClean's pruning
/// optimisation; the paper notes it trades accuracy for performance).
pub fn holoclean_repair(
    table: &Table,
    fds: &[FunctionalDependency],
    domain_pruning: usize,
) -> Result<HoloCleanOutcome> {
    let mut outcome = HoloCleanOutcome::default();
    // Dirty cells: rhs cells of lhs-groups with conflicting rhs values,
    // detected per FD.
    for fd in fds {
        let lhs_columns: Vec<usize> = fd
            .lhs
            .iter()
            .map(|c| table.column_index(c))
            .collect::<Result<_>>()?;
        let rhs_column = table.column_index(&fd.rhs)?;
        let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
        for (pos, tuple) in table.tuples().iter().enumerate() {
            let key = daisy_storage::statistics::composite_key(tuple, &lhs_columns)?;
            groups.entry(key).or_default().push(pos);
        }
        let mut dirty: Vec<(Value, Vec<usize>)> = groups
            .into_iter()
            .filter(|(_, members)| {
                let mut distinct: Vec<Value> = members
                    .iter()
                    .map(|&p| table.tuples()[p].value(rhs_column).unwrap_or(Value::Null))
                    .collect();
                distinct.sort();
                distinct.dedup();
                distinct.len() > 1
            })
            .collect();
        dirty.sort_by(|a, b| a.0.cmp(&b.0));

        for (lhs_value, members) in dirty {
            // Feature building: one dataset traversal per dirty group, like
            // HoloClean's featurisation over the relevant slices.
            outcome.traversals += 1;
            let mut votes: HashMap<Value, usize> = HashMap::new();
            for tuple in table.tuples() {
                let key = daisy_storage::statistics::composite_key(tuple, &lhs_columns)?;
                if key == lhs_value {
                    *votes.entry(tuple.value(rhs_column)?).or_insert(0) += 1;
                }
            }
            // Domain pruning: drop candidates seen fewer than the threshold.
            let mut domain: Vec<(Value, usize)> = votes
                .into_iter()
                .filter(|(_, c)| *c >= domain_pruning)
                .collect();
            domain.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            outcome.domain_size += domain.len();
            let Some((winner, _)) = domain.first().cloned() else {
                continue;
            };
            for &pos in &members {
                let tuple = &table.tuples()[pos];
                let current = tuple.value(rhs_column)?;
                if current != winner {
                    outcome.repairs.push((tuple.id, rhs_column, winner.clone()));
                }
            }
        }
    }
    Ok(outcome)
}

/// Runs the same majority inference but over externally supplied candidate
/// domains (Daisy's probabilistic cells) — the `DaisyH` / `DaisyP`
/// configurations of Table 5.  For every probabilistic cell the most
/// probable candidate wins; cells whose winner equals the cell's original
/// (dirty) value produce no update, matching the paper's metric where an
/// *update* is an actual change to the data.
pub fn infer_over_daisy_domains(
    table: &Table,
    original: &Table,
) -> Vec<(daisy_common::TupleId, usize, Value)> {
    let mut repairs = Vec::new();
    for tuple in table.tuples() {
        for (column, cell) in tuple.cells.iter().enumerate() {
            if !cell.is_probabilistic() {
                continue;
            }
            let winner = cell.most_probable();
            let unchanged = original
                .tuple(tuple.id)
                .and_then(|t| t.value(column).ok())
                .map(|v| v == winner)
                .unwrap_or(false);
            if !unchanged {
                repairs.push((tuple.id, column, winner));
            }
        }
    }
    repairs
}

/// HoloClean-style inference over Daisy's candidate domains (the `DaisyH`
/// configuration of Table 5): every exact candidate of a probabilistic cell
/// is scored by how often it co-occurs with the tuple's *other* determinate
/// attribute values across the table (the quantitative-statistics features of
/// HoloClean), with the candidate's Daisy probability breaking ties.  Cells
/// whose winner equals the original value produce no update.
pub fn infer_with_cooccurrence(
    cleaned: &Table,
    original: &Table,
) -> Result<Vec<(daisy_common::TupleId, usize, Value)>> {
    let arity = cleaned.schema().len();
    // Per-column pair co-occurrence counts are expensive to materialise in
    // full; instead count, for each (column, value, other-column, other-value)
    // actually needed, the matching tuples lazily via per-column value → rows
    // indexes built once.
    let mut column_index: Vec<HashMap<Value, Vec<usize>>> = vec![HashMap::new(); arity];
    for (pos, tuple) in cleaned.tuples().iter().enumerate() {
        for (index, cell) in column_index.iter_mut().zip(&tuple.cells) {
            if let Some(v) = cell.as_determinate() {
                index.entry(v.clone()).or_default().push(pos);
            }
        }
    }
    let mut repairs = Vec::new();
    for tuple in cleaned.tuples() {
        for (column, cell) in tuple.cells.iter().enumerate() {
            if !cell.is_probabilistic() {
                continue;
            }
            let mut best: Option<(f64, f64, Value)> = None;
            for candidate in cell.candidates() {
                let Some(value) = candidate.value.as_exact() else {
                    continue;
                };
                // Feature score: co-occurrence of the candidate with the
                // tuple's other determinate values.
                let rows_with_value: Option<&Vec<usize>> = column_index[column].get(value);
                let mut score = 0.0;
                if let Some(rows) = rows_with_value {
                    for &pos in rows {
                        let other = &cleaned.tuples()[pos];
                        if other.id == tuple.id {
                            continue;
                        }
                        let mut matches = 0usize;
                        for c in 0..arity {
                            if c == column {
                                continue;
                            }
                            let (Some(a), Some(b)) = (
                                tuple.cells.get(c).and_then(Cell::as_determinate),
                                other.cells.get(c).and_then(Cell::as_determinate),
                            ) else {
                                continue;
                            };
                            if a == b {
                                matches += 1;
                            }
                        }
                        score += matches as f64;
                    }
                }
                let better = match &best {
                    None => true,
                    Some((bs, bp, _)) => {
                        score > *bs || (score == *bs && candidate.probability > *bp)
                    }
                };
                if better {
                    best = Some((score, candidate.probability, value.clone()));
                }
            }
            let Some((_, _, winner)) = best else { continue };
            let unchanged = original
                .tuple(tuple.id)
                .and_then(|t| t.value(column).ok())
                .map(|v| v == winner)
                .unwrap_or(false);
            if !unchanged {
                repairs.push((tuple.id, column, winner));
            }
        }
    }
    Ok(repairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_common::{DataType, Schema, TupleId};

    fn cities() -> Table {
        Table::from_rows(
            "cities",
            Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap(),
            vec![
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(9001), Value::from("San Francisco")],
                vec![Value::Int(9001), Value::from("Los Angeles")],
                vec![Value::Int(10001), Value::from("New York")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn majority_vote_repairs_minority_value() {
        let outcome =
            holoclean_repair(&cities(), &[FunctionalDependency::new(&["zip"], "city")], 1).unwrap();
        assert_eq!(outcome.repairs.len(), 1);
        let (tuple, column, value) = &outcome.repairs[0];
        assert_eq!(*tuple, TupleId::new(1));
        assert_eq!(*column, 1);
        assert_eq!(*value, Value::from("Los Angeles"));
        assert_eq!(outcome.traversals, 1);
        assert_eq!(outcome.domain_size, 2);
    }

    #[test]
    fn aggressive_pruning_shrinks_the_domain() {
        let outcome =
            holoclean_repair(&cities(), &[FunctionalDependency::new(&["zip"], "city")], 2).unwrap();
        // Only "Los Angeles" (count 2) survives the pruning threshold.
        assert_eq!(outcome.domain_size, 1);
        assert_eq!(outcome.repairs.len(), 1);
    }

    #[test]
    fn clean_tables_produce_no_repairs() {
        let table = Table::from_rows(
            "t",
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap(),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        let outcome =
            holoclean_repair(&table, &[FunctionalDependency::new(&["a"], "b")], 1).unwrap();
        assert!(outcome.repairs.is_empty());
        assert!(infer_over_daisy_domains(&table, &table).is_empty());
    }

    #[test]
    fn daisy_domain_inference_skips_unchanged_cells() {
        use daisy_storage::{Candidate, Cell};
        // A probabilistic city cell whose most probable candidate already
        // equals the original value must not produce an update.
        let original = cities();
        let mut cleaned = original.clone();
        let mut delta = daisy_storage::Delta::new();
        // Tuple 1 (9001, San Francisco): winner is Los Angeles → one update.
        delta.push_update(
            TupleId::new(1),
            daisy_common::ColumnId::new(1),
            Cell::probabilistic(vec![
                Candidate::exact(Value::from("Los Angeles"), 2.0),
                Candidate::exact(Value::from("San Francisco"), 1.0),
            ]),
        );
        // Tuple 0 (9001, Los Angeles): winner equals the original → no update.
        delta.push_update(
            TupleId::new(0),
            daisy_common::ColumnId::new(1),
            Cell::probabilistic(vec![
                Candidate::exact(Value::from("Los Angeles"), 2.0),
                Candidate::exact(Value::from("San Francisco"), 1.0),
            ]),
        );
        cleaned.apply_delta(&delta).unwrap();
        let repairs = infer_over_daisy_domains(&cleaned, &original);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].0, TupleId::new(1));
        assert_eq!(repairs[0].2, Value::from("Los Angeles"));
    }
}
