//! Strongly typed identifiers.
//!
//! Daisy tracks lineage across several dimensions:
//!
//! * every tuple of a base relation has a stable [`TupleId`] so that cleaning
//!   a query result can be translated back into an in-place update of the
//!   original dataset (the "delta" of §4),
//! * every candidate value of a probabilistic cell is tagged with the
//!   [`WorldId`] of the possible world (candidate pair) it belongs to, and
//! * provenance records which [`RuleId`] produced a candidate fix so that new
//!   rules can later be merged without recomputing from scratch (Table 7).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw index.
            pub fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            pub fn raw(self) -> u64 {
                self.0
            }

            /// Returns the raw index as a usize (for vector indexing).
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u64)
            }
        }
    };
}

id_type!(
    /// Identifier of a tuple within a base relation.
    ///
    /// Tuple ids are assigned at load/generation time and survive cleaning:
    /// when a query result is relaxed and repaired, the delta is applied back
    /// to the base relation by tuple id.
    TupleId,
    "t"
);

id_type!(
    /// Identifier of a possible world (candidate pair).
    ///
    /// The paper stores "in each candidate value an identifier of the possible
    /// world it belongs to" so that attribute-level uncertainty can still
    /// represent tuple-level alternatives.
    WorldId,
    "w"
);

id_type!(
    /// Identifier of a denial constraint / functional dependency in a rule set.
    RuleId,
    "r"
);

id_type!(
    /// Identifier (ordinal position) of a column within a schema.
    ColumnId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_with_stable_display() {
        let t = TupleId::new(3);
        let w = WorldId::new(3);
        assert_eq!(t.to_string(), "t3");
        assert_eq!(w.to_string(), "w3");
        assert_eq!(t.raw(), w.raw());
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(TupleId::new(1));
        set.insert(TupleId::new(1));
        set.insert(TupleId::new(2));
        assert_eq!(set.len(), 2);
        assert!(TupleId::new(1) < TupleId::new(2));
    }

    #[test]
    fn conversions_from_usize_and_u64() {
        assert_eq!(ColumnId::from(4usize), ColumnId::new(4));
        assert_eq!(RuleId::from(9u64).index(), 9);
    }
}
