//! Relation schemas.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::datatype::DataType;
use crate::error::{DaisyError, Result};
use crate::ids::ColumnId;

/// A single attribute (column) of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Logical type of the attribute.
    pub data_type: DataType,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.data_type)
    }
}

/// An ordered collection of [`Field`]s describing a relation.
///
/// Schemas are cheaply cloneable via [`SchemaRef`].  Joins produce schemas
/// whose field names are qualified with the source relation name
/// (`lineorder.suppkey`), matching the paper's examples (`C.Zip`, `E.Zip`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared reference to a schema.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Creates a schema from fields.  Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(DaisyError::Schema(format!(
                    "duplicate field name `{}`",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Creates an empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Self> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns the ordinal position of a column by name.
    ///
    /// Lookup is tolerant to qualification: `zip` matches both `zip` and
    /// `cities.zip`, and a qualified request `cities.zip` matches the
    /// unqualified field `zip` only if exactly one candidate exists.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        // Exact match first.
        if let Some(idx) = self.fields.iter().position(|f| f.name == name) {
            return Ok(idx);
        }
        // Unqualified request matching qualified fields (suffix `.name`).
        let suffix = format!(".{name}");
        let candidates: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match candidates.len() {
            1 => return Ok(candidates[0]),
            n if n > 1 => {
                return Err(DaisyError::Schema(format!(
                    "ambiguous column `{name}`: {n} matches"
                )))
            }
            _ => {}
        }
        // Qualified request matching an unqualified field (strip the prefix).
        if let Some((_, bare)) = name.rsplit_once('.') {
            if let Some(idx) = self.fields.iter().position(|f| f.name == bare) {
                return Ok(idx);
            }
        }
        Err(DaisyError::Schema(format!("unknown column `{name}`")))
    }

    /// Returns the [`ColumnId`] of a column by name.
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.index_of(name).map(ColumnId::from)
    }

    /// Returns a field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Returns a field by ordinal position.
    pub fn field_at(&self, idx: usize) -> Result<&Field> {
        self.fields
            .get(idx)
            .ok_or_else(|| DaisyError::Schema(format!("column index {idx} out of bounds")))
    }

    /// `true` if the schema has a column with this name (qualified or not).
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    /// Returns a new schema restricted to the named columns, in the order given.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            fields.push(self.field(name)?.clone());
        }
        Schema::new(fields)
    }

    /// Returns a new schema whose field names are prefixed with `qualifier.`.
    ///
    /// Fields that are already qualified keep their original qualifier.
    pub fn qualify(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| {
                    if f.name.contains('.') {
                        f.clone()
                    } else {
                        Field::new(format!("{qualifier}.{}", f.name), f.data_type)
                    }
                })
                .collect(),
        }
    }

    /// Concatenates two schemas (used by joins).  Duplicate names are allowed
    /// only when they are distinguished by qualification.
    pub fn join(&self, other: &Schema) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// The column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cities() -> Schema {
        Schema::from_pairs(&[("zip", DataType::Int), ("city", DataType::Str)]).unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Str)]);
        assert!(err.is_err());
    }

    #[test]
    fn index_of_exact_and_unknown() {
        let s = cities();
        assert_eq!(s.index_of("zip").unwrap(), 0);
        assert_eq!(s.index_of("city").unwrap(), 1);
        assert!(s.index_of("state").is_err());
    }

    #[test]
    fn qualified_lookup_both_directions() {
        let q = cities().qualify("cities");
        assert_eq!(q.index_of("cities.zip").unwrap(), 0);
        assert_eq!(q.index_of("zip").unwrap(), 0);

        let bare = cities();
        assert_eq!(bare.index_of("cities.zip").unwrap(), 0);
    }

    #[test]
    fn ambiguous_unqualified_lookup_fails() {
        let joined = cities().qualify("a").join(&cities().qualify("b")).unwrap();
        assert!(joined.index_of("zip").is_err());
        assert_eq!(joined.index_of("a.zip").unwrap(), 0);
        assert_eq!(joined.index_of("b.zip").unwrap(), 2);
    }

    #[test]
    fn project_preserves_requested_order() {
        let s = cities();
        let p = s.project(&["city", "zip"]).unwrap();
        assert_eq!(p.names(), vec!["city", "zip"]);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn join_concatenates_and_detects_collisions() {
        let joined = cities().qualify("c").join(&cities().qualify("e")).unwrap();
        assert_eq!(joined.len(), 4);
        assert!(cities().join(&cities()).is_err());
    }

    #[test]
    fn display_lists_fields() {
        assert_eq!(cities().to_string(), "(zip: int, city: string)");
    }
}
