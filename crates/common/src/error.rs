//! Error handling shared across the workspace.

use std::fmt;

/// Convenience alias used by every fallible Daisy API.
pub type Result<T> = std::result::Result<T, DaisyError>;

/// The error type common to all Daisy crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaisyError {
    /// A schema lookup failed (unknown column, arity mismatch, …).
    Schema(String),
    /// A value could not be parsed from text.
    Parse(String),
    /// A type error during expression evaluation or aggregation.
    Type(String),
    /// A malformed query or constraint definition.
    Plan(String),
    /// A join references a key column its input schema does not provide.
    /// Raised at operator construction (plan validation), before any
    /// operator runs, so a bad plan never observes a half-executed query.
    UnknownJoinColumn {
        /// Which side of the join referenced the column (`"left"`/`"right"`).
        side: &'static str,
        /// The missing column name, as written in the plan.
        column: String,
    },
    /// An execution-time failure (e.g. an update targeting a missing tuple).
    Execution(String),
    /// An I/O failure (CSV load/store).
    Io(String),
    /// An invalid configuration value.
    Config(String),
    /// The write-ahead commit log or a checkpoint failed verification
    /// during recovery (checksum mismatch, broken hash chain, non-monotone
    /// versions, …).  A torn *tail* is self-truncated and never reaches
    /// this error; `CorruptLog` means damage recovery cannot attribute to
    /// an interrupted write, so it refuses to load rather than silently
    /// yield a wrong world.
    CorruptLog {
        /// Byte offset (within the log or checkpoint file) of the damage.
        offset: u64,
        /// Human-readable description of what failed to verify.
        reason: String,
    },
    /// A session operation that requires an up-to-date branch point found
    /// the shared world advanced by other commits.  Carries everything a
    /// caller needs to retry-or-fail deliberately: which session went
    /// stale and how far behind it is.
    StaleSession {
        /// The session (request) identifier, as named at open time.
        session: String,
        /// The shared version the session branched from.
        base_version: u64,
        /// The shared version at the time of the failed operation.
        shared_version: u64,
    },
}

impl DaisyError {
    /// Short machine-readable category name, useful in logs and tests.
    pub fn category(&self) -> &'static str {
        match self {
            DaisyError::Schema(_) => "schema",
            DaisyError::Parse(_) => "parse",
            DaisyError::Type(_) => "type",
            DaisyError::Plan(_) => "plan",
            DaisyError::UnknownJoinColumn { .. } => "unknown-join-column",
            DaisyError::Execution(_) => "execution",
            DaisyError::Io(_) => "io",
            DaisyError::Config(_) => "config",
            DaisyError::CorruptLog { .. } => "corrupt-log",
            DaisyError::StaleSession { .. } => "stale-session",
        }
    }

    /// The number of commits the shared world advanced past the session's
    /// branch point, for [`DaisyError::StaleSession`]; `None` for every
    /// other error.
    pub fn elapsed_commits(&self) -> Option<u64> {
        match self {
            DaisyError::StaleSession {
                base_version,
                shared_version,
                ..
            } => Some(shared_version.saturating_sub(*base_version)),
            _ => None,
        }
    }
}

impl fmt::Display for DaisyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaisyError::Schema(msg) => write!(f, "schema error: {msg}"),
            DaisyError::Parse(msg) => write!(f, "parse error: {msg}"),
            DaisyError::Type(msg) => write!(f, "type error: {msg}"),
            DaisyError::Plan(msg) => write!(f, "planning error: {msg}"),
            DaisyError::UnknownJoinColumn { side, column } => {
                write!(f, "planning error: unknown {side} join column `{column}`")
            }
            DaisyError::Execution(msg) => write!(f, "execution error: {msg}"),
            DaisyError::Io(msg) => write!(f, "io error: {msg}"),
            DaisyError::Config(msg) => write!(f, "configuration error: {msg}"),
            DaisyError::CorruptLog { offset, reason } => {
                write!(f, "corrupt log at byte {offset}: {reason}")
            }
            DaisyError::StaleSession {
                session,
                base_version,
                shared_version,
            } => write!(
                f,
                "stale session: `{session}` branched at version {base_version} but the \
                 shared world is at {shared_version} ({} commits elapsed); commit to \
                 rebase or open a fresh session",
                shared_version.saturating_sub(*base_version)
            ),
        }
    }
}

impl std::error::Error for DaisyError {}

impl From<std::io::Error> for DaisyError {
    fn from(err: std::io::Error) -> Self {
        DaisyError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let err = DaisyError::Schema("no column `zip`".into());
        assert_eq!(err.to_string(), "schema error: no column `zip`");
        assert_eq!(err.category(), "schema");
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.csv");
        let err: DaisyError = io.into();
        assert_eq!(err.category(), "io");
        assert!(err.to_string().contains("missing.csv"));
    }

    #[test]
    fn errors_are_comparable_in_tests() {
        assert_eq!(DaisyError::Type("x".into()), DaisyError::Type("x".into()));
        assert_ne!(DaisyError::Type("x".into()), DaisyError::Plan("x".into()));
    }

    #[test]
    fn corrupt_log_names_offset_and_reason() {
        let err = DaisyError::CorruptLog {
            offset: 4096,
            reason: "record checksum mismatch".into(),
        };
        assert_eq!(err.category(), "corrupt-log");
        let rendered = err.to_string();
        assert!(rendered.contains("byte 4096"));
        assert!(rendered.contains("record checksum mismatch"));
        assert_eq!(err.elapsed_commits(), None);
    }

    #[test]
    fn stale_session_names_request_and_elapsed_commits() {
        let err = DaisyError::StaleSession {
            session: "tenant-a".into(),
            base_version: 3,
            shared_version: 7,
        };
        assert_eq!(err.category(), "stale-session");
        assert_eq!(err.elapsed_commits(), Some(4));
        let rendered = err.to_string();
        assert!(rendered.contains("`tenant-a`"));
        assert!(rendered.contains("version 3"));
        assert!(rendered.contains("at 7"));
        assert!(rendered.contains("4 commits elapsed"));
        assert_eq!(DaisyError::Io("x".into()).elapsed_commits(), None);
    }
}
