//! Logical column types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The logical type of a column.
///
/// Daisy operates on relational data whose attributes are either categorical
/// (strings), numeric (integers / floats) or boolean.  Denial constraints
/// with inequality predicates (`<`, `>`, …) are only meaningful over numeric
/// attributes; functional dependencies apply to any type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit floating point.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// `true` for types that support arithmetic and range predicates.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Parses a type name as used in schema definition files.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Some(DataType::Bool),
            "int" | "integer" | "bigint" | "i64" => Some(DataType::Int),
            "float" | "double" | "real" | "f64" => Some(DataType::Float),
            "str" | "string" | "text" | "varchar" => Some(DataType::Str),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "string",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(DataType::parse("INTEGER"), Some(DataType::Int));
        assert_eq!(DataType::parse("varchar"), Some(DataType::Str));
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("bool"), Some(DataType::Bool));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn display_names_roundtrip_through_parse() {
        for ty in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
        ] {
            assert_eq!(DataType::parse(&ty.to_string()), Some(ty));
        }
    }
}
